//! Segment lifecycle: compaction, tiering, and retention.
//!
//! A long-lived serve loop accretes segments forever; this module is the
//! maintenance pass that keeps the log bounded without losing a single
//! joined `⟨x, a, r⟩` triple. Segments move through three tiers:
//!
//! * **hot** — the trailing `hot_segments` raw segments, still receiving
//!   appends and joins; never touched.
//! * **compacted shards** — clean cold segments are folded: each decision
//!   absorbs its outcome's reward into its own `reward` field (the outcome
//!   wins over a synchronous reward, exactly as [`crate::scavenge`]
//!   resolves precedence) and the now-redundant outcome records are
//!   dropped. Contiguous runs of clean segments are re-framed through a
//!   [`SegmentedLogWriter`] with shard-sized rotation thresholds.
//! * **residue** — segments with a quarantined tail are carried verbatim,
//!   damaged bytes and all, so recovery accounting (`quarantined_records`,
//!   `corrupt_segments`) is identical before and after compaction.
//!
//! The invariant the proptests enforce: scavenging the compacted store
//! yields the **exact multiset of joined samples** that scavenging the
//! original store would. Compaction is transparent to training.
//!
//! Retention (`max_shards`) expires the oldest compacted shards; expired
//! records are counted in the report, never silently discarded.
//!
//! Determinism: compaction is a pure function of the segment bytes and the
//! config — no clocks, no randomness — so same-seed runs compact to
//! byte-identical shards.

use std::collections::{HashMap, HashSet};

use crate::record::LogRecord;
use crate::segment::{
    recover_segment, recover_segments, MemorySegments, SegmentConfig, SegmentedLogWriter,
};

/// Tiering and retention knobs for [`compact_segments`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleConfig {
    /// Rotation thresholds for compacted shards.
    pub shard: SegmentConfig,
    /// Trailing raw segments left untouched (the writer's active tail and
    /// recently-sealed segments whose outcomes are still arriving).
    pub hot_segments: usize,
    /// Keep at most this many compacted shards; the oldest expire first.
    pub max_shards: usize,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            shard: SegmentConfig::default(),
            hot_segments: 1,
            max_shards: usize::MAX,
        }
    }
}

/// What one compaction pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Input segments examined (all tiers).
    pub segments_in: usize,
    /// Output segments produced (all tiers).
    pub segments_out: usize,
    /// Clean cold segments folded into shards.
    pub segments_compacted: usize,
    /// Damaged cold segments carried verbatim.
    pub residue_segments: usize,
    /// Trailing segments left untouched.
    pub hot_segments: usize,
    /// Compacted shards in the output (before retention).
    pub shards: usize,
    /// Decisions whose reward was folded in from an outcome record.
    pub folded_rewards: usize,
    /// Outcome records dropped because their decision now carries the
    /// reward.
    pub outcomes_dropped: usize,
    /// Logical records written into shards.
    pub records_carried: usize,
    /// Shards removed by retention.
    pub expired_shards: usize,
    /// Logical records removed by retention — counted, never silent.
    pub expired_records: usize,
}

/// Runs one compaction pass over a full segment list, returning the new
/// segment list and the accounting. See the module docs for the tier
/// semantics; the caller commits the result with
/// [`MemorySegments::replace_all`] (or the filesystem equivalent) and
/// re-anchors any live writer at the new segment count.
pub fn compact_segments(
    segments: &[Vec<u8>],
    cfg: &LifecycleConfig,
) -> (Vec<Vec<u8>>, CompactionReport) {
    let mut report = CompactionReport {
        segments_in: segments.len(),
        ..CompactionReport::default()
    };
    let hot_start = segments.len().saturating_sub(cfg.hot_segments);
    let cold = &segments[..hot_start];

    // Pass 1: recover every cold segment and build the fold plan. Outcome
    // precedence matches scavenging (last outcome for an id wins), and an
    // outcome may only be dropped when its decision lives in a *clean*
    // cold segment — a decision in a damaged segment or the hot tail keeps
    // its outcome record untouched.
    let recovered: Vec<(Vec<LogRecord>, bool)> = cold
        .iter()
        .map(|bytes| {
            let (records, stats) = recover_segment(bytes);
            (records, stats.is_clean())
        })
        .collect();
    let mut outcome_rewards: HashMap<u64, f64> = HashMap::new();
    let mut clean_decision_ids: HashSet<u64> = HashSet::new();
    for (records, clean) in &recovered {
        for r in records {
            match r {
                LogRecord::Outcome(o) => {
                    outcome_rewards.insert(o.request_id, o.reward);
                }
                LogRecord::Decision(d) if *clean => {
                    clean_decision_ids.insert(d.request_id);
                }
                _ => {}
            }
        }
    }

    // Pass 2: emit. Contiguous runs of clean segments fold into shards;
    // damaged segments flush the run and pass through verbatim, keeping
    // global record order intact.
    let mut out: Vec<Vec<u8>> = Vec::new();
    let mut shard_indices: Vec<usize> = Vec::new();
    let mut run: Vec<LogRecord> = Vec::new();
    let flush_run = |run: &mut Vec<LogRecord>,
                     out: &mut Vec<Vec<u8>>,
                     shard_indices: &mut Vec<usize>,
                     report: &mut CompactionReport| {
        if run.is_empty() {
            return;
        }
        let mut w = SegmentedLogWriter::new(MemorySegments::new(), cfg.shard);
        for record in run.drain(..) {
            match record {
                LogRecord::Decision(mut d) => {
                    if let Some(&r) = outcome_rewards.get(&d.request_id) {
                        if d.reward != Some(r) {
                            d.reward = Some(r);
                        }
                        report.folded_rewards += 1;
                    }
                    report.records_carried += 1;
                    w.write(&LogRecord::Decision(d)).expect("memory sink");
                }
                LogRecord::Outcome(o) => {
                    if clean_decision_ids.contains(&o.request_id) {
                        report.outcomes_dropped += 1;
                    } else {
                        report.records_carried += 1;
                        w.write(&LogRecord::Outcome(o)).expect("memory sink");
                    }
                }
                // Recovery flattens batches; none reach here. Carry one
                // defensively rather than lose it.
                other => {
                    report.records_carried += other.record_count();
                    w.write(&other).expect("memory sink");
                }
            }
        }
        for shard in w.into_sink().expect("memory sink").snapshot() {
            shard_indices.push(out.len());
            out.push(shard);
            report.shards += 1;
        }
    };
    for (i, (records, clean)) in recovered.iter().enumerate() {
        if *clean {
            report.segments_compacted += 1;
            run.extend(records.iter().cloned());
        } else {
            flush_run(&mut run, &mut out, &mut shard_indices, &mut report);
            report.residue_segments += 1;
            out.push(cold[i].clone());
        }
    }
    flush_run(&mut run, &mut out, &mut shard_indices, &mut report);
    for hot in &segments[hot_start..] {
        report.hot_segments += 1;
        out.push(hot.clone());
    }

    // Retention: expire the oldest shards beyond the keep budget, counting
    // every record that leaves.
    if shard_indices.len() > cfg.max_shards {
        let expire = &shard_indices[..shard_indices.len() - cfg.max_shards];
        let expired_bytes: Vec<Vec<u8>> = expire.iter().map(|&i| out[i].clone()).collect();
        let (_, stats) = recover_segments(&expired_bytes);
        report.expired_shards = expire.len();
        report.expired_records = stats.recovered;
        let expired_set: HashSet<usize> = expire.iter().copied().collect();
        out = out
            .into_iter()
            .enumerate()
            .filter_map(|(i, seg)| (!expired_set.contains(&i)).then_some(seg))
            .collect();
    }
    report.segments_out = out.len();
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DecisionRecord, OutcomeRecord};
    use crate::scavenge::scavenge_segments;

    fn decision(id: u64, reward: Option<f64>) -> LogRecord {
        LogRecord::Decision(DecisionRecord {
            request_id: id,
            timestamp_ns: id * 100,
            component: "serve".to_string(),
            shared_features: vec![id as f64],
            action_features: None,
            num_actions: 3,
            action: (id % 3) as usize,
            propensity: Some(0.4),
            reward,
        })
    }

    fn outcome(id: u64, reward: f64) -> LogRecord {
        LogRecord::Outcome(OutcomeRecord {
            request_id: id,
            timestamp_ns: id * 100 + 50,
            reward,
        })
    }

    fn build_store(cfg: SegmentConfig, records: &[LogRecord]) -> MemorySegments {
        let mut w = SegmentedLogWriter::new(MemorySegments::new(), cfg);
        for r in records {
            w.write(r).unwrap();
        }
        w.into_sink().unwrap()
    }

    fn small_segments() -> SegmentConfig {
        SegmentConfig {
            max_records: 4,
            max_bytes: usize::MAX,
            max_span_ns: u64::MAX,
        }
    }

    /// Sorted joined samples, for multiset comparison.
    fn joined_multiset(segments: &[Vec<u8>]) -> Vec<(usize, String, String)> {
        let (samples, _, _) = scavenge_segments(segments);
        let mut keyed: Vec<(usize, String, String)> = samples
            .iter()
            .map(|s| {
                (
                    s.action,
                    format!("{:?}", s.reward),
                    format!("{:?}", s.context),
                )
            })
            .collect();
        keyed.sort();
        keyed
    }

    #[test]
    fn compaction_preserves_the_joined_multiset() {
        let records: Vec<LogRecord> = (0..10)
            .flat_map(|id| vec![decision(id, None), outcome(id, id as f64 * 0.1)])
            .collect();
        let store = build_store(small_segments(), &records);
        let before = joined_multiset(&store.snapshot());
        let (compacted, report) = compact_segments(
            &store.snapshot(),
            &LifecycleConfig {
                shard: SegmentConfig::default(),
                hot_segments: 0,
                max_shards: usize::MAX,
            },
        );
        assert_eq!(joined_multiset(&compacted), before);
        assert_eq!(report.folded_rewards, 10);
        assert_eq!(report.outcomes_dropped, 10);
        assert_eq!(report.records_carried, 10);
        assert!(report.segments_out < report.segments_in);
    }

    #[test]
    fn outcome_overrides_synchronous_reward_when_folding() {
        // Decision logs reward 0.42 synchronously; the outcome later says
        // 0.9. Scavenging prefers the outcome, so folding must too.
        let records = vec![decision(1, Some(0.42)), outcome(1, 0.9)];
        let store = build_store(small_segments(), &records);
        let before = joined_multiset(&store.snapshot());
        let (compacted, report) = compact_segments(
            &store.snapshot(),
            &LifecycleConfig {
                hot_segments: 0,
                ..LifecycleConfig::default()
            },
        );
        assert_eq!(joined_multiset(&compacted), before);
        assert_eq!(report.folded_rewards, 1);
        let (samples, _, _) = scavenge_segments(&compacted);
        assert_eq!(samples[0].reward, 0.9);
    }

    #[test]
    fn damaged_segments_are_carried_verbatim() {
        let records: Vec<LogRecord> = (0..12)
            .flat_map(|id| vec![decision(id, None), outcome(id, 1.0)])
            .collect();
        let store = build_store(small_segments(), &records);
        assert!(store.corrupt_payload(1, 1, 0x20));
        let damaged = store.snapshot()[1].clone();
        let (_, before_stats) = store.recover();
        let (compacted, report) = compact_segments(
            &store.snapshot(),
            &LifecycleConfig {
                hot_segments: 0,
                ..LifecycleConfig::default()
            },
        );
        assert_eq!(report.residue_segments, 1);
        // The damaged bytes pass through untouched, so quarantine
        // accounting is unchanged.
        assert!(compacted.contains(&damaged));
        let (_, after_stats) = recover_segments(&compacted);
        assert_eq!(
            after_stats.quarantined_records,
            before_stats.quarantined_records
        );
        assert_eq!(
            after_stats.quarantined_bytes,
            before_stats.quarantined_bytes
        );
        assert_eq!(after_stats.corrupt_segments, 1);
    }

    #[test]
    fn outcome_for_a_damaged_decision_is_kept() {
        // Decision 0 lands in a segment that gets damaged before its frame;
        // its outcome (in a clean segment) must survive compaction so the
        // join can still happen if the decision is ever re-recovered — and
        // so the orphan count stays honest.
        let store = build_store(
            SegmentConfig {
                max_records: 2,
                max_bytes: usize::MAX,
                max_span_ns: u64::MAX,
            },
            &[
                decision(0, None),
                decision(1, None),
                outcome(0, 0.5),
                outcome(1, 0.6),
            ],
        );
        assert!(store.corrupt_payload(0, 0, 0x01)); // damages both decisions' segment
        let (compacted, report) = compact_segments(
            &store.snapshot(),
            &LifecycleConfig {
                hot_segments: 0,
                ..LifecycleConfig::default()
            },
        );
        assert_eq!(report.outcomes_dropped, 0);
        let (records, _) = recover_segments(&compacted);
        let outcomes = records
            .iter()
            .filter(|r| matches!(r, LogRecord::Outcome(_)))
            .count();
        assert_eq!(outcomes, 2);
    }

    #[test]
    fn hot_tail_is_never_touched() {
        let records: Vec<LogRecord> = (0..10)
            .flat_map(|id| vec![decision(id, None), outcome(id, 1.0)])
            .collect();
        let store = build_store(small_segments(), &records);
        let original = store.snapshot();
        let (compacted, report) = compact_segments(
            &original,
            &LifecycleConfig {
                hot_segments: 2,
                ..LifecycleConfig::default()
            },
        );
        assert_eq!(report.hot_segments, 2);
        let n = compacted.len();
        assert_eq!(compacted[n - 2..], original[original.len() - 2..]);
    }

    #[test]
    fn hot_segments_covering_everything_is_a_no_op() {
        let store = build_store(small_segments(), &[decision(0, Some(1.0))]);
        let original = store.snapshot();
        let (compacted, report) = compact_segments(
            &original,
            &LifecycleConfig {
                hot_segments: 100,
                ..LifecycleConfig::default()
            },
        );
        assert_eq!(compacted, original);
        assert_eq!(report.segments_compacted, 0);
        assert_eq!(report.shards, 0);
    }

    #[test]
    fn retention_expires_oldest_shards_and_counts_records() {
        let records: Vec<LogRecord> = (0..20).map(|id| decision(id, Some(1.0))).collect();
        let store = build_store(small_segments(), &records);
        let (compacted, report) = compact_segments(
            &store.snapshot(),
            &LifecycleConfig {
                shard: small_segments(),
                hot_segments: 0,
                max_shards: 2,
            },
        );
        assert_eq!(report.shards, 5);
        assert_eq!(report.expired_shards, 3);
        assert_eq!(report.expired_records, 12);
        assert_eq!(compacted.len(), 2);
        let (remaining, _) = recover_segments(&compacted);
        // The newest records survive.
        assert_eq!(remaining.len(), 8);
        assert_eq!(remaining[0].request_id(), 12);
    }

    #[test]
    fn compaction_is_idempotent_on_fully_folded_input() {
        let records: Vec<LogRecord> = (0..8)
            .flat_map(|id| vec![decision(id, None), outcome(id, 2.0)])
            .collect();
        let store = build_store(small_segments(), &records);
        let cfg = LifecycleConfig {
            hot_segments: 0,
            ..LifecycleConfig::default()
        };
        let (once, r1) = compact_segments(&store.snapshot(), &cfg);
        let (twice, r2) = compact_segments(&once, &cfg);
        assert_eq!(once, twice);
        assert_eq!(r1.outcomes_dropped, 8);
        assert_eq!(r2.outcomes_dropped, 0);
        assert_eq!(r2.folded_rewards, 0);
    }
}

//! The end-to-end harvest pipeline: scavenge → infer → dataset.

use harvest_core::{Dataset, HarvestError, LoggedDecision, SimpleContext};

use crate::propensity::PropensityModel;
use crate::record::LogRecord;
use crate::scavenge::{scavenge, ScavengeStats};
use crate::segment::recover_segments;

/// What the pipeline produced, with provenance counters for the report a
/// real deployment would want.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HarvestReport {
    /// Scavenging counters (step 1).
    pub scavenge: ScavengeStats,
    /// Samples whose propensity came straight from the log.
    pub logged_propensities: usize,
    /// Samples whose propensity was inferred by the model (step 2).
    pub inferred_propensities: usize,
    /// Samples dropped because even the inferred propensity was invalid.
    pub dropped_invalid_propensity: usize,
    /// The minimum propensity in the final dataset — the `ε` of Eq. 1.
    pub min_propensity: f64,
}

/// The harvesting methodology as a reusable component: give it raw log
/// records and a propensity model, get exploration data.
#[derive(Debug, Clone)]
pub struct HarvestPipeline<M> {
    propensity_model: M,
    /// Whether to trust propensities found in the log over the model.
    prefer_logged: bool,
}

impl<M: PropensityModel<SimpleContext>> HarvestPipeline<M> {
    /// Creates a pipeline that uses `propensity_model` for records lacking
    /// a logged propensity (and, if `prefer_logged` is false, for all
    /// records).
    pub fn new(propensity_model: M, prefer_logged: bool) -> Self {
        HarvestPipeline {
            propensity_model,
            prefer_logged,
        }
    }

    /// Runs steps 1–2 on a record stream, producing a validated dataset and
    /// a provenance report.
    pub fn run(
        &self,
        records: &[LogRecord],
    ) -> Result<(Dataset<SimpleContext>, HarvestReport), HarvestError> {
        let (samples, scavenge_stats) = scavenge(records);
        let mut report = HarvestReport {
            scavenge: scavenge_stats,
            min_propensity: f64::INFINITY,
            ..HarvestReport::default()
        };
        let mut dataset = Dataset::new();
        for s in samples {
            let p = match (self.prefer_logged, s.propensity) {
                (true, Some(p)) => {
                    report.logged_propensities += 1;
                    p
                }
                _ => {
                    report.inferred_propensities += 1;
                    self.propensity_model.propensity(&s.context, s.action)
                }
            };
            let decision = LoggedDecision {
                context: s.context,
                action: s.action,
                reward: s.reward,
                propensity: p,
            };
            match decision.validate() {
                Ok(()) => {
                    report.min_propensity = report.min_propensity.min(p);
                    dataset.push(decision)?;
                }
                Err(HarvestError::InvalidPropensity { .. }) => {
                    report.dropped_invalid_propensity += 1;
                }
                Err(e) => return Err(e),
            }
        }
        if dataset.is_empty() {
            report.min_propensity = 0.0;
        }
        Ok((dataset, report))
    }

    /// Runs the pipeline on crash-safe log segments: recovers the longest
    /// valid prefix of each, then harvests the surviving records. Damage is
    /// carried into `report.scavenge.quarantined` — a corrupted log yields a
    /// smaller dataset and says so, never a silently wrong one.
    pub fn run_segments(
        &self,
        segments: &[Vec<u8>],
    ) -> Result<(Dataset<SimpleContext>, HarvestReport), HarvestError> {
        let (records, recovery) = recover_segments(segments);
        let (dataset, mut report) = self.run(&records)?;
        report.scavenge.quarantined = recovery.quarantined_records;
        Ok((dataset, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propensity::KnownPropensity;
    use crate::record::{DecisionRecord, OutcomeRecord};
    use harvest_core::policy::UniformPolicy;

    fn decision(id: u64, action: usize, propensity: Option<f64>) -> LogRecord {
        LogRecord::Decision(DecisionRecord {
            request_id: id,
            timestamp_ns: id,
            component: "t".to_string(),
            shared_features: vec![id as f64],
            action_features: None,
            num_actions: 4,
            action,
            propensity,
            reward: None,
        })
    }

    fn outcome(id: u64, reward: f64) -> LogRecord {
        LogRecord::Outcome(OutcomeRecord {
            request_id: id,
            timestamp_ns: id + 1,
            reward,
        })
    }

    #[test]
    fn end_to_end_with_known_propensities() {
        let records = vec![
            decision(1, 0, None),
            decision(2, 3, None),
            outcome(1, 0.5),
            outcome(2, 0.9),
        ];
        let pipeline = HarvestPipeline::new(KnownPropensity::new(UniformPolicy::new()), true);
        let (data, report) = pipeline.run(&records).unwrap();
        assert_eq!(data.len(), 2);
        assert_eq!(report.scavenge.joined, 2);
        assert_eq!(report.inferred_propensities, 2);
        assert_eq!(report.min_propensity, 0.25);
        for s in &data {
            assert_eq!(s.propensity, 0.25);
        }
    }

    #[test]
    fn logged_propensities_win_when_preferred() {
        let records = vec![decision(1, 0, Some(0.4)), outcome(1, 1.0)];
        let pipeline = HarvestPipeline::new(KnownPropensity::new(UniformPolicy::new()), true);
        let (data, report) = pipeline.run(&records).unwrap();
        assert_eq!(data.samples()[0].propensity, 0.4);
        assert_eq!(report.logged_propensities, 1);
        // With prefer_logged = false the model overrides.
        let pipeline = HarvestPipeline::new(KnownPropensity::new(UniformPolicy::new()), false);
        let (data, _) = pipeline.run(&records).unwrap();
        assert_eq!(data.samples()[0].propensity, 0.25);
    }

    #[test]
    fn invalid_logged_propensities_are_dropped_and_counted() {
        let records = vec![decision(1, 0, Some(0.0)), outcome(1, 1.0)];
        let pipeline = HarvestPipeline::new(KnownPropensity::new(UniformPolicy::new()), true);
        let (data, report) = pipeline.run(&records).unwrap();
        assert!(data.is_empty());
        assert_eq!(report.dropped_invalid_propensity, 1);
        assert_eq!(report.min_propensity, 0.0);
    }

    #[test]
    fn unjoined_records_do_not_reach_the_dataset() {
        let records = vec![decision(1, 0, Some(0.5))]; // no outcome
        let pipeline = HarvestPipeline::new(KnownPropensity::new(UniformPolicy::new()), true);
        let (data, report) = pipeline.run(&records).unwrap();
        assert!(data.is_empty());
        assert_eq!(report.scavenge.missing_outcome, 1);
    }
}

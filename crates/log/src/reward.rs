//! Look-ahead reward reconstruction.
//!
//! "Determining the next time an evicted item is accessed (the reward)
//! would require a more invasive change, since Redis does not maintain
//! state for evicted items. Instead, we reconstruct this information during
//! step 1 by looking ahead in the logs to when the item next appears"
//! (paper §3).
//!
//! Given the access log (time, key) and the eviction decisions
//! (time, evicted key), the reward of evicting a key is the time until that
//! key is next requested — longer is *better* (the evicted item wasn't
//! needed), capped at a horizon for keys never seen again.

use std::collections::HashMap;

/// One key access parsed from the workload log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Nanoseconds since trace start.
    pub timestamp_ns: u64,
    /// Accessed key.
    pub key: u64,
}

/// One eviction decision parsed from the decision log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionEvent {
    /// Nanoseconds since trace start.
    pub timestamp_ns: u64,
    /// Evicted key.
    pub key: u64,
}

/// The reconstructed reward for one eviction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconstructedReward {
    /// The eviction this reward belongs to (index into the input slice).
    pub eviction_index: usize,
    /// Seconds until the evicted key was next accessed, capped at the
    /// horizon.
    pub time_to_next_access_s: f64,
    /// Whether the key was never seen again within the log (reward was
    /// capped).
    pub censored: bool,
}

/// Reconstructs time-to-next-access rewards for each eviction by scanning
/// the access log forward.
///
/// Runs in `O(A + E log E)` (`A` accesses, `E` evictions): accesses are
/// bucketed per key once, then each eviction binary-searches its key's
/// future accesses. `horizon_s` caps the reward for keys that never return
/// — an uncapped "infinite" reward would let one lucky eviction dominate
/// every estimator downstream.
pub fn reconstruct_rewards(
    accesses: &[AccessEvent],
    evictions: &[EvictionEvent],
    horizon_s: f64,
) -> Vec<ReconstructedReward> {
    assert!(horizon_s > 0.0, "horizon must be positive");
    // Bucket access times per key (they are in log order = time order).
    let mut per_key: HashMap<u64, Vec<u64>> = HashMap::new();
    for a in accesses {
        per_key.entry(a.key).or_default().push(a.timestamp_ns);
    }
    for times in per_key.values_mut() {
        times.sort_unstable();
    }
    evictions
        .iter()
        .enumerate()
        .map(|(i, ev)| {
            let next = per_key.get(&ev.key).and_then(|times| {
                let idx = times.partition_point(|&t| t <= ev.timestamp_ns);
                times.get(idx).copied()
            });
            match next {
                Some(t) => {
                    let dt = (t - ev.timestamp_ns) as f64 / 1e9;
                    if dt >= horizon_s {
                        ReconstructedReward {
                            eviction_index: i,
                            time_to_next_access_s: horizon_s,
                            censored: true,
                        }
                    } else {
                        ReconstructedReward {
                            eviction_index: i,
                            time_to_next_access_s: dt,
                            censored: false,
                        }
                    }
                }
                None => ReconstructedReward {
                    eviction_index: i,
                    time_to_next_access_s: horizon_s,
                    censored: true,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(t_s: f64, key: u64) -> AccessEvent {
        AccessEvent {
            timestamp_ns: (t_s * 1e9) as u64,
            key,
        }
    }

    fn ev(t_s: f64, key: u64) -> EvictionEvent {
        EvictionEvent {
            timestamp_ns: (t_s * 1e9) as u64,
            key,
        }
    }

    #[test]
    fn finds_the_next_access() {
        let accesses = vec![acc(1.0, 7), acc(2.0, 7), acc(5.0, 7)];
        let rewards = reconstruct_rewards(&accesses, &[ev(2.5, 7)], 100.0);
        assert_eq!(rewards.len(), 1);
        assert!((rewards[0].time_to_next_access_s - 2.5).abs() < 1e-9);
        assert!(!rewards[0].censored);
    }

    #[test]
    fn access_at_same_instant_does_not_count() {
        // The access that triggered the eviction is at the same timestamp;
        // only strictly-later accesses count.
        let accesses = vec![acc(2.0, 7), acc(6.0, 7)];
        let rewards = reconstruct_rewards(&accesses, &[ev(2.0, 7)], 100.0);
        assert!((rewards[0].time_to_next_access_s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn never_seen_again_is_censored_at_horizon() {
        let accesses = vec![acc(1.0, 7)];
        let rewards = reconstruct_rewards(&accesses, &[ev(2.0, 7)], 50.0);
        assert_eq!(rewards[0].time_to_next_access_s, 50.0);
        assert!(rewards[0].censored);
        // A key with no accesses at all.
        let rewards = reconstruct_rewards(&accesses, &[ev(2.0, 99)], 50.0);
        assert!(rewards[0].censored);
    }

    #[test]
    fn long_gaps_are_capped() {
        let accesses = vec![acc(1000.0, 7)];
        let rewards = reconstruct_rewards(&accesses, &[ev(1.0, 7)], 60.0);
        assert_eq!(rewards[0].time_to_next_access_s, 60.0);
        assert!(rewards[0].censored);
    }

    #[test]
    fn multiple_evictions_of_the_same_key() {
        let accesses = vec![acc(1.0, 7), acc(4.0, 7), acc(9.0, 7)];
        let rewards = reconstruct_rewards(&accesses, &[ev(2.0, 7), ev(5.0, 7)], 100.0);
        assert!((rewards[0].time_to_next_access_s - 2.0).abs() < 1e-9);
        assert!((rewards[1].time_to_next_access_s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn unsorted_access_log_is_handled() {
        let accesses = vec![acc(9.0, 7), acc(1.0, 7), acc(4.0, 7)];
        let rewards = reconstruct_rewards(&accesses, &[ev(2.0, 7)], 100.0);
        assert!((rewards[0].time_to_next_access_s - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_panics() {
        let _ = reconstruct_rewards(&[], &[], 0.0);
    }

    #[test]
    fn indices_align_with_input() {
        let accesses = vec![acc(10.0, 1), acc(20.0, 2)];
        let evictions = vec![ev(5.0, 2), ev(6.0, 1)];
        let rewards = reconstruct_rewards(&accesses, &evictions, 100.0);
        assert_eq!(rewards[0].eviction_index, 0);
        assert!((rewards[0].time_to_next_access_s - 15.0).abs() < 1e-9);
        assert_eq!(rewards[1].eviction_index, 1);
        assert!((rewards[1].time_to_next_access_s - 4.0).abs() < 1e-9);
    }
}

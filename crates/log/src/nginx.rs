//! Nginx-style access-log emission and parsing.
//!
//! The paper's load-balancing prototype harvested data from Nginx's
//! existing logging modules: "we were able to use existing logging modules
//! to log the context (e.g., active connections per server) and reward
//! (request latency) information" (§3). This module defines the
//! `log_format` such a deployment would configure and a strict,
//! error-reporting parser for it:
//!
//! ```text
//! log_format harvest '$remote_addr - - [$msec] "$request" $status '
//!                    '$body_bytes_sent upstream=$upstream_index '
//!                    'rt=$request_time conns="$conns_active_per_upstream" '
//!                    'req_id=$request_id';
//! ```
//!
//! Example line:
//!
//! ```text
//! 10.0.0.1 - - [12.345678] "GET /api/maps HTTP/1.1" 200 512 upstream=2 rt=0.034 conns="3 5 2" req_id=77
//! ```
//!
//! The `conns` variable (active connections per upstream at decision time)
//! is the context; `upstream` is the action; `rt` (request time) is the
//! cost whose negation is the reward. The propensity is *not* in the log —
//! exactly as in reality — and must be inferred (step 2 of the
//! methodology).

use std::fmt;

use crate::record::DecisionRecord;

/// One parsed access-log line.
#[derive(Debug, Clone, PartialEq)]
pub struct NginxLogLine {
    /// Client address (opaque to the learner; kept for realism).
    pub remote_addr: String,
    /// Request timestamp in fractional seconds (`$msec`).
    pub msec: f64,
    /// HTTP method.
    pub method: String,
    /// Request URI.
    pub uri: String,
    /// HTTP protocol version string.
    pub protocol: String,
    /// Response status code.
    pub status: u16,
    /// Response body bytes.
    pub body_bytes: u64,
    /// Index of the upstream server the request was routed to (the action).
    pub upstream: usize,
    /// Request service time in seconds (the cost).
    pub request_time: f64,
    /// Active connections per upstream at decision time (the context).
    pub connections: Vec<u32>,
    /// Request correlation id.
    pub request_id: u64,
}

impl NginxLogLine {
    /// Renders the line exactly as the `harvest` log format would.
    pub fn format_line(&self) -> String {
        let conns: Vec<String> = self.connections.iter().map(u32::to_string).collect();
        format!(
            "{} - - [{:.6}] \"{} {} {}\" {} {} upstream={} rt={:.6} conns=\"{}\" req_id={}",
            self.remote_addr,
            self.msec,
            self.method,
            self.uri,
            self.protocol,
            self.status,
            self.body_bytes,
            self.upstream,
            self.request_time,
            conns.join(" "),
            self.request_id,
        )
    }

    /// Converts to a [`DecisionRecord`]: context = per-upstream connection
    /// counts, action = upstream index, reward = −request_time (latency is
    /// a `[-]` reward, Table 1). Propensity is left for inference.
    pub fn to_decision_record(&self) -> DecisionRecord {
        DecisionRecord {
            request_id: self.request_id,
            timestamp_ns: (self.msec * 1e9) as u64,
            component: "nginx-lb".to_string(),
            shared_features: self.connections.iter().map(|&c| c as f64).collect(),
            action_features: None,
            num_actions: self.connections.len(),
            action: self.upstream,
            propensity: None,
            reward: Some(-self.request_time),
        }
    }
}

/// Why a line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NginxParseError {
    /// The line did not have the expected overall shape.
    Malformed(&'static str),
    /// A field failed numeric conversion.
    BadNumber {
        /// Which field.
        field: &'static str,
    },
    /// The upstream index was not a member of the `conns` vector.
    UpstreamOutOfRange {
        /// The parsed upstream index.
        upstream: usize,
        /// Number of upstreams in `conns`.
        servers: usize,
    },
}

impl fmt::Display for NginxParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NginxParseError::Malformed(what) => write!(f, "malformed log line: {what}"),
            NginxParseError::BadNumber { field } => write!(f, "unparseable number in `{field}`"),
            NginxParseError::UpstreamOutOfRange { upstream, servers } => {
                write!(f, "upstream {upstream} out of range for {servers} servers")
            }
        }
    }
}

impl std::error::Error for NginxParseError {}

fn take_between<'a>(
    s: &'a str,
    open: char,
    close: char,
    what: &'static str,
) -> Result<(&'a str, &'a str), NginxParseError> {
    let start = s.find(open).ok_or(NginxParseError::Malformed(what))?;
    let rest = &s[start + open.len_utf8()..];
    let end = rest.find(close).ok_or(NginxParseError::Malformed(what))?;
    Ok((&rest[..end], &rest[end + close.len_utf8()..]))
}

fn kv_field<'a>(s: &'a str, key: &'static str) -> Result<&'a str, NginxParseError> {
    let pat = format!("{key}=");
    let start = s.find(&pat).ok_or(NginxParseError::Malformed(key))?;
    let rest = &s[start + pat.len()..];
    let end = rest.find(' ').unwrap_or(rest.len());
    Ok(&rest[..end])
}

/// Parses one `harvest`-format access-log line.
pub fn parse_line(line: &str) -> Result<NginxLogLine, NginxParseError> {
    let line = line.trim();
    let mut head = line.splitn(2, ' ');
    let remote_addr = head
        .next()
        .filter(|s| !s.is_empty())
        .ok_or(NginxParseError::Malformed("remote_addr"))?
        .to_string();
    let rest = head.next().ok_or(NginxParseError::Malformed("truncated"))?;

    let (msec_str, rest) = take_between(rest, '[', ']', "timestamp")?;
    let msec: f64 = msec_str
        .parse()
        .map_err(|_| NginxParseError::BadNumber { field: "msec" })?;

    let (request, rest) = take_between(rest, '"', '"', "request")?;
    let mut req_parts = request.split(' ');
    let method = req_parts
        .next()
        .ok_or(NginxParseError::Malformed("method"))?
        .to_string();
    let uri = req_parts
        .next()
        .ok_or(NginxParseError::Malformed("uri"))?
        .to_string();
    let protocol = req_parts
        .next()
        .ok_or(NginxParseError::Malformed("protocol"))?
        .to_string();

    let mut tail = rest.trim_start().split(' ');
    let status: u16 = tail
        .next()
        .ok_or(NginxParseError::Malformed("status"))?
        .parse()
        .map_err(|_| NginxParseError::BadNumber { field: "status" })?;
    let body_bytes: u64 = tail
        .next()
        .ok_or(NginxParseError::Malformed("body_bytes"))?
        .parse()
        .map_err(|_| NginxParseError::BadNumber {
            field: "body_bytes",
        })?;

    let upstream: usize = kv_field(rest, "upstream")?
        .parse()
        .map_err(|_| NginxParseError::BadNumber { field: "upstream" })?;
    let request_time: f64 = kv_field(rest, "rt")?
        .parse()
        .map_err(|_| NginxParseError::BadNumber { field: "rt" })?;
    let request_id: u64 = kv_field(rest, "req_id")?
        .parse()
        .map_err(|_| NginxParseError::BadNumber { field: "req_id" })?;

    let (conns_str, _) = take_between(rest, '"', '"', "conns").and_then(|_| {
        // conns="…" is the second quoted group after the request; find
        // it explicitly.
        let start = rest
            .find("conns=\"")
            .ok_or(NginxParseError::Malformed("conns"))?;
        let inner = &rest[start + 7..];
        let end = inner.find('"').ok_or(NginxParseError::Malformed("conns"))?;
        Ok((&inner[..end], &inner[end + 1..]))
    })?;
    let connections: Vec<u32> = conns_str
        .split_whitespace()
        .map(|c| {
            c.parse()
                .map_err(|_| NginxParseError::BadNumber { field: "conns" })
        })
        .collect::<Result<_, _>>()?;
    if connections.is_empty() {
        return Err(NginxParseError::Malformed("conns"));
    }
    if upstream >= connections.len() {
        return Err(NginxParseError::UpstreamOutOfRange {
            upstream,
            servers: connections.len(),
        });
    }

    Ok(NginxLogLine {
        remote_addr,
        msec,
        method,
        uri,
        protocol,
        status,
        body_bytes,
        upstream,
        request_time,
        connections,
        request_id,
    })
}

/// Parses a whole log, returning parsed lines and the indices of lines that
/// failed (with their errors).
pub fn parse_log(text: &str) -> (Vec<NginxLogLine>, Vec<(usize, NginxParseError)>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(l) => ok.push(l),
            Err(e) => bad.push((i, e)),
        }
    }
    (ok, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NginxLogLine {
        NginxLogLine {
            remote_addr: "10.0.0.1".to_string(),
            msec: 12.345678,
            method: "GET".to_string(),
            uri: "/api/maps".to_string(),
            protocol: "HTTP/1.1".to_string(),
            status: 200,
            body_bytes: 512,
            upstream: 2,
            request_time: 0.034,
            connections: vec![3, 5, 2],
            request_id: 77,
        }
    }

    #[test]
    fn format_then_parse_round_trips() {
        let line = sample().format_line();
        assert_eq!(
            line,
            "10.0.0.1 - - [12.345678] \"GET /api/maps HTTP/1.1\" 200 512 \
             upstream=2 rt=0.034000 conns=\"3 5 2\" req_id=77"
        );
        let parsed = parse_line(&line).unwrap();
        assert_eq!(parsed.remote_addr, "10.0.0.1");
        assert!((parsed.msec - 12.345678).abs() < 1e-9);
        assert_eq!(parsed.uri, "/api/maps");
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.upstream, 2);
        assert!((parsed.request_time - 0.034).abs() < 1e-9);
        assert_eq!(parsed.connections, vec![3, 5, 2]);
        assert_eq!(parsed.request_id, 77);
    }

    #[test]
    fn conversion_to_decision_record() {
        let rec = sample().to_decision_record();
        assert_eq!(rec.request_id, 77);
        assert_eq!(rec.shared_features, vec![3.0, 5.0, 2.0]);
        assert_eq!(rec.num_actions, 3);
        assert_eq!(rec.action, 2);
        assert_eq!(rec.reward, Some(-0.034));
        assert_eq!(rec.propensity, None, "propensity must be inferred");
    }

    #[test]
    fn rejects_truncated_lines() {
        assert!(matches!(
            parse_line("10.0.0.1 - -"),
            Err(NginxParseError::Malformed(_))
        ));
        assert!(parse_line("").is_err());
    }

    #[test]
    fn rejects_bad_numbers() {
        let bad = sample().format_line().replace("rt=0.034000", "rt=fast");
        assert_eq!(
            parse_line(&bad),
            Err(NginxParseError::BadNumber { field: "rt" })
        );
    }

    #[test]
    fn rejects_out_of_range_upstream() {
        let bad = sample().format_line().replace("upstream=2", "upstream=9");
        assert_eq!(
            parse_line(&bad),
            Err(NginxParseError::UpstreamOutOfRange {
                upstream: 9,
                servers: 3
            })
        );
    }

    #[test]
    fn parse_log_collects_errors_with_line_numbers() {
        let good = sample().format_line();
        let text = format!("{good}\ngarbage line here\n\n{good}\n");
        let (ok, bad) = parse_log(&text);
        assert_eq!(ok.len(), 2);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, 1);
    }

    #[test]
    fn uri_with_query_string_survives() {
        let mut l = sample();
        l.uri = "/search?q=a+b&lang=en".to_string();
        let parsed = parse_line(&l.format_line()).unwrap();
        assert_eq!(parsed.uri, "/search?q=a+b&lang=en");
    }

    #[test]
    fn display_of_errors() {
        let e = NginxParseError::UpstreamOutOfRange {
            upstream: 4,
            servers: 2,
        };
        assert!(e.to_string().contains("out of range"));
    }
}

//! The ops-plane scrape protocol: typed queries and report bodies carried
//! in [`FrameKind::Ops`] frames.
//!
//! A scrape is read-only observability traffic: it renders an export the
//! service already produces (Prometheus text, the JSON snapshot, the
//! window series, active alerts, or the alert event log) and ships it back
//! as an opaque string body. Scrapes pass the same admission door as
//! decisions — per-connection token bucket and the pending-work budget,
//! weight 1 — so a scrape storm degrades into explicit `Shed` answers
//! instead of starving the hot path. Unlike decisions, scrapes carry no
//! logical-clock stamp and never advance the server clock: observing the
//! system must not perturb the same-seed byte-equivalence the decision
//! path guarantees. For the same reason ops traffic keeps its own ledger
//! (`ops_requested == ops_served + ops_shed`) instead of leaking into the
//! decision ledger.

use serde::{Deserialize, Serialize};

use crate::frame::{encode_frame, CorruptKind, FrameKind};
use crate::proto::ShedReason;

/// What a scrape client wants rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpsQuery {
    /// The service's Prometheus text exposition (scope families included
    /// when the time-series plane is enabled).
    Prometheus,
    /// The structured JSON observability snapshot.
    Snapshot,
    /// The windowed time-series export (JSON), one object per sealed
    /// window frame.
    Series,
    /// The current watchdog alert states (JSON).
    Alerts,
    /// The full alert event log (JSON lines, one fire/clear event each).
    AlertEvents,
    /// The latest training round's ranked portfolio leaderboard (JSON) —
    /// per-candidate estimate, confidence interval, ESS, clipped mass.
    Leaderboard,
    /// The wire layer's own Prometheus exposition (frames, sheds, queue
    /// waits) — the transport observing itself.
    WirePrometheus,
}

/// What the server answers a scrape with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpsResponse {
    /// The rendered export. Same seed, same call sequence ⇒ byte-identical
    /// `body` across runs.
    Report {
        /// The export text: Prometheus exposition, JSON, or JSON lines
        /// depending on the query.
        body: String,
    },
    /// Admission refused the scrape; retry or back off.
    Shed {
        /// Why admission refused it.
        reason: ShedReason,
    },
}

/// Encodes a scrape query into a complete ops frame.
pub fn encode_ops_query(seq: u64, query: &OpsQuery) -> Vec<u8> {
    let payload = serde_json::to_string(query).expect("ops queries always serialize");
    encode_frame(FrameKind::Ops, seq, payload.as_bytes())
}

/// Encodes a scrape answer into a complete ops frame.
pub fn encode_ops_response(seq: u64, resp: &OpsResponse) -> Vec<u8> {
    let payload = serde_json::to_string(resp).expect("ops responses always serialize");
    encode_frame(FrameKind::Ops, seq, payload.as_bytes())
}

/// Parses a scrape query from ops-frame payload bytes.
pub fn decode_ops_query_payload(payload: &[u8]) -> Result<OpsQuery, CorruptKind> {
    let text = std::str::from_utf8(payload).map_err(|_| CorruptKind::BadPayload)?;
    serde_json::from_str(text).map_err(|_| CorruptKind::BadPayload)
}

/// Parses a scrape answer from ops-frame payload bytes.
pub fn decode_ops_response_payload(payload: &[u8]) -> Result<OpsResponse, CorruptKind> {
    let text = std::str::from_utf8(payload).map_err(|_| CorruptKind::BadPayload)?;
    serde_json::from_str(text).map_err(|_| CorruptKind::BadPayload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{decode_frame, Decoded};

    #[test]
    fn ops_queries_round_trip_through_frames() {
        let queries = [
            OpsQuery::Prometheus,
            OpsQuery::Snapshot,
            OpsQuery::Series,
            OpsQuery::Alerts,
            OpsQuery::AlertEvents,
            OpsQuery::Leaderboard,
            OpsQuery::WirePrometheus,
        ];
        for (i, q) in queries.iter().enumerate() {
            let frame = encode_ops_query(i as u64, q);
            match decode_frame(&frame) {
                Decoded::Frame {
                    kind: FrameKind::Ops,
                    seq,
                    payload,
                    consumed,
                } => {
                    assert_eq!(seq, i as u64);
                    assert_eq!(consumed, frame.len());
                    assert_eq!(&decode_ops_query_payload(&payload).expect("body"), q);
                }
                other => panic!("expected ops frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn ops_responses_round_trip_through_frames() {
        let resps = [
            OpsResponse::Report {
                body: "# HELP harvest_decisions_total ...\n".to_string(),
            },
            OpsResponse::Shed {
                reason: ShedReason::RateLimited,
            },
        ];
        for (i, r) in resps.iter().enumerate() {
            let frame = encode_ops_response(i as u64, r);
            match decode_frame(&frame) {
                Decoded::Frame {
                    kind: FrameKind::Ops,
                    seq,
                    payload,
                    ..
                } => {
                    assert_eq!(seq, i as u64);
                    assert_eq!(&decode_ops_response_payload(&payload).expect("body"), r);
                }
                other => panic!("expected ops frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn ops_frames_are_distinct_from_request_frames() {
        let frame = encode_ops_query(7, &OpsQuery::Prometheus);
        // The request-path decoder must refuse an ops frame rather than
        // misparse it.
        assert!(crate::proto::decode_request_frame(&frame).is_err());
    }
}

//! Wire-layer telemetry: request counters, shed accounting, histograms.
//!
//! Same shape as `harvest-serve`'s metrics: relaxed atomics on the hot
//! path, a serializable point-in-time snapshot, and a deterministic
//! Prometheus exposition. The load-bearing piece is the **wire ledger**:
//!
//! ```text
//! decisions_requested == decisions_served + shed_rate_limited
//!                                        + shed_queue_full
//!                                        + shed_deadline
//!                                        + decisions_errored
//! ```
//!
//! Every decision a client asks for is either served (possibly degraded,
//! with valid propensities) or explicitly shed with a reason — overload is
//! never allowed to become a silent gap or a protocol error. The ledger is
//! checkable from any snapshot because counters are bumped response-first:
//! a request is counted `requested` at admission, and exactly one of the
//! outcome counters fires before its response frame is encoded.

use std::sync::atomic::{AtomicU64, Ordering};

use harvest_obs::{AtomicHistogram, HistogramSummary, PromText};
use serde::Serialize;

const RELAXED: Ordering = Ordering::Relaxed;

/// Shared atomic counters and histograms for the wire layer.
#[derive(Default)]
pub struct WireMetrics {
    // Request frames by type.
    ping_requests: AtomicU64,
    decide_requests: AtomicU64,
    batch_requests: AtomicU64,
    reward_requests: AtomicU64,
    // The decision ledger, in logical decisions (a batch counts its size).
    decisions_requested: AtomicU64,
    decisions_served: AtomicU64,
    decisions_degraded: AtomicU64,
    shed_rate_limited: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_deadline: AtomicU64,
    decisions_errored: AtomicU64,
    // Rewards: forwarded to the joiner, or shed by the rate limit.
    rewards_forwarded: AtomicU64,
    rewards_shed: AtomicU64,
    // The ops-plane ledger, kept apart from the decision ledger: a scrape
    // is observability traffic, not a decision, so scrape sheds must not
    // perturb the SLO burn-rate signal computed over decision counters.
    ops_requests: AtomicU64,
    ops_served: AtomicU64,
    ops_shed: AtomicU64,
    // Protocol health.
    frames_corrupt: AtomicU64,
    protocol_errors: AtomicU64,
    responses_sent: AtomicU64,
    // Logical-time histograms (recorded from request stamps, so they are
    // deterministic under same-seed replay).
    queue_wait_ns: AtomicHistogram,
    request_latency_ns: AtomicHistogram,
    batch_sizes: AtomicHistogram,
}

impl WireMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        WireMetrics::default()
    }

    /// Counts one ping frame.
    pub fn record_ping(&self) {
        self.ping_requests.fetch_add(1, RELAXED);
    }

    /// Counts one decide frame asking for one decision.
    pub fn record_decide_request(&self) {
        self.decide_requests.fetch_add(1, RELAXED);
        self.decisions_requested.fetch_add(1, RELAXED);
    }

    /// Counts one batch frame asking for `n` decisions.
    pub fn record_batch_request(&self, n: u64) {
        self.batch_requests.fetch_add(1, RELAXED);
        self.decisions_requested.fetch_add(n, RELAXED);
        self.batch_sizes.record(n);
    }

    /// Counts one reward frame.
    pub fn record_reward_request(&self) {
        self.reward_requests.fetch_add(1, RELAXED);
    }

    /// Counts `n` decisions served, `degraded` of them by the safe arm.
    pub fn record_served(&self, n: u64, degraded: u64) {
        self.decisions_served.fetch_add(n, RELAXED);
        if degraded > 0 {
            self.decisions_degraded.fetch_add(degraded, RELAXED);
        }
    }

    /// Counts `n` decisions shed by the per-connection rate limit.
    pub fn record_shed_rate_limited(&self, n: u64) {
        self.shed_rate_limited.fetch_add(n, RELAXED);
    }

    /// Counts `n` decisions shed by the pending-work budget.
    pub fn record_shed_queue_full(&self, n: u64) {
        self.shed_queue_full.fetch_add(n, RELAXED);
    }

    /// Counts `n` decisions shed because their deadline lapsed in queue.
    pub fn record_shed_deadline(&self, n: u64) {
        self.shed_deadline.fetch_add(n, RELAXED);
    }

    /// Counts `n` decisions answered with an `Error` response (invalid
    /// shard, internal failure) — still ledgered, never silently lost.
    pub fn record_errored(&self, n: u64) {
        self.decisions_errored.fetch_add(n, RELAXED);
        self.protocol_errors.fetch_add(1, RELAXED);
    }

    /// Counts one reward forwarded to the joiner.
    pub fn record_reward_forwarded(&self) {
        self.rewards_forwarded.fetch_add(1, RELAXED);
    }

    /// Counts one reward shed by the rate limit.
    pub fn record_reward_shed(&self) {
        self.rewards_shed.fetch_add(1, RELAXED);
    }

    /// Counts one ops scrape frame received.
    pub fn record_ops_request(&self) {
        self.ops_requests.fetch_add(1, RELAXED);
    }

    /// Counts one ops scrape answered with a rendered report.
    pub fn record_ops_served(&self) {
        self.ops_served.fetch_add(1, RELAXED);
    }

    /// Counts one ops scrape refused by admission.
    pub fn record_ops_shed(&self) {
        self.ops_shed.fetch_add(1, RELAXED);
    }

    /// Counts one corrupt frame (the connection is closed after this).
    pub fn record_corrupt_frame(&self) {
        self.frames_corrupt.fetch_add(1, RELAXED);
    }

    /// Counts one `Error` response (invalid request, never overload).
    pub fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, RELAXED);
    }

    /// Counts one response frame sent.
    pub fn record_response(&self) {
        self.responses_sent.fetch_add(1, RELAXED);
    }

    /// Records how long a request sat queued, in logical ns.
    pub fn record_queue_wait(&self, ns: u64) {
        self.queue_wait_ns.record(ns);
    }

    /// Records a request's admission-to-response logical latency.
    pub fn record_request_latency(&self, ns: u64) {
        self.request_latency_ns.record(ns);
    }

    /// Total decisions shed, across all three reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed_rate_limited.load(RELAXED)
            + self.shed_queue_full.load(RELAXED)
            + self.shed_deadline.load(RELAXED)
    }

    /// Reads every counter at one instant.
    pub fn snapshot(&self) -> WireSnapshot {
        let requested = self.decisions_requested.load(RELAXED);
        let served = self.decisions_served.load(RELAXED);
        let shed_rate_limited = self.shed_rate_limited.load(RELAXED);
        let shed_queue_full = self.shed_queue_full.load(RELAXED);
        let shed_deadline = self.shed_deadline.load(RELAXED);
        let shed_total = shed_rate_limited + shed_queue_full + shed_deadline;
        let errored = self.decisions_errored.load(RELAXED);
        let ops_requests = self.ops_requests.load(RELAXED);
        let ops_served = self.ops_served.load(RELAXED);
        let ops_shed = self.ops_shed.load(RELAXED);
        WireSnapshot {
            ping_requests: self.ping_requests.load(RELAXED),
            decide_requests: self.decide_requests.load(RELAXED),
            batch_requests: self.batch_requests.load(RELAXED),
            reward_requests: self.reward_requests.load(RELAXED),
            decisions_requested: requested,
            decisions_served: served,
            decisions_degraded: self.decisions_degraded.load(RELAXED),
            shed_rate_limited,
            shed_queue_full,
            shed_deadline,
            shed_total,
            decisions_errored: errored,
            rewards_forwarded: self.rewards_forwarded.load(RELAXED),
            rewards_shed: self.rewards_shed.load(RELAXED),
            ops_requests,
            ops_served,
            ops_shed,
            frames_corrupt: self.frames_corrupt.load(RELAXED),
            protocol_errors: self.protocol_errors.load(RELAXED),
            responses_sent: self.responses_sent.load(RELAXED),
            ledger_ok: requested == served + shed_total + errored
                && ops_requests == ops_served + ops_shed,
            queue_wait_ns: self.queue_wait_ns.snapshot().summary(),
            request_latency_ns: self.request_latency_ns.snapshot().summary(),
            batch_sizes: self.batch_sizes.snapshot().summary(),
        }
    }

    /// Renders the `harvest_wire_*` Prometheus families. Deterministic:
    /// same counters, byte-identical page.
    pub fn export_prometheus(&self) -> String {
        let s = self.snapshot();
        let mut p = PromText::new();
        p.counter(
            "harvest_wire_ping_requests_total",
            "Ping frames received.",
            s.ping_requests,
        );
        p.counter(
            "harvest_wire_decide_requests_total",
            "Single-decision frames received.",
            s.decide_requests,
        );
        p.counter(
            "harvest_wire_batch_requests_total",
            "Batch frames received.",
            s.batch_requests,
        );
        p.counter(
            "harvest_wire_reward_requests_total",
            "Reward frames received.",
            s.reward_requests,
        );
        p.counter(
            "harvest_wire_decisions_requested_total",
            "Decisions asked for over the wire (batches count their size).",
            s.decisions_requested,
        );
        p.counter(
            "harvest_wire_decisions_served_total",
            "Decisions answered with a valid propensity.",
            s.decisions_served,
        );
        p.counter(
            "harvest_wire_decisions_degraded_total",
            "Served decisions that came from the safe arm (breaker open).",
            s.decisions_degraded,
        );
        p.counter(
            "harvest_wire_shed_rate_limited_total",
            "Decisions shed by per-connection rate limits.",
            s.shed_rate_limited,
        );
        p.counter(
            "harvest_wire_shed_queue_full_total",
            "Decisions shed by the pending-work budget.",
            s.shed_queue_full,
        );
        p.counter(
            "harvest_wire_shed_deadline_total",
            "Decisions shed because their deadline lapsed in queue.",
            s.shed_deadline,
        );
        p.counter(
            "harvest_wire_decisions_errored_total",
            "Decisions answered with an Error response.",
            s.decisions_errored,
        );
        p.counter(
            "harvest_wire_rewards_forwarded_total",
            "Rewards forwarded to the joiner.",
            s.rewards_forwarded,
        );
        p.counter(
            "harvest_wire_rewards_shed_total",
            "Rewards shed by rate limits.",
            s.rewards_shed,
        );
        p.counter(
            "harvest_wire_ops_requests_total",
            "Ops scrape frames received.",
            s.ops_requests,
        );
        p.counter(
            "harvest_wire_ops_served_total",
            "Ops scrapes answered with a rendered report.",
            s.ops_served,
        );
        p.counter(
            "harvest_wire_ops_shed_total",
            "Ops scrapes refused by admission.",
            s.ops_shed,
        );
        p.counter(
            "harvest_wire_frames_corrupt_total",
            "Corrupt frames (each closes its connection).",
            s.frames_corrupt,
        );
        p.counter(
            "harvest_wire_protocol_errors_total",
            "Error responses to invalid requests (never overload).",
            s.protocol_errors,
        );
        p.counter(
            "harvest_wire_responses_total",
            "Response frames sent.",
            s.responses_sent,
        );
        p.gauge(
            "harvest_wire_ledger_ok",
            "1 when requested == served + shed + errored.",
            if s.ledger_ok { 1.0 } else { 0.0 },
        );
        p.histogram(
            "harvest_wire_queue_wait_ns",
            "Logical ns a request sat queued before processing.",
            &self.queue_wait_ns.snapshot(),
        );
        p.histogram(
            "harvest_wire_request_latency_ns",
            "Logical ns from admission to response.",
            &self.request_latency_ns.snapshot(),
        );
        p.histogram(
            "harvest_wire_batch_sizes",
            "Decisions per batch frame.",
            &self.batch_sizes.snapshot(),
        );
        p.finish()
    }
}

/// A point-in-time reading of the wire counters.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WireSnapshot {
    /// Ping frames received.
    pub ping_requests: u64,
    /// Single-decision frames received.
    pub decide_requests: u64,
    /// Batch frames received.
    pub batch_requests: u64,
    /// Reward frames received.
    pub reward_requests: u64,
    /// Decisions asked for (batches count their size).
    pub decisions_requested: u64,
    /// Decisions answered with a valid propensity.
    pub decisions_served: u64,
    /// Served decisions that came from the safe arm.
    pub decisions_degraded: u64,
    /// Decisions shed by rate limits.
    pub shed_rate_limited: u64,
    /// Decisions shed by the pending-work budget.
    pub shed_queue_full: u64,
    /// Decisions shed past their deadline.
    pub shed_deadline: u64,
    /// All sheds summed.
    pub shed_total: u64,
    /// Decisions answered with an `Error` response.
    pub decisions_errored: u64,
    /// Rewards forwarded to the joiner.
    pub rewards_forwarded: u64,
    /// Rewards shed by rate limits.
    pub rewards_shed: u64,
    /// Ops scrape frames received.
    pub ops_requests: u64,
    /// Ops scrapes answered with a rendered report.
    pub ops_served: u64,
    /// Ops scrapes refused by admission.
    pub ops_shed: u64,
    /// Corrupt frames seen.
    pub frames_corrupt: u64,
    /// Error responses to invalid requests.
    pub protocol_errors: u64,
    /// Response frames sent.
    pub responses_sent: u64,
    /// Whether both ledgers held at read time: `requested == served +
    /// shed_total + errored` for decisions and `ops_requests ==
    /// ops_served + ops_shed` for scrapes.
    pub ledger_ok: bool,
    /// Logical queue-wait distribution.
    pub queue_wait_ns: HistogramSummary,
    /// Logical admission-to-response latency distribution.
    pub request_latency_ns: HistogramSummary,
    /// Decisions per batch frame.
    pub batch_sizes: HistogramSummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_balances_when_every_request_is_accounted() {
        let m = WireMetrics::new();
        m.record_decide_request();
        m.record_batch_request(4);
        m.record_served(3, 1);
        m.record_shed_rate_limited(1);
        m.record_shed_queue_full(1);
        let s = m.snapshot();
        assert_eq!(s.decisions_requested, 5);
        assert_eq!(s.shed_total, 2);
        assert!(s.ledger_ok, "5 == 3 served + 2 shed");
        assert_eq!(s.decisions_degraded, 1);
    }

    #[test]
    fn ledger_flags_an_unaccounted_request() {
        let m = WireMetrics::new();
        m.record_decide_request();
        assert!(
            !m.snapshot().ledger_ok,
            "requested but neither served nor shed"
        );
        m.record_served(1, 0);
        assert!(m.snapshot().ledger_ok);
    }

    #[test]
    fn exposition_is_stable_and_carries_wire_families() {
        let m = WireMetrics::new();
        m.record_decide_request();
        m.record_served(1, 0);
        m.record_queue_wait(1_000);
        m.record_request_latency(2_000);
        let a = m.export_prometheus();
        let b = m.export_prometheus();
        assert_eq!(a, b, "same state must render byte-identically");
        for family in [
            "harvest_wire_decisions_requested_total 1",
            "harvest_wire_decisions_served_total 1",
            "harvest_wire_ledger_ok 1",
            "# TYPE harvest_wire_request_latency_ns histogram",
        ] {
            assert!(a.contains(family), "missing `{family}` in:\n{a}");
        }
    }
}

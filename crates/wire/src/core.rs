//! The transport-independent heart of the front-end.
//!
//! Both transports — the real TCP listener and the deterministic in-memory
//! duplex — funnel every request through one [`WireCore`], so admission
//! semantics cannot drift between production and the seeded test path. A
//! request's life:
//!
//! ```text
//! decode ──▶ admit (reader side)             ──▶ process (worker side)
//!            │ advance logical clock             │ deadline re-check:
//!            │ rate limit (per-conn bucket)      │   lapsed in queue → Shed
//!            │ pending budget (QueueBudget)      │ serve / join
//!            │ full → Shed, never queued         │ release budget
//! ```
//!
//! Admission runs on the reader side so refused work costs one response
//! frame — never a queue slot, a worker dispatch, or a shard-cell acquire.
//! The deadline is checked a second time at the worker because that is the
//! check that matters: time queued *is* the overload signal.
//!
//! # Determinism
//!
//! The core holds no wall clock and no ambient RNG. Logical time is a
//! monotone maximum over the stamps clients put on their own requests
//! ([`SharedClock`]); rate-limit refills and deadline sheds derive from it
//! alone. Replaying the same frames in the same order reproduces the same
//! verdicts, the same decisions, and a byte-identical decision log — the
//! equivalence the `wire_equivalence` integration test pins down.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use harvest_log::segment::SegmentSink;
use harvest_serve::{DecisionBatch, DecisionService, QueueBudget, ServeMetrics, SEQ_BITS};

use crate::admission::TokenBucket;
use crate::metrics::WireMetrics;
use crate::ops::{OpsQuery, OpsResponse};
use crate::proto::{Request, Response, ShedReason, WireDecision};

/// The server's logical clock: a monotone maximum over every stamp seen.
/// Cheap to clone (one shared atomic); the deterministic duplex transport
/// also advances it explicitly to simulate queueing delay.
#[derive(Debug, Clone, Default)]
pub struct SharedClock(Arc<AtomicU64>);

impl SharedClock {
    /// A clock at logical zero.
    pub fn new() -> Self {
        SharedClock::default()
    }

    /// The current logical time.
    pub fn now_ns(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    /// Advances to `ns` if that is later than the current reading (stamps
    /// arriving out of order across connections never move time backwards).
    pub fn advance_to(&self, ns: u64) {
        self.0.fetch_max(ns, Ordering::SeqCst);
    }
}

/// Admission knobs for the front-end.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct WireConfig {
    /// Per-connection token-bucket rate in decisions per logical second;
    /// 0 disables rate limiting.
    pub rate_per_sec: u64,
    /// Per-connection burst: the bucket's capacity in decisions.
    pub burst: u64,
    /// Server-wide bound on admitted-but-unprocessed decisions, enforced
    /// by a [`QueueBudget`]; work past it is shed at the door.
    pub pending_capacity: u64,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            rate_per_sec: 0,
            burst: 0,
            pending_capacity: 4096,
        }
    }
}

impl WireConfig {
    /// A builder starting from the defaults (no rate limit, pending
    /// capacity 4096).
    pub fn builder() -> WireConfigBuilder {
        WireConfigBuilder(WireConfig::default())
    }
}

/// Builder for [`WireConfig`].
#[derive(Debug, Clone)]
pub struct WireConfigBuilder(WireConfig);

impl WireConfigBuilder {
    /// Per-connection rate limit in decisions per logical second (0 = off).
    pub fn rate_per_sec(mut self, rate: u64) -> Self {
        self.0.rate_per_sec = rate;
        self
    }

    /// Per-connection burst capacity in decisions.
    pub fn burst(mut self, burst: u64) -> Self {
        self.0.burst = burst;
        self
    }

    /// Server-wide pending-decision budget.
    pub fn pending_capacity(mut self, capacity: u64) -> Self {
        self.0.pending_capacity = capacity;
        self
    }

    /// Returns the config.
    pub fn build(self) -> WireConfig {
        self.0
    }
}

/// Per-connection admission state, owned by the connection's reader.
#[derive(Debug)]
pub struct ConnState {
    /// The connection id rate limits are keyed by.
    pub conn_id: u64,
    bucket: TokenBucket,
}

/// An admitted request, holding its pending-budget reservation until
/// [`WireCore::process`] releases it.
#[derive(Debug)]
pub struct Job {
    /// The admitting connection.
    pub conn_id: u64,
    /// The frame's correlation id, echoed into the response.
    pub seq: u64,
    /// Logical time at admission.
    pub arrival_ns: u64,
    /// Reserved budget in logical decisions.
    pub weight: u64,
    /// The request body.
    pub request: Request,
}

/// What the door decided.
#[derive(Debug)]
pub enum Admission {
    /// Admitted: hand the job to a worker, then [`WireCore::process`] it.
    Enqueue(Job),
    /// Answered at the door (a pong, or a shed): write the response, done.
    Reply(u64, Response),
}

/// The shared front-end state: service handle, admission pipeline, and
/// wire telemetry. One per server; transports hold it in an `Arc`.
pub struct WireCore<S: SegmentSink + Send + 'static> {
    svc: Arc<DecisionService<S>>,
    serve_metrics: Arc<ServeMetrics>,
    cfg: WireConfig,
    pending: QueueBudget,
    clock: SharedClock,
    metrics: Arc<WireMetrics>,
    conn_ids: AtomicU64,
}

impl<S: SegmentSink + Send + 'static> WireCore<S> {
    /// Wraps a running service in the admission pipeline.
    pub fn new(svc: Arc<DecisionService<S>>, cfg: WireConfig) -> Self {
        let serve_metrics = svc.metrics_handle();
        WireCore {
            svc,
            serve_metrics,
            cfg,
            pending: QueueBudget::new(cfg.pending_capacity.max(1)),
            clock: SharedClock::new(),
            metrics: Arc::new(WireMetrics::new()),
            conn_ids: AtomicU64::new(0),
        }
    }

    /// The wrapped decision service.
    pub fn service(&self) -> &Arc<DecisionService<S>> {
        &self.svc
    }

    /// The wire telemetry handle.
    pub fn metrics(&self) -> &Arc<WireMetrics> {
        &self.metrics
    }

    /// The server's logical clock.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Registers a connection: assigns the next id and a fresh, full
    /// token bucket.
    pub fn connect(&self) -> ConnState {
        ConnState {
            conn_id: self.conn_ids.fetch_add(1, Ordering::SeqCst),
            bucket: TokenBucket::new(self.cfg.rate_per_sec, self.cfg.burst),
        }
    }

    /// Door-side admission: advances the logical clock, applies the
    /// connection's rate limit and the pending budget, and either admits
    /// the request or produces its response on the spot. Refusals are
    /// ledgered here — in the wire counters *and* in the service's
    /// `admission_shed` — before the response is returned.
    pub fn admit(&self, conn: &mut ConnState, seq: u64, request: Request) -> Admission {
        if let Some(stamp) = request.stamp_ns() {
            self.clock.advance_to(stamp);
        }
        let arrival_ns = self.clock.now_ns();
        let weight = request.weight();
        match &request {
            Request::Ping { nonce } => {
                self.metrics.record_ping();
                self.metrics.record_response();
                return Admission::Reply(seq, Response::Pong { nonce: *nonce });
            }
            Request::Decide { .. } => self.metrics.record_decide_request(),
            Request::DecideBatch { .. } => self.metrics.record_batch_request(weight),
            Request::Reward { .. } => self.metrics.record_reward_request(),
        }
        let is_reward = matches!(request, Request::Reward { .. });
        if !conn.bucket.try_take(weight, arrival_ns) {
            self.shed(&request, weight, ShedReason::RateLimited);
            self.metrics.record_response();
            return Admission::Reply(
                seq,
                Response::Shed {
                    reason: ShedReason::RateLimited,
                },
            );
        }
        // Rewards are admitted against the same pending budget as
        // decisions (weight 1): a reward flood can overload the joiner
        // exactly like a decide flood overloads the shards.
        if !self.pending.try_acquire(weight.max(1)) {
            self.shed(&request, weight, ShedReason::QueueFull);
            self.metrics.record_response();
            return Admission::Reply(
                seq,
                Response::Shed {
                    reason: ShedReason::QueueFull,
                },
            );
        }
        let _ = is_reward;
        Admission::Enqueue(Job {
            conn_id: conn.conn_id,
            seq,
            arrival_ns,
            weight: weight.max(1),
            request,
        })
    }

    /// Worker-side processing: re-checks the deadline (work that expired
    /// while queued is shed without touching a shard), serves the request,
    /// releases the pending-budget reservation, and returns the response
    /// to write. Every path through here releases exactly `job.weight`.
    pub fn process(&self, job: Job) -> (u64, Response) {
        let now_ns = self.clock.now_ns();
        self.metrics
            .record_queue_wait(now_ns.saturating_sub(job.arrival_ns));
        let response = match job.request {
            Request::Ping { nonce } => Response::Pong { nonce },
            Request::Decide {
                shard,
                now_ns: stamp_ns,
                budget_ns,
                context,
            } => {
                if deadline_lapsed(stamp_ns, budget_ns, now_ns) {
                    self.metrics.record_shed_deadline(1);
                    self.serve_metrics.record_admission_shed_n(1);
                    Response::Shed {
                        reason: ShedReason::DeadlineExpired,
                    }
                } else {
                    match self.svc.decide(shard as usize, stamp_ns, &context) {
                        Ok(d) => {
                            self.metrics.record_served(1, u64::from(d.degraded));
                            Response::Decision(WireDecision::from(&d))
                        }
                        Err(e) => {
                            self.metrics.record_errored(1);
                            Response::Error {
                                message: e.to_string(),
                            }
                        }
                    }
                }
            }
            Request::DecideBatch {
                shard,
                now_ns: stamp_ns,
                budget_ns,
                contexts,
            } => {
                let n = contexts.len() as u64;
                if deadline_lapsed(stamp_ns, budget_ns, now_ns) {
                    self.metrics.record_shed_deadline(n);
                    self.serve_metrics.record_admission_shed_n(n);
                    Response::Shed {
                        reason: ShedReason::DeadlineExpired,
                    }
                } else {
                    let mut out = DecisionBatch::with_capacity(contexts.len());
                    match self
                        .svc
                        .decide_batch(shard as usize, stamp_ns, &contexts, &mut out)
                    {
                        Ok(()) => {
                            let degraded =
                                out.decisions().iter().filter(|d| d.degraded).count() as u64;
                            self.metrics.record_served(n, degraded);
                            Response::Batch(
                                out.decisions().iter().map(WireDecision::from).collect(),
                            )
                        }
                        Err(e) => {
                            self.metrics.record_errored(n);
                            Response::Error {
                                message: e.to_string(),
                            }
                        }
                    }
                }
            }
            Request::Reward {
                request_id,
                now_ns: stamp_ns,
                reward,
            } => {
                let outcome = self.svc.reward(request_id, stamp_ns, reward);
                self.metrics.record_reward_forwarded();
                Response::RewardAck {
                    request_id,
                    outcome: outcome.into(),
                }
            }
        };
        self.pending.release(job.weight);
        self.metrics
            .record_request_latency(self.clock.now_ns().saturating_sub(job.arrival_ns));
        self.metrics.record_response();
        (job.seq, response)
    }

    /// Answers an ops-plane scrape at the door, like a ping — but unlike
    /// a ping it pays admission: weight 1 against the connection's token
    /// bucket and the pending budget, so a scrape storm sheds explicitly
    /// instead of starving decisions. A scrape carries no logical stamp
    /// and never advances the clock — observing the system must not
    /// perturb same-seed byte-equivalence on the decision path. Scrape
    /// refusals land on the separate ops ledger, not the decision ledger
    /// and not the service's `admission_shed` (which feeds the SLO
    /// burn-rate watchdog).
    pub fn ops(&self, conn: &mut ConnState, query: OpsQuery) -> OpsResponse {
        self.metrics.record_ops_request();
        let now_ns = self.clock.now_ns();
        if !conn.bucket.try_take(1, now_ns) {
            self.metrics.record_ops_shed();
            self.metrics.record_response();
            return OpsResponse::Shed {
                reason: ShedReason::RateLimited,
            };
        }
        if !self.pending.try_acquire(1) {
            self.metrics.record_ops_shed();
            self.metrics.record_response();
            return OpsResponse::Shed {
                reason: ShedReason::QueueFull,
            };
        }
        let body = match query {
            OpsQuery::Prometheus => self.svc.export_prometheus(),
            OpsQuery::Snapshot => {
                serde_json::to_string(&self.svc.obs_snapshot()).expect("snapshots always serialize")
            }
            OpsQuery::Series => self
                .svc
                .export_series_json()
                .unwrap_or_else(|| "null".to_string()),
            OpsQuery::Alerts => self
                .svc
                .export_alerts_json()
                .unwrap_or_else(|| "null".to_string()),
            OpsQuery::AlertEvents => self.svc.export_alert_events_jsonl().unwrap_or_default(),
            OpsQuery::Leaderboard => self
                .svc
                .export_leaderboard_json()
                .unwrap_or_else(|| "null".to_string()),
            OpsQuery::WirePrometheus => self.metrics.export_prometheus(),
        };
        self.pending.release(1);
        self.metrics.record_ops_served();
        self.metrics.record_response();
        OpsResponse::Report { body }
    }

    /// Routes a request to a worker by shard, so one shard's traffic —
    /// decisions *and* the rewards joining back to them — lands on one
    /// worker. This is the worker-pool half of the engine's shard-affinity
    /// contract: with each shard owned by one worker, the shard cell
    /// acquire stays an uncontended atomic swap and the shard's SPSC
    /// log-ring producer gate stays private to that worker. Cross-worker
    /// traffic would still be *correct* (the engine falls back to a striped
    /// spin acquire), but it pays cache-line handoffs the affine path never
    /// sees — so routing here is a performance invariant, not a safety one.
    /// Pings and unroutable requests go to worker 0.
    pub fn route_worker(request: &Request, workers: usize) -> usize {
        debug_assert!(workers > 0);
        request
            .route_shard(SEQ_BITS)
            .map(|shard| (shard % workers.max(1) as u64) as usize)
            .unwrap_or(0)
    }

    /// Ledgers a shed: wire counters by reason, and the service's
    /// front-door `admission_shed` so the global conservation accounting
    /// covers work the wire refused.
    fn shed(&self, request: &Request, weight: u64, reason: ShedReason) {
        if matches!(request, Request::Reward { .. }) {
            self.metrics.record_reward_shed();
        } else {
            match reason {
                ShedReason::RateLimited => self.metrics.record_shed_rate_limited(weight),
                ShedReason::QueueFull => self.metrics.record_shed_queue_full(weight),
                ShedReason::DeadlineExpired => self.metrics.record_shed_deadline(weight),
            }
        }
        self.serve_metrics.record_admission_shed_n(weight.max(1));
    }
}

/// Whether a request stamped `stamp_ns` with deadline budget `budget_ns`
/// (0 = none) has expired by logical time `now_ns`.
fn deadline_lapsed(stamp_ns: u64, budget_ns: u64, now_ns: u64) -> bool {
    budget_ns > 0 && now_ns > stamp_ns.saturating_add(budget_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_core::SimpleContext;
    use harvest_log::segment::MemorySegments;
    use harvest_serve::ServeConfig;

    fn core(cfg: WireConfig) -> WireCore<MemorySegments> {
        let svc = ServeConfig::builder()
            .shards(2)
            .epsilon(0.2)
            .master_seed(5)
            .build()
            .expect("valid config");
        WireCore::new(
            Arc::new(DecisionService::new(svc, MemorySegments::new())),
            cfg,
        )
    }

    fn decide(shard: u32, now_ns: u64, budget_ns: u64) -> Request {
        Request::Decide {
            shard,
            now_ns,
            budget_ns,
            context: SimpleContext::new(vec![0.5], 3),
        }
    }

    #[test]
    fn admitted_decide_serves_and_releases_budget() {
        let c = core(WireConfig::builder().pending_capacity(1).build());
        let mut conn = c.connect();
        let Admission::Enqueue(job) = c.admit(&mut conn, 1, decide(0, 100, 0)) else {
            panic!("must admit under an empty budget");
        };
        let (seq, resp) = c.process(job);
        assert_eq!(seq, 1);
        assert!(matches!(resp, Response::Decision(d) if !d.degraded));
        // The reservation came back: the next request is admitted too.
        assert!(matches!(
            c.admit(&mut conn, 2, decide(0, 200, 0)),
            Admission::Enqueue(_)
        ));
        let s = c.metrics().snapshot();
        assert!(
            s.ledger_ok || s.decisions_requested == 2,
            "one still queued"
        );
    }

    #[test]
    fn full_pending_budget_sheds_at_the_door() {
        let c = core(WireConfig::builder().pending_capacity(2).build());
        let mut conn = c.connect();
        let mut jobs = Vec::new();
        let mut sheds = 0;
        for i in 0..5u64 {
            match c.admit(&mut conn, i, decide(0, 100 + i, 0)) {
                Admission::Enqueue(j) => jobs.push(j),
                Admission::Reply(_, Response::Shed { reason }) => {
                    assert_eq!(reason, ShedReason::QueueFull);
                    sheds += 1;
                }
                other => panic!("unexpected admission {other:?}"),
            }
        }
        assert_eq!(jobs.len(), 2);
        assert_eq!(sheds, 3);
        for j in jobs {
            c.process(j);
        }
        let s = c.metrics().snapshot();
        assert!(s.ledger_ok, "2 served + 3 shed == 5 requested: {s:?}");
        assert_eq!(c.service().metrics().admission_shed, 3);
    }

    #[test]
    fn rate_limit_sheds_past_the_burst() {
        let c = core(
            WireConfig::builder()
                .rate_per_sec(1)
                .burst(2)
                .pending_capacity(100)
                .build(),
        );
        let mut conn = c.connect();
        let mut admitted = 0;
        let mut shed = 0;
        // All at the same logical instant: only the burst fits.
        for i in 0..10u64 {
            match c.admit(&mut conn, i, decide(0, 100, 0)) {
                Admission::Enqueue(j) => {
                    admitted += 1;
                    c.process(j);
                }
                Admission::Reply(_, Response::Shed { reason }) => {
                    assert_eq!(reason, ShedReason::RateLimited);
                    shed += 1;
                }
                other => panic!("unexpected admission {other:?}"),
            }
        }
        assert_eq!((admitted, shed), (2, 8));
        // A fresh connection gets its own bucket.
        let mut conn2 = c.connect();
        assert!(matches!(
            c.admit(&mut conn2, 11, decide(0, 100, 0)),
            Admission::Enqueue(_)
        ));
    }

    #[test]
    fn deadline_lapsed_in_queue_is_shed_before_the_shard() {
        let c = core(WireConfig::default());
        let mut conn = c.connect();
        // Budget of 50ns from stamp 100: expires at logical 150.
        let Admission::Enqueue(job) = c.admit(&mut conn, 1, decide(0, 100, 50)) else {
            panic!("must admit");
        };
        // Another request advances the server clock past the deadline
        // while the first is still queued.
        let Admission::Enqueue(job2) = c.admit(&mut conn, 2, decide(1, 500, 0)) else {
            panic!("must admit");
        };
        let (_, resp) = c.process(job);
        assert!(matches!(
            resp,
            Response::Shed {
                reason: ShedReason::DeadlineExpired
            }
        ));
        let (_, resp2) = c.process(job2);
        assert!(matches!(resp2, Response::Decision(_)));
        let s = c.metrics().snapshot();
        assert_eq!(s.shed_deadline, 1);
        assert!(s.ledger_ok);
        // No decision was burned on the expired request: the service saw
        // exactly one.
        assert_eq!(c.service().metrics().decisions, 1);
    }

    #[test]
    fn bad_shard_is_an_error_and_still_ledgered() {
        let c = core(WireConfig::default());
        let mut conn = c.connect();
        let Admission::Enqueue(job) = c.admit(&mut conn, 1, decide(99, 100, 0)) else {
            panic!("must admit");
        };
        let (_, resp) = c.process(job);
        assert!(matches!(resp, Response::Error { .. }));
        let s = c.metrics().snapshot();
        assert_eq!(s.decisions_errored, 1);
        assert!(s.ledger_ok, "errors stay on the ledger: {s:?}");
    }

    #[test]
    fn ping_bypasses_admission_entirely() {
        let c = core(
            WireConfig::builder()
                .rate_per_sec(1)
                .burst(1)
                .pending_capacity(1)
                .build(),
        );
        let mut conn = c.connect();
        // Exhaust the bucket and the budget.
        let Admission::Enqueue(_job) = c.admit(&mut conn, 1, decide(0, 0, 0)) else {
            panic!("must admit");
        };
        // Pings still answer: health checks must work under overload.
        for i in 0..20u64 {
            match c.admit(&mut conn, 100 + i, Request::Ping { nonce: i }) {
                Admission::Reply(_, Response::Pong { nonce }) => assert_eq!(nonce, i),
                other => panic!("ping must pong, got {other:?}"),
            }
        }
    }

    #[test]
    fn ops_scrapes_pass_admission_but_never_advance_the_clock() {
        let c = core(WireConfig::default());
        let mut conn = c.connect();
        let Admission::Enqueue(job) = c.admit(&mut conn, 1, decide(0, 5_000, 0)) else {
            panic!("must admit");
        };
        c.process(job);
        let before = c.clock().now_ns();
        let resp = c.ops(&mut conn, OpsQuery::Prometheus);
        let OpsResponse::Report { body } = resp else {
            panic!("scrape must serve under an idle door");
        };
        assert!(body.contains("harvest_decisions_total"));
        assert_eq!(c.clock().now_ns(), before, "scrapes must not move time");
        let s = c.metrics().snapshot();
        assert_eq!((s.ops_requests, s.ops_served, s.ops_shed), (1, 1, 0));
        assert!(s.ledger_ok, "both ledgers balance: {s:?}");
    }

    #[test]
    fn ops_scrapes_shed_past_the_rate_limit_without_touching_decisions() {
        let c = core(
            WireConfig::builder()
                .rate_per_sec(1)
                .burst(2)
                .pending_capacity(100)
                .build(),
        );
        let mut conn = c.connect();
        let mut served = 0;
        let mut shed = 0;
        for _ in 0..10 {
            match c.ops(&mut conn, OpsQuery::Alerts) {
                OpsResponse::Report { .. } => served += 1,
                OpsResponse::Shed { reason } => {
                    assert_eq!(reason, ShedReason::RateLimited);
                    shed += 1;
                }
            }
        }
        assert_eq!((served, shed), (2, 8), "only the burst fits at one instant");
        let s = c.metrics().snapshot();
        assert_eq!(s.ops_shed, 8);
        assert_eq!(
            s.decisions_requested, 0,
            "scrapes stay off the decision ledger"
        );
        assert!(s.ledger_ok);
        // Scrape sheds must not leak into the service's admission_shed —
        // that counter feeds the SLO burn-rate watchdog.
        assert_eq!(c.service().metrics().admission_shed, 0);
    }

    #[test]
    fn rewards_route_to_their_decision_shard() {
        let req = Request::Reward {
            request_id: (5u64 << SEQ_BITS) | 42,
            now_ns: 0,
            reward: 1.0,
        };
        assert_eq!(WireCore::<MemorySegments>::route_worker(&req, 4), 1); // 5 % 4
        let ping = Request::Ping { nonce: 0 };
        assert_eq!(WireCore::<MemorySegments>::route_worker(&ping, 4), 0);
    }
}

//! The production TCP transport.
//!
//! One listener thread accepts connections; each connection gets a reader
//! thread that decodes frames and runs door-side admission inline (pings
//! and sheds answer without ever touching a worker). Admitted jobs are
//! dispatched to a fixed pool of *shard-affine* workers: a request routes
//! to the worker owning its shard ([`WireCore::route_worker`]), so one
//! shard's decisions — and the rewards joining back to them — serialize on
//! one worker and the batched serve path stays uncontended across shards.
//!
//! Responses are written back under a per-connection write lock (reader
//! and workers share the socket's write half); clients correlate them by
//! the echoed header `seq`, since shard-affinity may reorder completions
//! within a connection.
//!
//! A corrupt frame kills its connection — a byte stream has no resync
//! point after a failed CRC — and is counted in `frames_corrupt`.
//!
//! This module is the only part of the crate that touches sockets, and
//! even here there is no wall clock and no ambient randomness: time is
//! still the logical [`SharedClock`](crate::core::SharedClock) advanced by
//! request stamps, so admission verdicts stay a pure function of the
//! traffic.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

use harvest_log::segment::SegmentSink;

use crate::core::{Admission, Job, WireCore};
use crate::frame::{FrameDecoder, FrameKind};
use crate::ops::{
    decode_ops_query_payload, decode_ops_response_payload, encode_ops_query, encode_ops_response,
    OpsQuery, OpsResponse,
};
use crate::proto::{
    decode_request_payload, decode_response_payload, encode_request, encode_response, Request,
    Response,
};
use crate::transport::{Connection, Transport};

struct WorkItem {
    job: Job,
    reply: Arc<Mutex<TcpStream>>,
}

struct Registry {
    readers: Mutex<Vec<thread::JoinHandle<()>>>,
    conns: Mutex<Vec<TcpStream>>,
}

/// A running TCP front-end: listener, per-connection readers, shard-affine
/// worker pool. Dropping it without [`TcpServer::shutdown`] leaks threads;
/// call shutdown for an orderly stop.
pub struct TcpServer<S: SegmentSink + Send + 'static> {
    core: Arc<WireCore<S>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
    registry: Arc<Registry>,
    worker_txs: Vec<mpsc::Sender<WorkItem>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl<S: SegmentSink + Send + 'static> TcpServer<S> {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// listener plus `workers` shard-affine workers.
    pub fn bind(
        core: Arc<WireCore<S>>,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Registry {
            readers: Mutex::new(Vec::new()),
            conns: Mutex::new(Vec::new()),
        });

        let workers = workers.max(1);
        let mut worker_txs = Vec::with_capacity(workers);
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = mpsc::channel::<WorkItem>();
            let core = Arc::clone(&core);
            worker_txs.push(tx);
            worker_handles.push(
                thread::Builder::new()
                    .name(format!("wire-worker-{i}"))
                    .spawn(move || {
                        while let Ok(item) = rx.recv() {
                            let (seq, resp) = core.process(item.job);
                            let frame = encode_response(seq, &resp);
                            let mut stream = item.reply.lock().unwrap_or_else(|p| p.into_inner());
                            // A client that hung up mid-flight is not an
                            // error worth more than the counter bump the
                            // reader already took.
                            let _ = stream.write_all(&frame);
                        }
                    })
                    .expect("spawn wire worker"),
            );
        }

        let accept = {
            let core = Arc::clone(&core);
            let stop = Arc::clone(&stop);
            let registry = Arc::clone(&registry);
            let worker_txs = worker_txs.clone();
            thread::Builder::new()
                .name("wire-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let (Ok(writer), Ok(registered)) = (stream.try_clone(), stream.try_clone())
                        else {
                            continue;
                        };
                        registry
                            .conns
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .push(registered);
                        let core = Arc::clone(&core);
                        let worker_txs = worker_txs.clone();
                        let handle = thread::Builder::new()
                            .name("wire-reader".to_string())
                            .spawn(move || {
                                reader_loop(core, stream, Arc::new(Mutex::new(writer)), worker_txs)
                            })
                            .expect("spawn wire reader");
                        registry
                            .readers
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .push(handle);
                    }
                })
                .expect("spawn wire accept loop")
        };

        Ok(TcpServer {
            core,
            addr,
            stop,
            accept: Some(accept),
            registry,
            worker_txs,
            workers: worker_handles,
        })
    }

    /// The bound address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared front-end state.
    pub fn core(&self) -> &Arc<WireCore<S>> {
        &self.core
    }

    /// Stops accepting, closes every connection, drains the workers, and
    /// joins all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Closing the server-side streams pops every reader out of read().
        for conn in self
            .registry
            .conns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        let readers: Vec<_> = self
            .registry
            .readers
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
            .collect();
        for handle in readers {
            let _ = handle.join();
        }
        // With every reader gone, dropping the senders disconnects the
        // worker channels and the pool drains out.
        self.worker_txs.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn reader_loop<S: SegmentSink + Send + 'static>(
    core: Arc<WireCore<S>>,
    mut stream: TcpStream,
    writer: Arc<Mutex<TcpStream>>,
    worker_txs: Vec<mpsc::Sender<WorkItem>>,
) {
    let mut conn = core.connect();
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    'conn: loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        decoder.extend(&buf[..n]);
        loop {
            match decoder.next_frame() {
                Ok(Some((FrameKind::Request, seq, payload))) => {
                    let request = match decode_request_payload(&payload) {
                        Ok(r) => r,
                        Err(_) => {
                            core.metrics().record_corrupt_frame();
                            break 'conn;
                        }
                    };
                    let route = WireCore::<S>::route_worker(&request, worker_txs.len());
                    match core.admit(&mut conn, seq, request) {
                        Admission::Reply(seq, resp) => {
                            let frame = encode_response(seq, &resp);
                            let mut w = writer.lock().unwrap_or_else(|p| p.into_inner());
                            if w.write_all(&frame).is_err() {
                                break 'conn;
                            }
                        }
                        Admission::Enqueue(job) => {
                            let item = WorkItem {
                                job,
                                reply: Arc::clone(&writer),
                            };
                            if worker_txs[route].send(item).is_err() {
                                // Workers only disappear at shutdown.
                                break 'conn;
                            }
                        }
                    }
                }
                Ok(Some((FrameKind::Ops, seq, payload))) => {
                    // Scrapes answer inline at the door like pings — no
                    // worker dispatch — but core.ops() charges admission.
                    let query = match decode_ops_query_payload(&payload) {
                        Ok(q) => q,
                        Err(_) => {
                            core.metrics().record_corrupt_frame();
                            break 'conn;
                        }
                    };
                    let resp = core.ops(&mut conn, query);
                    let frame = encode_ops_response(seq, &resp);
                    let mut w = writer.lock().unwrap_or_else(|p| p.into_inner());
                    if w.write_all(&frame).is_err() {
                        break 'conn;
                    }
                }
                Ok(Some((FrameKind::Response, _, _))) => {
                    core.metrics().record_protocol_error();
                    break 'conn;
                }
                Ok(None) => break,
                Err(_) => {
                    core.metrics().record_corrupt_frame();
                    break 'conn;
                }
            }
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// A blocking TCP client speaking the wire protocol.
pub struct TcpClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    next_seq: u64,
}

impl TcpClient {
    /// Connects to a [`TcpServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient {
            stream,
            decoder: FrameDecoder::new(),
            next_seq: 0,
        })
    }

    /// Sends one ops-plane scrape and blocks for its answer. Don't
    /// interleave with in-flight decision calls on the same connection —
    /// a decision response arriving first would be misread here; use a
    /// dedicated scrape connection (that also gives the scraper its own
    /// token bucket, so scrape sheds never charge the decision path).
    pub fn ops(&mut self, query: &OpsQuery) -> io::Result<OpsResponse> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stream.write_all(&encode_ops_query(seq, query))?;
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.decoder.next_frame() {
                Ok(Some((FrameKind::Ops, got_seq, payload))) => {
                    if got_seq != seq {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "ops response for a different seq",
                        ));
                    }
                    return decode_ops_response_payload(&payload).map_err(|kind| {
                        io::Error::new(io::ErrorKind::InvalidData, format!("bad ops body: {kind}"))
                    });
                }
                Ok(Some(_)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "non-ops frame while awaiting a scrape answer",
                    ));
                }
                Ok(None) => {
                    let n = self.stream.read(&mut buf)?;
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection",
                        ));
                    }
                    self.decoder.extend(&buf[..n]);
                }
                Err(kind) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt frame from server: {kind}"),
                    ));
                }
            }
        }
    }
}

impl Connection for TcpClient {
    fn send(&mut self, request: &Request) -> io::Result<u64> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stream.write_all(&encode_request(seq, request))?;
        Ok(seq)
    }

    fn recv(&mut self) -> io::Result<(u64, Response)> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.decoder.next_frame() {
                Ok(Some((FrameKind::Response, seq, payload))) => {
                    let resp = decode_response_payload(&payload).map_err(|kind| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("bad response body: {kind}"),
                        )
                    })?;
                    return Ok((seq, resp));
                }
                Ok(Some((FrameKind::Request, _, _))) | Ok(Some((FrameKind::Ops, _, _))) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unexpected frame kind while awaiting a response",
                    ));
                }
                Ok(None) => {
                    let n = self.stream.read(&mut buf)?;
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection",
                        ));
                    }
                    self.decoder.extend(&buf[..n]);
                }
                Err(kind) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt frame from server: {kind}"),
                    ));
                }
            }
        }
    }
}

impl<S: SegmentSink + Send + 'static> Transport for TcpServer<S> {
    type Conn = TcpClient;

    fn connect(&self) -> io::Result<Self::Conn> {
        TcpClient::connect(self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::WireConfig;
    use harvest_core::SimpleContext;
    use harvest_log::segment::MemorySegments;
    use harvest_serve::{DecisionService, ServeConfig};

    fn server(workers: usize) -> TcpServer<MemorySegments> {
        let cfg = ServeConfig::builder()
            .shards(4)
            .epsilon(0.2)
            .master_seed(3)
            .build()
            .expect("valid config");
        let svc = Arc::new(DecisionService::new(cfg, MemorySegments::new()));
        let core = Arc::new(WireCore::new(svc, WireConfig::default()));
        TcpServer::bind(core, "127.0.0.1:0", workers).expect("bind loopback")
    }

    #[test]
    fn ping_decide_reward_over_loopback() {
        let server = server(2);
        let mut client = server.connect().expect("connect");
        assert_eq!(
            client.call(&Request::Ping { nonce: 11 }).expect("ping"),
            Response::Pong { nonce: 11 }
        );
        let resp = client
            .call(&Request::Decide {
                shard: 1,
                now_ns: 1_000,
                budget_ns: 0,
                context: SimpleContext::new(vec![0.5], 3),
            })
            .expect("decide");
        let Response::Decision(d) = resp else {
            panic!("expected a decision, got {resp:?}");
        };
        assert!(d.propensity > 0.0);
        let ack = client
            .call(&Request::Reward {
                request_id: d.request_id,
                now_ns: 2_000,
                reward: 1.0,
            })
            .expect("reward");
        assert!(matches!(
            ack,
            Response::RewardAck { request_id, .. } if request_id == d.request_id
        ));
        server.shutdown();
    }

    #[test]
    fn many_connections_share_the_worker_pool() {
        let server = server(3);
        let mut handles = Vec::new();
        for c in 0..4u32 {
            let addr = server.local_addr();
            handles.push(thread::spawn(move || {
                let mut client = TcpClient::connect(addr).expect("connect");
                let mut served = 0;
                for i in 0..25u64 {
                    let resp = client
                        .call(&Request::Decide {
                            shard: c % 4,
                            now_ns: 1_000 + i,
                            budget_ns: 0,
                            context: SimpleContext::contextless(2),
                        })
                        .expect("decide");
                    if matches!(resp, Response::Decision(_)) {
                        served += 1;
                    }
                }
                served
            }));
        }
        let served: u64 = handles.into_iter().map(|h| h.join().expect("client")).sum();
        assert_eq!(served, 100);
        let snap = server.core().metrics().snapshot();
        assert_eq!(snap.decisions_served, 100);
        assert!(snap.ledger_ok, "{snap:?}");
        server.shutdown();
    }

    #[test]
    fn ops_scrape_over_loopback_matches_the_in_process_export() {
        let server = server(2);
        let mut client = server.connect().expect("connect");
        // Put some traffic on the books first.
        for i in 0..5u64 {
            client
                .call(&Request::Decide {
                    shard: 0,
                    now_ns: 1_000 + i,
                    budget_ns: 0,
                    context: SimpleContext::contextless(2),
                })
                .expect("decide");
        }
        // Quiesce the log pipeline so both exports read the same state.
        while server.core().service().metrics().log_backlog > 0 {
            thread::yield_now();
        }
        let resp = client.ops(&OpsQuery::Prometheus).expect("scrape");
        let OpsResponse::Report { body } = resp else {
            panic!("scrape must serve, got {resp:?}");
        };
        // Quiescent server: the remote page is the in-process page.
        assert_eq!(body, server.core().service().export_prometheus());
        let snap = server.core().metrics().snapshot();
        assert_eq!((snap.ops_requests, snap.ops_served), (1, 1));
        assert!(snap.ledger_ok, "{snap:?}");
        server.shutdown();
    }

    #[test]
    fn corrupt_frame_closes_the_connection() {
        let server = server(1);
        let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
        let mut frame = encode_request(0, &Request::Ping { nonce: 1 });
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        raw.write_all(&frame).expect("write");
        // The server detects the CRC failure and closes: the next read
        // sees EOF.
        let mut buf = [0u8; 64];
        let n = raw.read(&mut buf).expect("read after close");
        assert_eq!(n, 0, "server must close a corrupt connection");
        assert_eq!(server.core().metrics().snapshot().frames_corrupt, 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_every_thread() {
        let server = server(2);
        let mut client = server.connect().expect("connect");
        client.call(&Request::Ping { nonce: 1 }).expect("ping");
        server.shutdown();
        // The client connection is now closed.
        assert!(client.call(&Request::Ping { nonce: 2 }).is_err());
    }
}

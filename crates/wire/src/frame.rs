//! The wire frame codec: length-prefixed, CRC-guarded, versioned.
//!
//! Same discipline as the crash-safe log segments
//! ([`harvest_log::segment`]): every frame carries an explicit length and a
//! CRC32 over its contents, so a reader can always classify the bytes in
//! front of it as *complete*, *incomplete*, or *corrupt* — never guess. The
//! layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       2     magic  0x48 0x57 ("HW")
//! 2       1     version (currently 1)
//! 3       1     kind: 0 = request, 1 = response, 2 = ops
//! 4       8     seq — caller correlation id, echoed in the response
//! 12      4     len — payload length in bytes
//! 16      4     crc32 over bytes 2..16 and the payload
//! 20      len   payload (JSON-encoded message body)
//! ```
//!
//! The CRC covers everything after the magic except itself — including
//! `seq` and `len` — so *any* single corrupted byte is detected: a damaged
//! magic fails the magic check, a damaged header or payload byte fails the
//! CRC, and a `len` inflated past the available bytes parks the stream at
//! [`Decoded::Incomplete`] until the CRC can be checked. Unlike segment
//! recovery (which scans for the longest valid prefix of an at-rest file),
//! a corrupt byte on a TCP stream leaves no resynchronization point — the
//! connection is counted and closed.
//!
//! `seq` lives in the header rather than the payload because the TCP
//! transport's shard-affine workers may complete one connection's requests
//! out of order; the client matches responses to requests by echoed `seq`.

pub use harvest_log::segment::crc32;

/// The two magic bytes opening every frame.
pub const WIRE_MAGIC: [u8; 2] = [0x48, 0x57]; // "HW"

/// The protocol version this build speaks.
pub const WIRE_VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const WIRE_HEADER_LEN: usize = 20;

/// Maximum payload size (4 MiB): a length prefix claiming more is corrupt,
/// not a request to buffer unboundedly.
pub const MAX_WIRE_PAYLOAD: usize = 1 << 22;

/// Whether a frame carries a request, a response, or an ops-plane
/// message (scrape query client→server, report server→client).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server.
    Request,
    /// Server → client.
    Response,
    /// Ops-plane scrape traffic, both directions: the payload is an
    /// [`OpsQuery`](crate::ops::OpsQuery) going in and an
    /// [`OpsResponse`](crate::ops::OpsResponse) coming back.
    Ops,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Request => 0,
            FrameKind::Response => 1,
            FrameKind::Ops => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(FrameKind::Request),
            1 => Some(FrameKind::Response),
            2 => Some(FrameKind::Ops),
            _ => None,
        }
    }
}

/// Why a frame was rejected as corrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// The first two bytes are not the wire magic.
    BadMagic,
    /// The version byte names a protocol this build does not speak.
    BadVersion,
    /// The kind byte is neither request nor response.
    UnknownKind,
    /// The length prefix exceeds [`MAX_WIRE_PAYLOAD`].
    Oversized,
    /// The CRC over header and payload does not match.
    BadCrc,
    /// The payload bytes are not a valid message body.
    BadPayload,
}

impl std::fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            CorruptKind::BadMagic => "bad_magic",
            CorruptKind::BadVersion => "bad_version",
            CorruptKind::UnknownKind => "unknown_kind",
            CorruptKind::Oversized => "oversized",
            CorruptKind::BadCrc => "bad_crc",
            CorruptKind::BadPayload => "bad_payload",
        };
        f.write_str(name)
    }
}

/// One classified decode attempt over a byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded {
    /// Not enough bytes for a whole frame yet; read more and retry.
    Incomplete,
    /// The bytes at the front cannot be a valid frame. A stream has no
    /// resync point past this — close and count the connection.
    Corrupt(CorruptKind),
    /// One whole valid frame.
    Frame {
        /// Request or response.
        kind: FrameKind,
        /// The caller's correlation id.
        seq: u64,
        /// The message body bytes (JSON).
        payload: Vec<u8>,
        /// Total bytes consumed from the buffer (header + payload).
        consumed: usize,
    },
}

/// Encodes one frame: header, CRC, payload.
pub fn encode_frame(kind: FrameKind, seq: u64, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_WIRE_PAYLOAD,
        "payload of {} bytes exceeds the {} byte wire maximum",
        payload.len(),
        MAX_WIRE_PAYLOAD
    );
    let mut frame = Vec::with_capacity(WIRE_HEADER_LEN + payload.len());
    frame.extend_from_slice(&WIRE_MAGIC);
    frame.push(WIRE_VERSION);
    frame.push(kind.to_byte());
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = crc_over(&frame[2..16], payload);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// The frame CRC: bytes 2..16 of the header (version, kind, seq, len)
/// followed by the payload. One pass, no intermediate buffer.
fn crc_over(header_mid: &[u8], payload: &[u8]) -> u32 {
    let mut bytes = Vec::with_capacity(header_mid.len() + payload.len());
    bytes.extend_from_slice(header_mid);
    bytes.extend_from_slice(payload);
    crc32(&bytes)
}

/// Classifies the bytes at the front of `buf`.
pub fn decode_frame(buf: &[u8]) -> Decoded {
    if buf.len() < WIRE_HEADER_LEN {
        // Classify what we can before waiting for more bytes: a bad magic
        // or version is already fatal at two or three bytes.
        if !buf.is_empty() && buf[0] != WIRE_MAGIC[0] {
            return Decoded::Corrupt(CorruptKind::BadMagic);
        }
        if buf.len() >= 2 && buf[..2] != WIRE_MAGIC {
            return Decoded::Corrupt(CorruptKind::BadMagic);
        }
        if buf.len() >= 3 && buf[2] != WIRE_VERSION {
            return Decoded::Corrupt(CorruptKind::BadVersion);
        }
        return Decoded::Incomplete;
    }
    if buf[..2] != WIRE_MAGIC {
        return Decoded::Corrupt(CorruptKind::BadMagic);
    }
    if buf[2] != WIRE_VERSION {
        return Decoded::Corrupt(CorruptKind::BadVersion);
    }
    let Some(kind) = FrameKind::from_byte(buf[3]) else {
        return Decoded::Corrupt(CorruptKind::UnknownKind);
    };
    let seq = u64::from_le_bytes(buf[4..12].try_into().expect("8 header bytes"));
    let len = u32::from_le_bytes(buf[12..16].try_into().expect("4 header bytes")) as usize;
    if len > MAX_WIRE_PAYLOAD {
        return Decoded::Corrupt(CorruptKind::Oversized);
    }
    if buf.len() < WIRE_HEADER_LEN + len {
        return Decoded::Incomplete;
    }
    let stored_crc = u32::from_le_bytes(buf[16..20].try_into().expect("4 header bytes"));
    let payload = &buf[WIRE_HEADER_LEN..WIRE_HEADER_LEN + len];
    if crc_over(&buf[2..16], payload) != stored_crc {
        return Decoded::Corrupt(CorruptKind::BadCrc);
    }
    Decoded::Frame {
        kind,
        seq,
        payload: payload.to_vec(),
        consumed: WIRE_HEADER_LEN + len,
    }
}

/// A streaming decoder: feed it reads as they arrive, pop whole frames.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next whole frame: `Ok(Some(_))` on a frame, `Ok(None)` when
    /// more bytes are needed, `Err(_)` on corruption (the stream is dead —
    /// no resync is attempted).
    pub fn next_frame(&mut self) -> Result<Option<(FrameKind, u64, Vec<u8>)>, CorruptKind> {
        match decode_frame(&self.buf) {
            Decoded::Incomplete => Ok(None),
            Decoded::Corrupt(kind) => Err(kind),
            Decoded::Frame {
                kind,
                seq,
                payload,
                consumed,
            } => {
                self.buf.drain(..consumed);
                Ok(Some((kind, seq, payload)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_one_frame() {
        let frame = encode_frame(FrameKind::Request, 42, b"{\"x\":1}");
        match decode_frame(&frame) {
            Decoded::Frame {
                kind,
                seq,
                payload,
                consumed,
            } => {
                assert_eq!(kind, FrameKind::Request);
                assert_eq!(seq, 42);
                assert_eq!(payload, b"{\"x\":1}");
                assert_eq!(consumed, frame.len());
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_incomplete() {
        let frame = encode_frame(FrameKind::Response, 7, b"payload bytes");
        for cut in 0..frame.len() {
            assert_eq!(
                decode_frame(&frame[..cut]),
                Decoded::Incomplete,
                "cut at {cut} must be incomplete"
            );
        }
    }

    #[test]
    fn any_flipped_byte_is_detected() {
        let frame = encode_frame(FrameKind::Request, 99, b"abcdef");
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x01;
            match decode_frame(&bad) {
                Decoded::Frame { .. } => {
                    panic!("flip at byte {i} decoded as a valid frame")
                }
                // A flipped length byte can inflate `len` past the buffer
                // (Incomplete); everything else lands on a Corrupt kind.
                Decoded::Incomplete | Decoded::Corrupt(_) => {}
            }
        }
    }

    #[test]
    fn streaming_decoder_pops_frames_across_split_reads() {
        let a = encode_frame(FrameKind::Request, 1, b"first");
        let b = encode_frame(FrameKind::Request, 2, b"second");
        let stream: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        // Feed one byte at a time: frames must pop exactly when complete.
        for byte in stream {
            dec.extend(&[byte]);
            while let Some((_, seq, payload)) = dec.next_frame().expect("no corruption") {
                got.push((seq, payload));
            }
        }
        assert_eq!(got, vec![(1, b"first".to_vec()), (2, b"second".to_vec())]);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn oversized_length_prefix_is_corrupt_not_a_buffer_request() {
        let mut frame = encode_frame(FrameKind::Request, 1, b"x");
        let huge = (MAX_WIRE_PAYLOAD as u32 + 1).to_le_bytes();
        frame[12..16].copy_from_slice(&huge);
        assert_eq!(
            decode_frame(&frame),
            Decoded::Corrupt(CorruptKind::Oversized)
        );
    }

    #[test]
    fn wrong_version_is_rejected_early() {
        let mut frame = encode_frame(FrameKind::Request, 1, b"x");
        frame[2] = 9;
        assert_eq!(
            decode_frame(&frame[..3]),
            Decoded::Corrupt(CorruptKind::BadVersion),
            "three bytes are enough to reject a wrong version"
        );
        assert_eq!(
            decode_frame(&frame),
            Decoded::Corrupt(CorruptKind::BadVersion)
        );
    }
}

//! The deterministic in-memory transport.
//!
//! A [`Duplex`] is the seeded test path's stand-in for a TCP server: clients
//! `send` encoded frames into a per-connection server-side decoder, admitted
//! jobs queue in arrival order, and [`Duplex::pump`] processes them FIFO on
//! the caller's thread. Every byte still crosses the real codec — requests
//! are encoded, framed, CRC-checked, and decoded exactly as they would be on
//! a socket — so the equivalence test exercises the same machinery the TCP
//! path runs, minus the threads.
//!
//! Time is the shared logical clock: request stamps advance it on `send`,
//! and tests can advance it directly (via [`WireCore::clock`]) to age
//! queued work past its deadline before pumping.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::sync::{Arc, Mutex};

use harvest_log::segment::SegmentSink;

use crate::core::{Admission, ConnState, Job, WireCore};
use crate::frame::{FrameDecoder, FrameKind};
use crate::ops::{
    decode_ops_query_payload, decode_ops_response_payload, encode_ops_query, encode_ops_response,
    OpsQuery, OpsResponse,
};
use crate::proto::{
    decode_request_payload, decode_response_payload, encode_request, encode_response, Request,
    Response,
};
use crate::transport::{Connection, Transport};

struct ServerSide {
    state: ConnState,
    decoder: FrameDecoder,
}

struct DuplexState {
    conns: BTreeMap<u64, ServerSide>,
    queue: VecDeque<Job>,
    inboxes: BTreeMap<u64, FrameDecoder>,
}

/// An in-memory server: same core, same codec, no sockets, no threads.
pub struct Duplex<S: SegmentSink + Send + 'static> {
    core: Arc<WireCore<S>>,
    state: Mutex<DuplexState>,
}

impl<S: SegmentSink + Send + 'static> Duplex<S> {
    /// Wraps a core in an in-memory transport.
    pub fn new(core: Arc<WireCore<S>>) -> Arc<Self> {
        Arc::new(Duplex {
            core,
            state: Mutex::new(DuplexState {
                conns: BTreeMap::new(),
                queue: VecDeque::new(),
                inboxes: BTreeMap::new(),
            }),
        })
    }

    /// The shared front-end state.
    pub fn core(&self) -> &Arc<WireCore<S>> {
        &self.core
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DuplexState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Opens a connection.
    pub fn connect(self: &Arc<Self>) -> DuplexConn<S> {
        let state = self.core.connect();
        let conn_id = state.conn_id;
        let mut s = self.lock();
        s.conns.insert(
            conn_id,
            ServerSide {
                state,
                decoder: FrameDecoder::new(),
            },
        );
        s.inboxes.insert(conn_id, FrameDecoder::new());
        DuplexConn {
            server: Arc::clone(self),
            conn_id,
            next_seq: 0,
        }
    }

    /// Feeds raw frame bytes from `conn_id` into the server, admitting every
    /// complete request they contain. Corrupt frames are counted and refused
    /// with `InvalidData` — the socket analogue is closing the connection.
    pub fn send_bytes(&self, conn_id: u64, bytes: &[u8]) -> io::Result<()> {
        let mut s = self.lock();
        let DuplexState {
            conns,
            queue,
            inboxes,
        } = &mut *s;
        let side = conns
            .get_mut(&conn_id)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "unknown connection"))?;
        side.decoder.extend(bytes);
        loop {
            match side.decoder.next_frame() {
                Ok(Some((FrameKind::Request, seq, payload))) => {
                    let request = match decode_request_payload(&payload) {
                        Ok(r) => r,
                        Err(kind) => {
                            self.core.metrics().record_corrupt_frame();
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("bad request body: {kind}"),
                            ));
                        }
                    };
                    match self.core.admit(&mut side.state, seq, request) {
                        Admission::Enqueue(job) => queue.push_back(job),
                        Admission::Reply(seq, resp) => {
                            if let Some(inbox) = inboxes.get_mut(&conn_id) {
                                inbox.extend(&encode_response(seq, &resp));
                            }
                        }
                    }
                }
                Ok(Some((FrameKind::Ops, seq, payload))) => {
                    // Scrapes answer inline at the door, exactly like the
                    // TCP reader: no queue slot, admission still charged.
                    let query = match decode_ops_query_payload(&payload) {
                        Ok(q) => q,
                        Err(kind) => {
                            self.core.metrics().record_corrupt_frame();
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("bad ops body: {kind}"),
                            ));
                        }
                    };
                    let resp = self.core.ops(&mut side.state, query);
                    if let Some(inbox) = inboxes.get_mut(&conn_id) {
                        inbox.extend(&encode_ops_response(seq, &resp));
                    }
                }
                Ok(Some((FrameKind::Response, _, _))) => {
                    self.core.metrics().record_protocol_error();
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "client sent a response frame",
                    ));
                }
                Ok(None) => return Ok(()),
                Err(kind) => {
                    self.core.metrics().record_corrupt_frame();
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt frame: {kind}"),
                    ));
                }
            }
        }
    }

    /// Processes one queued job, delivering its response to the sender's
    /// inbox. Returns `false` when the queue is empty.
    pub fn pump_one(&self) -> bool {
        // Dequeue under the lock, process outside it: the service call may
        // block on the logger's backpressure, and holding the transport
        // lock there would deadlock a test that drains from another thread.
        let job = match self.lock().queue.pop_front() {
            Some(job) => job,
            None => return false,
        };
        let conn_id = job.conn_id;
        let (seq, resp) = self.core.process(job);
        if let Some(inbox) = self.lock().inboxes.get_mut(&conn_id) {
            inbox.extend(&encode_response(seq, &resp));
        }
        true
    }

    /// Processes every queued job in arrival order — the deterministic
    /// analogue of the TCP worker pool draining.
    pub fn pump(&self) -> usize {
        let mut n = 0;
        while self.pump_one() {
            n += 1;
        }
        n
    }

    fn recv_from(&self, conn_id: u64) -> io::Result<(u64, Response)> {
        loop {
            {
                let mut s = self.lock();
                let inbox = s.inboxes.get_mut(&conn_id).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::NotConnected, "unknown connection")
                })?;
                match inbox.next_frame() {
                    Ok(Some((FrameKind::Response, seq, payload))) => {
                        let resp = decode_response_payload(&payload).map_err(|kind| {
                            io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("bad response body: {kind}"),
                            )
                        })?;
                        return Ok((seq, resp));
                    }
                    Ok(Some(_)) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "server sent a request frame",
                        ))
                    }
                    Ok(None) => {}
                    Err(kind) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("corrupt frame: {kind}"),
                        ))
                    }
                }
            }
            // Nothing buffered: drive the server forward one job. If the
            // queue is empty too, the response can never arrive.
            if !self.pump_one() {
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "no response buffered and no work queued",
                ));
            }
        }
    }

    /// Reads the next buffered ops answer for `conn_id`. Scrapes answer
    /// synchronously in [`Duplex::send_bytes`], so no pumping is needed.
    fn recv_ops_from(&self, conn_id: u64) -> io::Result<OpsResponse> {
        let mut s = self.lock();
        let inbox = s
            .inboxes
            .get_mut(&conn_id)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "unknown connection"))?;
        match inbox.next_frame() {
            Ok(Some((FrameKind::Ops, _, payload))) => decode_ops_response_payload(&payload)
                .map_err(|kind| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("bad ops body: {kind}"))
                }),
            Ok(Some(_)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "non-ops frame while awaiting a scrape answer",
            )),
            Ok(None) => Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "no scrape answer buffered",
            )),
            Err(kind) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt frame: {kind}"),
            )),
        }
    }
}

/// A client connection to a [`Duplex`] server.
pub struct DuplexConn<S: SegmentSink + Send + 'static> {
    server: Arc<Duplex<S>>,
    conn_id: u64,
    next_seq: u64,
}

impl<S: SegmentSink + Send + 'static> DuplexConn<S> {
    /// The server-assigned connection id.
    pub fn conn_id(&self) -> u64 {
        self.conn_id
    }

    /// Sends one ops-plane scrape and returns its answer. Scrapes are
    /// answered at the door, so this never pumps the job queue — a scrape
    /// mid-workload observes the queue as it stands.
    pub fn ops(&mut self, query: &OpsQuery) -> io::Result<OpsResponse> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.server
            .send_bytes(self.conn_id, &encode_ops_query(seq, query))?;
        self.server.recv_ops_from(self.conn_id)
    }
}

impl<S: SegmentSink + Send + 'static> Connection for DuplexConn<S> {
    fn send(&mut self, request: &Request) -> io::Result<u64> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.server
            .send_bytes(self.conn_id, &encode_request(seq, request))?;
        Ok(seq)
    }

    fn recv(&mut self) -> io::Result<(u64, Response)> {
        self.server.recv_from(self.conn_id)
    }
}

impl<S: SegmentSink + Send + 'static> Transport for Arc<Duplex<S>> {
    type Conn = DuplexConn<S>;

    fn connect(&self) -> io::Result<Self::Conn> {
        Ok(Duplex::connect(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::WireConfig;
    use harvest_core::SimpleContext;
    use harvest_log::segment::MemorySegments;
    use harvest_serve::{DecisionService, ServeConfig};

    fn server() -> Arc<Duplex<MemorySegments>> {
        let cfg = ServeConfig::builder()
            .shards(2)
            .epsilon(0.2)
            .master_seed(7)
            .build()
            .expect("valid config");
        let svc = Arc::new(DecisionService::new(cfg, MemorySegments::new()));
        Duplex::new(Arc::new(WireCore::new(svc, WireConfig::default())))
    }

    #[test]
    fn request_response_over_the_duplex() {
        let server = server();
        let mut conn = server.connect();
        let seq = conn
            .send(&Request::Decide {
                shard: 0,
                now_ns: 1_000,
                budget_ns: 0,
                context: SimpleContext::new(vec![0.5], 3),
            })
            .expect("send");
        // recv pumps the queue itself.
        let (rseq, resp) = conn.recv().expect("recv");
        assert_eq!(rseq, seq);
        assert!(matches!(resp, Response::Decision(_)));
        // Nothing else is in flight.
        assert!(conn.recv().is_err());
    }

    #[test]
    fn responses_route_to_their_own_connection() {
        let server = server();
        let mut a = server.connect();
        let mut b = server.connect();
        a.send(&Request::Ping { nonce: 1 }).expect("send a");
        b.send(&Request::Ping { nonce: 2 }).expect("send b");
        let (_, ra) = a.recv().expect("recv a");
        let (_, rb) = b.recv().expect("recv b");
        assert_eq!(ra, Response::Pong { nonce: 1 });
        assert_eq!(rb, Response::Pong { nonce: 2 });
    }

    #[test]
    fn scrapes_answer_at_the_door_and_replay_byte_identically() {
        let run = || {
            let server = server();
            let mut conn = server.connect();
            for i in 0..8u64 {
                conn.send(&Request::Decide {
                    shard: (i % 2) as u32,
                    now_ns: 1_000 + i * 10,
                    budget_ns: 0,
                    context: SimpleContext::contextless(2),
                })
                .expect("send");
            }
            server.pump();
            // Drain the decision responses first: the inbox is FIFO, so
            // the scrape answer lands behind them.
            for _ in 0..8 {
                conn.recv().expect("recv decision");
            }
            // Byte-identity needs a quiescent log pipeline: the async
            // writer's progress is invisible in logical time.
            while server.core().service().metrics().log_backlog > 0 {
                std::thread::yield_now();
            }
            let OpsResponse::Report { body } = conn.ops(&OpsQuery::Prometheus).expect("scrape")
            else {
                panic!("scrape must serve");
            };
            body
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "same seed, same traffic ⇒ byte-identical scrape");
    }

    #[test]
    fn corrupt_bytes_are_counted_and_refused() {
        let server = server();
        let mut conn = server.connect();
        let mut frame = encode_request(0, &Request::Ping { nonce: 5 });
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        assert!(server.send_bytes(conn.conn_id(), &frame).is_err());
        assert_eq!(server.core().metrics().snapshot().frames_corrupt, 1);
        // A corrupt stream has no resync point: the connection is dead,
        // exactly like the TCP path closing the socket.
        assert!(conn.send(&Request::Ping { nonce: 6 }).is_err());
        // A fresh connection is unaffected.
        let mut conn2 = server.connect();
        conn2.send(&Request::Ping { nonce: 7 }).expect("send");
        let (_, resp) = conn2.recv().expect("recv");
        assert_eq!(resp, Response::Pong { nonce: 7 });
    }
}

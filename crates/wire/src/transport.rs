//! The client-side transport abstraction.
//!
//! A [`Transport`] hands out [`Connection`]s; a connection sends typed
//! requests and receives typed responses. Two implementations exist with
//! identical semantics:
//!
//! - [`TcpServer`](crate::tcp::TcpServer): real sockets, a thread-per-
//!   connection reader, and a shard-affine worker pool — the production
//!   path.
//! - [`Duplex`](crate::duplex::Duplex): in-memory byte queues pumped on the
//!   caller's thread under the logical clock — the deterministic seeded
//!   test path.
//!
//! Code written against these traits (the equivalence test, the load
//! generator in `benches/wire_throughput.rs`) runs unchanged over either.

use std::io;

use crate::proto::{Request, Response};

/// A source of client connections to a wire server.
pub trait Transport {
    /// The connection type this transport produces.
    type Conn: Connection;

    /// Opens a new client connection.
    fn connect(&self) -> io::Result<Self::Conn>;
}

/// One client connection: framed, CRC-guarded, sequence-correlated.
pub trait Connection {
    /// Encodes and sends one request, returning the sequence number the
    /// response will echo. Responses may arrive out of order (the TCP
    /// transport's workers are shard-affine, not connection-affine);
    /// callers match on the echoed sequence.
    fn send(&mut self, request: &Request) -> io::Result<u64>;

    /// Receives the next response frame.
    fn recv(&mut self) -> io::Result<(u64, Response)>;

    /// Sends a request and waits for *its* response, buffering nothing:
    /// valid only when no other request is in flight on this connection.
    fn call(&mut self, request: &Request) -> io::Result<Response> {
        let seq = self.send(request)?;
        let (rseq, resp) = self.recv()?;
        if rseq != seq {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response seq {rseq} does not match request seq {seq}"),
            ));
        }
        Ok(resp)
    }
}

//! Typed request/response bodies carried inside wire frames.
//!
//! Bodies are JSON (via the workspace's deterministic serde stand-in — key
//! order is declaration order, so encoding is byte-stable across same-seed
//! runs). Four request types mirror the service surface: `Decide`,
//! `DecideBatch`, `Reward`, and `Ping`. Responses never use `Error` for
//! overload or degraded operation: overload answers `Shed` with an explicit
//! reason, and a degraded service answers a normal `Decision` served by the
//! safe arm with valid propensities (`degraded = true`). `Error` is
//! reserved for genuinely invalid requests (an out-of-range shard, an
//! internal serve failure).

use harvest_core::SimpleContext;
use harvest_serve::{Decision, JoinOutcome};
use serde::{Deserialize, Serialize};

use crate::frame::{decode_frame, encode_frame, CorruptKind, Decoded, FrameKind};

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe; answered inline, never queued or shed.
    Ping {
        /// Echoed back in the pong.
        nonce: u64,
    },
    /// Serve one decision.
    Decide {
        /// Target decision shard.
        shard: u32,
        /// The caller's logical clock stamp for this decision.
        now_ns: u64,
        /// Deadline budget in logical ns from `now_ns`; 0 means no
        /// deadline. Work still queued past the deadline is shed without
        /// touching a shard.
        budget_ns: u64,
        /// The decision context.
        context: SimpleContext,
    },
    /// Serve a batch of decisions on one shard, all stamped `now_ns`.
    DecideBatch {
        /// Target decision shard.
        shard: u32,
        /// The caller's logical clock stamp for the whole batch.
        now_ns: u64,
        /// Deadline budget in logical ns from `now_ns`; 0 = none.
        budget_ns: u64,
        /// The decision contexts.
        contexts: Vec<SimpleContext>,
    },
    /// Report the delayed reward for an earlier decision.
    Reward {
        /// The decision's request id.
        request_id: u64,
        /// The caller's logical clock stamp for the reward observation.
        now_ns: u64,
        /// The observed reward.
        reward: f64,
    },
}

impl Request {
    /// The caller's logical clock stamp, used to advance the server clock
    /// (pings carry none and advance nothing).
    pub fn stamp_ns(&self) -> Option<u64> {
        match self {
            Request::Ping { .. } => None,
            Request::Decide { now_ns, .. }
            | Request::DecideBatch { now_ns, .. }
            | Request::Reward { now_ns, .. } => Some(*now_ns),
        }
    }

    /// Admission weight in logical decisions: what this request costs
    /// against rate limits and the pending-work budget.
    pub fn weight(&self) -> u64 {
        match self {
            Request::Ping { .. } => 0,
            Request::Decide { .. } | Request::Reward { .. } => 1,
            Request::DecideBatch { contexts, .. } => contexts.len() as u64,
        }
    }

    /// The shard this request routes to, for shard-affine dispatch.
    /// Rewards route by the shard encoded in their request id, so a
    /// reward contends only with the shard that made its decision.
    pub fn route_shard(&self, seq_bits: u32) -> Option<u64> {
        match self {
            Request::Ping { .. } => None,
            Request::Decide { shard, .. } | Request::DecideBatch { shard, .. } => {
                Some(u64::from(*shard))
            }
            Request::Reward { request_id, .. } => Some(request_id >> seq_bits),
        }
    }
}

/// A served decision, as it crosses the wire.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireDecision {
    /// Unique id correlating this decision with its delayed reward.
    pub request_id: u64,
    /// The shard that served it.
    pub shard: u32,
    /// The chosen action.
    pub action: u32,
    /// The exact probability with which `action` was chosen.
    pub propensity: f64,
    /// Whether the exploration branch fired.
    pub explored: bool,
    /// The policy generation that made the call.
    pub generation: u64,
    /// Whether the safe fallback policy served this (breaker open). Still
    /// carries an exact propensity and is logged normally server-side.
    pub degraded: bool,
}

impl From<&Decision> for WireDecision {
    fn from(d: &Decision) -> Self {
        WireDecision {
            request_id: d.request_id,
            shard: d.shard as u32,
            action: d.action as u32,
            propensity: d.propensity,
            explored: d.explored,
            generation: d.generation,
            degraded: d.degraded,
        }
    }
}

/// Why a request was shed instead of served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The connection exceeded its token-bucket rate limit.
    RateLimited,
    /// The server's pending-work budget is full.
    QueueFull,
    /// The request's deadline budget lapsed before a shard was reached.
    DeadlineExpired,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ShedReason::RateLimited => "rate_limited",
            ShedReason::QueueFull => "queue_full",
            ShedReason::DeadlineExpired => "deadline_expired",
        };
        f.write_str(name)
    }
}

/// The reward join verdict, as it crosses the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireJoinOutcome {
    /// Joined inside the TTL; an outcome record was logged.
    Joined,
    /// The decision was already joined.
    Duplicate,
    /// The decision's TTL had lapsed.
    Expired,
    /// No decision with this id was ever tracked.
    Unknown,
    /// Lost in flight before reaching the joiner (chaos drop).
    Lost,
}

impl From<JoinOutcome> for WireJoinOutcome {
    fn from(o: JoinOutcome) -> Self {
        match o {
            JoinOutcome::Joined => WireJoinOutcome::Joined,
            JoinOutcome::Duplicate => WireJoinOutcome::Duplicate,
            JoinOutcome::Expired => WireJoinOutcome::Expired,
            JoinOutcome::Unknown => WireJoinOutcome::Unknown,
            JoinOutcome::Lost => WireJoinOutcome::Lost,
        }
    }
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Liveness answer.
    Pong {
        /// The ping's nonce, echoed.
        nonce: u64,
    },
    /// One served decision.
    Decision(WireDecision),
    /// A served batch, in context order.
    Batch(Vec<WireDecision>),
    /// The reward join verdict.
    RewardAck {
        /// The decision's request id, echoed.
        request_id: u64,
        /// What the joiner decided.
        outcome: WireJoinOutcome,
    },
    /// The request was refused by admission control. Not an error: the
    /// client is told exactly why and may retry or back off.
    Shed {
        /// Why admission refused it.
        reason: ShedReason,
    },
    /// A genuinely invalid request (bad shard, internal failure). Never
    /// used for overload or degraded operation.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

/// Encodes a request into a complete wire frame.
pub fn encode_request(seq: u64, req: &Request) -> Vec<u8> {
    let payload = serde_json::to_string(req).expect("requests always serialize");
    encode_frame(FrameKind::Request, seq, payload.as_bytes())
}

/// Encodes a response into a complete wire frame.
pub fn encode_response(seq: u64, resp: &Response) -> Vec<u8> {
    let payload = serde_json::to_string(resp).expect("responses always serialize");
    encode_frame(FrameKind::Response, seq, payload.as_bytes())
}

/// Parses a request body from frame payload bytes.
pub fn decode_request_payload(payload: &[u8]) -> Result<Request, CorruptKind> {
    let text = std::str::from_utf8(payload).map_err(|_| CorruptKind::BadPayload)?;
    serde_json::from_str(text).map_err(|_| CorruptKind::BadPayload)
}

/// Parses a response body from frame payload bytes.
pub fn decode_response_payload(payload: &[u8]) -> Result<Response, CorruptKind> {
    let text = std::str::from_utf8(payload).map_err(|_| CorruptKind::BadPayload)?;
    serde_json::from_str(text).map_err(|_| CorruptKind::BadPayload)
}

/// Decodes one whole request frame (frame layer + body in one step — the
/// deterministic transports use this; the TCP reader streams through
/// [`FrameDecoder`](crate::frame::FrameDecoder) instead).
pub fn decode_request_frame(buf: &[u8]) -> Result<(u64, Request, usize), CorruptKind> {
    match decode_frame(buf) {
        Decoded::Frame {
            kind: FrameKind::Request,
            seq,
            payload,
            consumed,
        } => Ok((seq, decode_request_payload(&payload)?, consumed)),
        Decoded::Frame { .. } => Err(CorruptKind::UnknownKind),
        Decoded::Corrupt(kind) => Err(kind),
        Decoded::Incomplete => Err(CorruptKind::BadPayload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_frames() {
        let reqs = [
            Request::Ping { nonce: 5 },
            Request::Decide {
                shard: 1,
                now_ns: 1_000,
                budget_ns: 500,
                context: SimpleContext::new(vec![0.25, 0.5], 3),
            },
            Request::DecideBatch {
                shard: 0,
                now_ns: 2_000,
                budget_ns: 0,
                contexts: vec![
                    SimpleContext::contextless(2),
                    SimpleContext::new(vec![1.0], 2),
                ],
            },
            Request::Reward {
                request_id: (3 << 40) | 7,
                now_ns: 3_000,
                reward: 0.75,
            },
        ];
        for (i, req) in reqs.iter().enumerate() {
            let frame = encode_request(i as u64, req);
            let (seq, back, consumed) = decode_request_frame(&frame).expect("valid frame");
            assert_eq!(seq, i as u64);
            assert_eq!(&back, req);
            assert_eq!(consumed, frame.len());
        }
    }

    #[test]
    fn responses_round_trip_through_frames() {
        let resps = [
            Response::Pong { nonce: 9 },
            Response::Decision(WireDecision {
                request_id: 1,
                shard: 0,
                action: 2,
                propensity: 0.85,
                explored: false,
                generation: 3,
                degraded: false,
            }),
            Response::Batch(vec![]),
            Response::RewardAck {
                request_id: 1,
                outcome: WireJoinOutcome::Joined,
            },
            Response::Shed {
                reason: ShedReason::QueueFull,
            },
            Response::Error {
                message: "shard 9 out of range".to_string(),
            },
        ];
        for (i, resp) in resps.iter().enumerate() {
            let frame = encode_response(i as u64, resp);
            match decode_frame(&frame) {
                Decoded::Frame {
                    kind: FrameKind::Response,
                    seq,
                    payload,
                    ..
                } => {
                    assert_eq!(seq, i as u64);
                    let back = decode_response_payload(&payload).expect("valid body");
                    assert_eq!(&back, resp);
                }
                other => panic!("expected response frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn weights_and_routing_follow_the_request_shape() {
        let ping = Request::Ping { nonce: 0 };
        assert_eq!(ping.weight(), 0);
        assert_eq!(ping.route_shard(40), None);
        let batch = Request::DecideBatch {
            shard: 3,
            now_ns: 0,
            budget_ns: 0,
            contexts: vec![SimpleContext::contextless(2); 5],
        };
        assert_eq!(batch.weight(), 5);
        assert_eq!(batch.route_shard(40), Some(3));
        let reward = Request::Reward {
            request_id: (2 << 40) | 123,
            now_ns: 0,
            reward: 1.0,
        };
        assert_eq!(reward.weight(), 1);
        // Rewards route to the shard baked into their request id.
        assert_eq!(reward.route_shard(40), Some(2));
    }
}

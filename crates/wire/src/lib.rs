//! `harvest-wire`: a TCP front-end with admission control for the decision
//! service.
//!
//! The serve crate closes the harvest → train → promote loop in-process;
//! this crate puts a socket in front of it without surrendering any of the
//! workspace's guarantees. Requests cross a compact length-prefixed binary
//! frame (magic ‖ version ‖ kind ‖ seq ‖ len ‖ crc32 ‖ JSON body — see
//! [`frame`]) and pass a production admission pipeline before touching a
//! shard:
//!
//! ```text
//!  clients ──▶ frame codec ──▶ admission door ──────▶ shard-affine workers
//!              (CRC per        │ per-conn token bucket │ deadline re-check
//!               frame;         │ pending QueueBudget   │ decide / join
//!               corrupt ⇒      │ full ⇒ Shed, with     ▼
//!               close+count)   │ an explicit reason   DecisionService
//!                              ▼                       (breaker open ⇒
//!                           Shed response               degraded Decision,
//!                           (never an Error)            exact propensities)
//! ```
//!
//! Three rules carry over from the rest of the workspace:
//!
//! 1. **Overload is an answer, not an error.** A refused request gets a
//!    `Shed` response naming the reason (rate limit, queue full, deadline);
//!    a degraded service answers real decisions from the safe arm with
//!    valid propensities. Protocol errors are reserved for malformed or
//!    invalid traffic.
//! 2. **Same seed, same bytes — even across a socket.** The core holds no
//!    wall clock and no ambient RNG: logical time is a monotone maximum
//!    over client stamps, rate-limit refills are integer-exact functions of
//!    it, and the [`duplex`] transport replays traffic deterministically.
//!    A duplex run and an in-process run of the same seeded workload
//!    produce byte-identical decision logs (`tests/wire_equivalence.rs`).
//! 3. **Every decision lands on a ledger.** `decisions_requested ==
//!    served + shed + errored` holds in the exported
//!    [`metrics`](crate::metrics) snapshot, and door refusals are also
//!    counted in the service's `admission_shed` so the two ledgers
//!    reconcile.
//!
//! Two transports implement [`Transport`] with identical semantics:
//! [`tcp::TcpServer`] (threaded sockets, shard-affine worker pool) for
//! production, and [`duplex::Duplex`] (in-memory, caller-pumped, logical
//! clock) for the deterministic test path. See `examples/harvest_server.rs`
//! for the full loop served over loopback TCP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod core;
pub mod duplex;
pub mod frame;
pub mod metrics;
pub mod ops;
pub mod proto;
pub mod tcp;
pub mod transport;

pub use admission::TokenBucket;
pub use core::{Admission, ConnState, Job, SharedClock, WireConfig, WireConfigBuilder, WireCore};
pub use duplex::{Duplex, DuplexConn};
pub use frame::{
    decode_frame, encode_frame, CorruptKind, Decoded, FrameDecoder, FrameKind, MAX_WIRE_PAYLOAD,
    WIRE_HEADER_LEN, WIRE_MAGIC, WIRE_VERSION,
};
pub use metrics::{WireMetrics, WireSnapshot};
pub use ops::{
    decode_ops_query_payload, decode_ops_response_payload, encode_ops_query, encode_ops_response,
    OpsQuery, OpsResponse,
};
pub use proto::{
    decode_request_frame, decode_request_payload, decode_response_payload, encode_request,
    encode_response, Request, Response, ShedReason, WireDecision, WireJoinOutcome,
};
pub use tcp::{TcpClient, TcpServer};
pub use transport::{Connection, Transport};

//! Per-connection rate limiting on the logical clock.
//!
//! A classic token bucket, but refilled from *logical* nanoseconds rather
//! than the wall clock — the same determinism rule as the rest of the
//! decision path (DESIGN.md §4): admission verdicts are a pure function of
//! the request stamps, so a same-seed replay sheds exactly the same
//! requests. Token arithmetic is integer-exact (tokens scaled by 10⁹, u128
//! intermediates), so no float drift can make two replays disagree.

/// Tokens are tracked scaled by 10⁹ so refill stays integer-exact: one
/// logical nanosecond at `rate_per_sec = r` adds exactly `r` scaled tokens.
const SCALE: u128 = 1_000_000_000;

/// A token bucket keyed to a connection: `rate_per_sec` tokens accrue per
/// logical second up to a `burst` cap, and each admitted decision spends
/// one token (a batch spends its size). A rate of 0 disables limiting.
#[derive(Debug)]
pub struct TokenBucket {
    rate_per_sec: u64,
    burst: u64,
    tokens_scaled: u128,
    last_refill_ns: u64,
}

impl TokenBucket {
    /// A bucket starting full. `rate_per_sec = 0` means unlimited.
    pub fn new(rate_per_sec: u64, burst: u64) -> Self {
        TokenBucket {
            rate_per_sec,
            burst,
            tokens_scaled: u128::from(burst) * SCALE,
            last_refill_ns: 0,
        }
    }

    /// Whole tokens currently available.
    pub fn available(&self) -> u64 {
        (self.tokens_scaled / SCALE) as u64
    }

    /// Spends `n` tokens at logical time `now_ns` if the bucket (after
    /// refill) holds them; `false` refuses and spends nothing. Time moving
    /// backwards (out-of-order stamps across a connection) refills nothing
    /// but never underflows.
    pub fn try_take(&mut self, n: u64, now_ns: u64) -> bool {
        if self.rate_per_sec == 0 {
            return true;
        }
        if now_ns > self.last_refill_ns {
            let dt = u128::from(now_ns - self.last_refill_ns);
            let cap = u128::from(self.burst) * SCALE;
            self.tokens_scaled = (self.tokens_scaled + dt * u128::from(self.rate_per_sec)).min(cap);
            self.last_refill_ns = now_ns;
        }
        let need = u128::from(n) * SCALE;
        if self.tokens_scaled >= need {
            self.tokens_scaled -= need;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_refill_at_rate() {
        // 2 tokens per logical second, burst 4.
        let mut b = TokenBucket::new(2, 4);
        assert_eq!(b.available(), 4);
        assert!(b.try_take(4, 0), "full burst spends");
        assert!(!b.try_take(1, 0), "bucket empty at t=0");
        // Half a logical second refills one token.
        assert!(b.try_take(1, 500_000_000));
        assert!(!b.try_take(1, 500_000_000));
        // A long idle period caps at burst, not unbounded.
        assert!(b.try_take(4, 1_000_000_000_000));
        assert!(!b.try_take(1, 1_000_000_000_000));
    }

    #[test]
    fn zero_rate_is_unlimited() {
        let mut b = TokenBucket::new(0, 0);
        for t in 0..1000 {
            assert!(b.try_take(1_000_000, t));
        }
    }

    #[test]
    fn backwards_time_never_refills_or_panics() {
        let mut b = TokenBucket::new(1, 1);
        assert!(b.try_take(1, 1_000_000_000));
        // An older stamp: no refill, no underflow, just a refusal.
        assert!(!b.try_take(1, 0));
        // Deterministic replay: the same stamp sequence always refuses the
        // same takes.
        assert!(b.try_take(1, 2_000_000_000));
    }

    #[test]
    fn refill_is_integer_exact() {
        // 3 tokens/s: 333_333_333 ns is *just short* of one token.
        let mut b = TokenBucket::new(3, 1);
        assert!(b.try_take(1, 0));
        assert!(!b.try_take(1, 333_333_333));
        assert!(b.try_take(1, 333_333_334), "3 × 333_333_334 ≥ 10⁹");
    }
}

//! Property tests for the wire frame codec, mirroring the invariants the
//! log segment format is held to (`crates/log/src/segment.rs`):
//!
//! 1. **Round-trip**: every request and response type survives
//!    encode → frame → decode bit-exactly, for arbitrary bodies.
//! 2. **Truncation**: cutting a valid frame at *any* offset yields a clean
//!    `Incomplete` — never a panic, never a mis-parse.
//! 3. **Corruption**: flipping any byte(s) of a valid frame is always
//!    detected (bad magic / bad version / bad CRC / parked incomplete) —
//!    a damaged frame never decodes as a valid frame.
//! 4. **Totality**: arbitrary garbage bytes never panic the decoder, and
//!    arbitrary read fragmentation never changes what a stream decodes to.

use proptest::prelude::*;

use harvest_core::SimpleContext;
use harvest_wire::{
    decode_frame, decode_request_frame, decode_response_payload, encode_request, encode_response,
    Decoded, FrameDecoder, FrameKind, Request, Response, ShedReason, WireDecision, WireJoinOutcome,
};

fn arb_context() -> impl Strategy<Value = SimpleContext> {
    (proptest::collection::vec(-100.0f64..100.0, 0..5), 1usize..6)
        .prop_map(|(features, k)| SimpleContext::new(features, k))
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        any::<u64>().prop_map(|nonce| Request::Ping { nonce }),
        (0u32..16, 0u64..1 << 40, 0u64..1 << 30, arb_context()).prop_map(
            |(shard, now_ns, budget_ns, context)| Request::Decide {
                shard,
                now_ns,
                budget_ns,
                context,
            }
        ),
        (
            0u32..16,
            0u64..1 << 40,
            0u64..1 << 30,
            proptest::collection::vec(arb_context(), 0..6)
        )
            .prop_map(
                |(shard, now_ns, budget_ns, contexts)| Request::DecideBatch {
                    shard,
                    now_ns,
                    budget_ns,
                    contexts,
                }
            ),
        (any::<u64>(), 0u64..1 << 40, -100.0f64..100.0).prop_map(|(request_id, now_ns, reward)| {
            Request::Reward {
                request_id,
                now_ns,
                reward,
            }
        }),
    ]
}

fn arb_decision() -> impl Strategy<Value = WireDecision> {
    (
        any::<u64>(),
        0u32..16,
        0u32..8,
        0.001f64..1.0,
        any::<bool>(),
        0u64..100,
        any::<bool>(),
    )
        .prop_map(
            |(request_id, shard, action, propensity, explored, generation, degraded)| {
                WireDecision {
                    request_id,
                    shard,
                    action,
                    propensity,
                    explored,
                    generation,
                    degraded,
                }
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        any::<u64>().prop_map(|nonce| Response::Pong { nonce }),
        arb_decision().prop_map(Response::Decision),
        proptest::collection::vec(arb_decision(), 0..6).prop_map(Response::Batch),
        (
            any::<u64>(),
            prop_oneof![
                Just(WireJoinOutcome::Joined),
                Just(WireJoinOutcome::Duplicate),
                Just(WireJoinOutcome::Expired),
                Just(WireJoinOutcome::Unknown),
                Just(WireJoinOutcome::Lost),
            ]
        )
            .prop_map(|(request_id, outcome)| Response::RewardAck {
                request_id,
                outcome,
            }),
        prop_oneof![
            Just(ShedReason::RateLimited),
            Just(ShedReason::QueueFull),
            Just(ShedReason::DeadlineExpired),
        ]
        .prop_map(|reason| Response::Shed { reason }),
        proptest::collection::vec(32u8..127, 0..40).prop_map(|bytes| Response::Error {
            message: String::from_utf8(bytes).expect("printable ascii"),
        }),
    ]
}

proptest! {
    #[test]
    fn any_request_round_trips(seq in any::<u64>(), req in arb_request()) {
        let frame = encode_request(seq, &req);
        let (back_seq, back, consumed) =
            decode_request_frame(&frame).expect("own encoding must decode");
        prop_assert_eq!(back_seq, seq);
        prop_assert_eq!(back, req);
        prop_assert_eq!(consumed, frame.len());
    }

    #[test]
    fn any_response_round_trips(seq in any::<u64>(), resp in arb_response()) {
        let frame = encode_response(seq, &resp);
        match decode_frame(&frame) {
            Decoded::Frame { kind, seq: back_seq, payload, consumed } => {
                prop_assert_eq!(kind, FrameKind::Response);
                prop_assert_eq!(back_seq, seq);
                prop_assert_eq!(consumed, frame.len());
                let back = decode_response_payload(&payload).expect("own body must parse");
                prop_assert_eq!(back, resp);
            }
            other => prop_assert!(false, "expected a frame, got {:?}", other),
        }
    }

    #[test]
    fn truncation_at_any_offset_is_incomplete(
        seq in any::<u64>(),
        req in arb_request(),
    ) {
        let frame = encode_request(seq, &req);
        for cut in 0..frame.len() {
            prop_assert_eq!(
                decode_frame(&frame[..cut]),
                Decoded::Incomplete,
                "cut at {} of {} must be incomplete",
                cut,
                frame.len()
            );
        }
    }

    #[test]
    fn any_corruption_is_detected(
        seq in any::<u64>(),
        req in arb_request(),
        offset in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut frame = encode_request(seq, &req);
        let i = (offset % frame.len() as u64) as usize;
        frame[i] ^= flip;
        match decode_frame(&frame) {
            // A flipped length byte may inflate `len` past the buffer:
            // the decoder parks at Incomplete rather than trusting the
            // unverifiable prefix. Every other damage is Corrupt. What a
            // flip can never be is a successfully decoded frame.
            Decoded::Incomplete | Decoded::Corrupt(_) => {}
            Decoded::Frame { .. } => prop_assert!(
                false,
                "flip of byte {} decoded as a valid frame",
                i
            ),
        }
    }

    #[test]
    fn garbage_never_panics_the_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        // Whatever these bytes are, classification is total: one of the
        // three verdicts, no panic. (Genuinely valid garbage is possible
        // only by colliding CRC32 — vanishingly unlikely at 96 bytes.)
        let _ = decode_frame(&bytes);
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        let _ = dec.next_frame();
    }

    #[test]
    fn fragmentation_never_changes_the_decoded_stream(
        reqs in proptest::collection::vec((any::<u64>(), arb_request()), 1..5),
        chunk in 1usize..48,
    ) {
        let stream: Vec<u8> = reqs
            .iter()
            .flat_map(|(seq, req)| encode_request(*seq, req))
            .collect();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.extend(piece);
            while let Some((kind, seq, payload)) =
                dec.next_frame().expect("no corruption in a clean stream")
            {
                prop_assert_eq!(kind, FrameKind::Request);
                got.push((seq, payload));
            }
        }
        prop_assert_eq!(dec.buffered(), 0);
        prop_assert_eq!(got.len(), reqs.len());
        for ((got_seq, payload), (seq, req)) in got.iter().zip(&reqs) {
            prop_assert_eq!(got_seq, seq);
            let back = harvest_wire::decode_request_payload(payload)
                .expect("fragmented body must parse");
            prop_assert_eq!(&back, req);
        }
    }
}

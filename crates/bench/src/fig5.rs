//! Fig 5 — the two-server setup: each server's latency as a linear
//! function of its open connections, server 2 slower by an additive
//! constant.
//!
//! The figure is the latency model itself; we render both the configured
//! lines and empirical confirmation measured from the simulator (mean
//! observed latency bucketed by connection count at admission, under
//! uniform-random routing).

use harvest_sim_lb::policy::RandomRouting;
use harvest_sim_lb::sim::{run_simulation, SimConfig};
use harvest_sim_lb::ClusterConfig;
use harvest_sim_net::stats::RunningStats;

use crate::ExperimentConfig;

/// One point of the figure: per-server latencies at a connection count.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct Fig5Row {
    /// Open connections at admission.
    pub conns: u32,
    /// Server 1's configured (class-averaged) latency.
    pub model_s1: f64,
    /// Server 2's configured (class-averaged) latency.
    pub model_s2: f64,
    /// Server 1's measured mean latency at this connection count (NaN if
    /// never observed).
    pub measured_s1: f64,
    /// Server 2's measured mean latency (NaN if never observed).
    pub measured_s2: f64,
}

/// Regenerates Fig 5: model lines for 0..30 connections plus empirical
/// means from a random-routing run.
pub fn run(cfg: &ExperimentConfig) -> Vec<Fig5Row> {
    let cluster = ClusterConfig::fig5();
    let sim_cfg = SimConfig::table2(cluster.clone(), cfg.scaled(40_000, 5_000), cfg.seed);
    let result = run_simulation(&sim_cfg, &mut RandomRouting);

    let max_conns = 30u32;
    let mut buckets = vec![[RunningStats::new(), RunningStats::new()]; (max_conns + 1) as usize];
    for r in result.measured_requests() {
        let c = r.connections[r.server];
        if c <= max_conns {
            buckets[c as usize][r.server].push(r.latency_s);
        }
    }

    (0..=max_conns)
        .map(|c| {
            let b = &buckets[c as usize];
            let mean_of = |s: &RunningStats| {
                if s.count() >= 5 {
                    s.mean()
                } else {
                    f64::NAN
                }
            };
            Fig5Row {
                conns: c,
                model_s1: cluster.servers[0].mean_base(&cluster.class_probs)
                    + cluster.servers[0].per_conn_latency_s * c as f64,
                model_s2: cluster.servers[1].mean_base(&cluster.class_probs)
                    + cluster.servers[1].per_conn_latency_s * c as f64,
                measured_s1: mean_of(&b[0]),
                measured_s2: mean_of(&b[1]),
            }
        })
        .collect()
}

/// Renders the figure as aligned text.
pub fn render(rows: &[Fig5Row]) -> String {
    let mut out = String::from(
        "Fig 5: latency vs open connections (model lines and measured means, random routing)\n",
    );
    out.push_str(&format!(
        "{:>6} {:>10} {:>10} {:>12} {:>12}\n",
        "conns", "model s1", "model s2", "measured s1", "measured s2"
    ));
    for r in rows {
        let fmt = |v: f64| {
            if v.is_nan() {
                "      -".to_string()
            } else {
                format!("{v:>11.3}")
            }
        };
        out.push_str(&format!(
            "{:>6} {:>10.3} {:>10.3} {} {}\n",
            r.conns,
            r.model_s1,
            r.model_s2,
            fmt(r.measured_s1),
            fmt(r.measured_s2)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_latencies_track_the_model() {
        let rows = run(&ExperimentConfig {
            seed: 7,
            scale: 0.5,
        });
        let mut checked = 0;
        for r in &rows {
            // The lines are parallel: constant additive gap of 0.2 s.
            assert!((r.model_s2 - r.model_s1 - 0.2).abs() < 1e-9);
            if !r.measured_s1.is_nan() {
                // Class mix + 5% noise allow some spread around the mean
                // line; the big-picture fit must hold.
                assert!(
                    (r.measured_s1 - r.model_s1).abs() < 0.05,
                    "conns {}: measured {} vs model {}",
                    r.conns,
                    r.measured_s1,
                    r.model_s1
                );
                checked += 1;
            }
            if !r.measured_s2.is_nan() {
                assert!(
                    (r.measured_s2 - r.model_s2).abs() < 0.25,
                    "conns {}: measured {} vs model {} (server 2 mixes two class bases)",
                    r.conns,
                    r.measured_s2,
                    r.model_s2
                );
            }
        }
        assert!(checked > 5, "need populated buckets, got {checked}");
    }
}

//! Table 3 — hit rates of cache-eviction policies on the big/small item
//! workload.
//!
//! "Both the CB policy and LRU perform as poorly as random eviction,
//! because they greedily keep the large items … a policy manually designed
//! to take size into account (by optimizing the ratio of access frequency
//! to size) has a hitrate 10 percentage points higher."

use harvest_sim_cache::policy::{
    CbEviction, FreqSizeEviction, LfuEviction, LruEviction, RandomEviction,
};
use harvest_sim_cache::runner::{
    big_small_trace, run_cache_workload, table3_cache_config, CacheRunConfig,
};

use crate::ExperimentConfig;

/// One column of Table 3.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table3Row {
    /// Policy name.
    pub policy: String,
    /// Post-warmup hit rate.
    pub hit_rate: f64,
}

/// Requests in the trace at scale 1.0.
pub const REQUESTS: usize = 100_000;

/// Reward-reconstruction horizon for CB training, seconds.
pub const HORIZON_S: f64 = 60.0;

/// Regenerates Table 3.
pub fn run(cfg: &ExperimentConfig) -> Vec<Table3Row> {
    let trace = big_small_trace(cfg.scaled(REQUESTS, 20_000), cfg.seed);
    let run_cfg = CacheRunConfig {
        cache: table3_cache_config(),
        warmup: (trace.len() / 10).min(10_000),
        seed: cfg.seed,
    };

    // Exploration: random eviction (Redis allkeys-random) — also the
    // training data for the CB policy.
    let explore = run_cache_workload(&run_cfg, &mut RandomEviction, &trace);
    let scorer = explore
        .fit_cb_scorer(HORIZON_S, 1e-2)
        .expect("CB training succeeds");

    let mut rows = vec![Table3Row {
        policy: "random".to_string(),
        hit_rate: explore.hit_rate(),
    }];
    let mut lru = LruEviction;
    let mut lfu = LfuEviction;
    let mut cb = CbEviction::greedy(scorer);
    let mut fs = FreqSizeEviction;
    for (name, policy) in [
        (
            "lru",
            &mut lru as &mut dyn harvest_sim_cache::EvictionPolicy,
        ),
        ("lfu", &mut lfu),
        ("cb-policy", &mut cb),
        ("freq-size", &mut fs),
    ] {
        rows.push(Table3Row {
            policy: name.to_string(),
            hit_rate: run_cache_workload(&run_cfg, policy, &trace).hit_rate(),
        });
    }
    rows
}

/// Renders the table as aligned text.
pub fn render(rows: &[Table3Row]) -> String {
    let mut out = String::from(
        "Table 3: hit rates of cache-eviction policies (big/small workload; Redis-style sampling)\n",
    );
    out.push_str(&format!("{:<12} {:>10}\n", "Policy", "Hit rate"));
    for r in rows {
        out.push_str(&format!("{:<12} {:>9.1}%\n", r.policy, 100.0 * r.hit_rate));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate(rows: &[Table3Row], name: &str) -> f64 {
        rows.iter().find(|r| r.policy == name).unwrap().hit_rate
    }

    #[test]
    fn table3_shape_holds() {
        let rows = run(&ExperimentConfig {
            seed: 6,
            scale: 0.6,
        });
        assert_eq!(rows.len(), 5);
        let random = rate(&rows, "random");
        let lru = rate(&rows, "lru");
        let lfu = rate(&rows, "lfu");
        let cb = rate(&rows, "cb-policy");
        let fs = rate(&rows, "freq-size");
        // Only the size-aware policy clearly beats random.
        assert!(fs > random + 0.05, "freq-size {fs} vs random {random}");
        // LRU within noise of random; LFU and CB do not beat random.
        assert!((lru - random).abs() < 0.04, "lru {lru} vs random {random}");
        assert!(lfu < random + 0.01, "lfu {lfu} vs random {random}");
        assert!(cb < random + 0.02, "cb {cb} vs random {random}");
        assert!(cb < fs - 0.04, "cb {cb} vs freq-size {fs}");
    }
}

//! Experiment harness: regenerates every figure and table of the paper.
//!
//! Each module implements one experiment as a pure function from an
//! [`ExperimentConfig`] to typed rows, so the same code backs the `repro`
//! binary (which prints the rows), the Criterion benches (which time them),
//! and the integration tests (which assert the paper's shape).
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig1`] | Fig 1 — N required to evaluate K policies, A/B vs CB |
//! | [`fig2`] | Fig 2 — theoretical accuracy vs N for several ε |
//! | [`fig3`] | Fig 3 — IPS error vs test-set size (machine health) |
//! | [`fig4`] | Fig 4 — CB training convergence vs supervised skyline |
//! | [`fig5`] | Fig 5 — the two-server latency model |
//! | [`fig6`] | Fig 6 — hierarchical (Front Door) action-space reduction |
//! | [`table2`] | Table 2 — load-balancing OPE vs online |
//! | [`table3`] | Table 3 — cache eviction hit rates |
//! | [`challenges`] | §5 — trajectory-IS variance, DR ablation, coverage |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_json;
pub mod challenges;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod table2;
pub mod table3;

/// Shared knobs for all experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Master seed.
    pub seed: u64,
    /// Scale factor: 1.0 = paper-scale runs; smaller values shrink dataset
    /// sizes and trial counts proportionally for quick runs and benches.
    pub scale: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 0x55EED,
            scale: 1.0,
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for tests and benches.
    pub fn fast() -> Self {
        ExperimentConfig {
            seed: 0x55EED,
            scale: 0.1,
        }
    }

    /// Scales an integer quantity, keeping a floor so tiny scales still
    /// produce meaningful runs.
    pub fn scaled(&self, n: usize, floor: usize) -> usize {
        ((n as f64 * self.scale) as usize).max(floor)
    }
}

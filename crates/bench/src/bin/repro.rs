//! `repro` — regenerates every figure and table of the paper.
//!
//! ```text
//! repro [--seed S] [--scale X] [--json] \
//!       [fig1|fig2|fig3|fig4|fig5|fig6|table2|table3|challenges|all]
//! ```
//!
//! `--scale` shrinks dataset sizes and trial counts proportionally
//! (default 1.0 = paper-scale). Output is aligned text, one block per
//! artifact, matching the rows/series the paper reports; `--json` emits
//! one JSON object per artifact instead (one per line), for external
//! plotting tools.

use std::process::ExitCode;

use harvest_bench::{
    challenges, fig1, fig2, fig3, fig4, fig5, fig6, table2, table3, ExperimentConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--seed S] [--scale X] [--json] \
         [fig1|fig2|fig3|fig4|fig5|fig6|table2|table3|challenges|all]"
    );
    std::process::exit(2);
}

struct Output {
    json: bool,
}

impl Output {
    fn emit<T: serde::Serialize>(&self, artifact: &str, rows: &[T], text: String) {
        if self.json {
            let value = serde_json::json!({ "artifact": artifact, "rows": rows });
            println!("{}", serde_json::to_string(&value).expect("rows serialize"));
        } else {
            println!("{text}");
        }
    }
}

fn main() -> ExitCode {
    let mut cfg = ExperimentConfig::default();
    let mut targets: Vec<String> = Vec::new();
    let mut out = Output { json: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    usage()
                };
                cfg.seed = v;
            }
            "--scale" => {
                let Some(v) = args.next().and_then(|s| s.parse::<f64>().ok()) else {
                    usage()
                };
                if !(v.is_finite() && v > 0.0) {
                    usage();
                }
                cfg.scale = v;
            }
            "--json" => out.json = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }

    for target in &targets {
        match target.as_str() {
            "fig1" => {
                let rows = fig1::run(&cfg);
                out.emit("fig1", &rows, fig1::render(&rows));
                let rows = fig1::run_empirical(&cfg, &[4, 16, 64, 256, 1024]);
                out.emit("fig1_empirical", &rows, fig1::render_empirical(&rows));
            }
            "fig2" => {
                let curves = fig2::run(&cfg);
                let text = fig2::render(&curves);
                if out.json {
                    let value = serde_json::json!({
                        "artifact": "fig2",
                        "curves": curves.iter().map(|c| serde_json::json!({
                            "epsilon": c.epsilon,
                            "points": c.points,
                        })).collect::<Vec<_>>(),
                    });
                    println!("{}", serde_json::to_string(&value).expect("serialize"));
                } else {
                    println!("{text}");
                }
            }
            "fig3" => {
                let rows = fig3::run(&cfg);
                out.emit("fig3", &rows, fig3::render(&rows));
            }
            "fig4" => {
                let rows = fig4::run(&cfg);
                out.emit("fig4", &rows, fig4::render(&rows));
            }
            "fig5" => {
                let rows = fig5::run(&cfg);
                out.emit("fig5", &rows, fig5::render(&rows));
            }
            "fig6" => {
                let rows = fig6::run(&cfg);
                out.emit("fig6", &rows, fig6::render(&rows));
                let online = fig6::run_online(&cfg);
                out.emit("fig6_online", &[online], fig6::render_online(&online));
            }
            "table2" => {
                let rows = table2::run(&cfg);
                out.emit("table2", &rows, table2::render(&rows));
            }
            "table3" => {
                let rows = table3::run(&cfg);
                out.emit("table3", &rows, table3::render(&rows));
            }
            "challenges" => run_challenges(&cfg, &out),
            "all" => {
                let rows = fig1::run(&cfg);
                out.emit("fig1", &rows, fig1::render(&rows));
                let rows = fig1::run_empirical(&cfg, &[4, 16, 64, 256, 1024]);
                out.emit("fig1_empirical", &rows, fig1::render_empirical(&rows));
                let curves = fig2::run(&cfg);
                if out.json {
                    let value = serde_json::json!({
                        "artifact": "fig2",
                        "curves": curves.iter().map(|c| serde_json::json!({
                            "epsilon": c.epsilon,
                            "points": c.points,
                        })).collect::<Vec<_>>(),
                    });
                    println!("{}", serde_json::to_string(&value).expect("serialize"));
                } else {
                    println!("{}", fig2::render(&curves));
                }
                let rows = fig3::run(&cfg);
                out.emit("fig3", &rows, fig3::render(&rows));
                let rows = fig4::run(&cfg);
                out.emit("fig4", &rows, fig4::render(&rows));
                let rows = fig5::run(&cfg);
                out.emit("fig5", &rows, fig5::render(&rows));
                let rows = fig6::run(&cfg);
                out.emit("fig6", &rows, fig6::render(&rows));
                let online = fig6::run_online(&cfg);
                out.emit("fig6_online", &[online], fig6::render_online(&online));
                let rows = table2::run(&cfg);
                out.emit("table2", &rows, table2::render(&rows));
                let rows = table3::run(&cfg);
                out.emit("table3", &rows, table3::render(&rows));
                run_challenges(&cfg, &out);
            }
            _ => usage(),
        }
    }
    ExitCode::SUCCESS
}

fn run_challenges(cfg: &ExperimentConfig, out: &Output) {
    let rows = challenges::estimator_ablation(cfg);
    out.emit(
        "estimator_ablation",
        &rows,
        challenges::render_estimators(&rows),
    );

    let profile = challenges::trajectory_variance(cfg, 20);
    out.emit(
        "trajectory_variance",
        &profile,
        challenges::render_trajectory(&profile),
    );

    let rows = challenges::dr_pdis_comparison(cfg, &[1, 2, 4, 6, 8, 10]);
    out.emit("dr_pdis", &rows, challenges::render_dr_pdis(&rows));

    let rows = challenges::exploration_coverage(cfg);
    out.emit(
        "exploration_coverage",
        &rows,
        challenges::render_coverage(&rows),
    );

    let rows = challenges::staleness_sweep(cfg, &[0.0, 0.5, 1.0, 2.0, 5.0]);
    out.emit(
        "staleness_sweep",
        &rows,
        challenges::render_staleness(&rows),
    );

    let rows = challenges::simultaneous_evaluation(cfg, 1_000, &[1_000, 3_500, 10_000]);
    out.emit(
        "eq1_validation",
        &rows,
        challenges::render_simultaneous(&rows),
    );

    let rows = challenges::drift_tripwire(cfg);
    out.emit("drift_tripwire", &rows, challenges::render_drift(&rows));

    let rows = challenges::learner_ablation(cfg);
    out.emit(
        "learner_ablation",
        &rows,
        challenges::render_learners(&rows),
    );

    let rows = challenges::eviction_samples_sweep(cfg, &[1, 3, 5, 10, 20]);
    out.emit(
        "eviction_samples_sweep",
        &rows,
        challenges::render_samples_sweep(&rows),
    );

    let rows = challenges::zipf_workload_check(cfg);
    out.emit("zipf_check", &rows, challenges::render_zipf(&rows));

    let rows = challenges::cache_ope_mismatch(cfg);
    out.emit(
        "cache_ope_mismatch",
        &rows,
        challenges::render_ope_mismatch(&rows),
    );
}

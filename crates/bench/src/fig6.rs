//! Fig 6 — hierarchical (Front Door) architecture: how two-level load
//! balancing shrinks action spaces and multiplies the value of harvested
//! data.
//!
//! We run the two-level simulator with uniform exploration at both levels,
//! harvest a dataset per level, and compare the Eq. 1 accuracy each level
//! achieves against a hypothetical *flat* balancer over all E×S servers
//! with the same amount of data.

use harvest_core::policy::ConstantPolicy;
use harvest_estimators::bounds::{ips_radius, BoundConfig};
use harvest_estimators::{EstimatorKind, OffPolicyEvaluator};
use harvest_sim_lb::hierarchy::{
    run_hierarchical, run_hierarchical_with_policies, CbLevel, HierarchyConfig, UniformLevel,
};

use crate::ExperimentConfig;

/// One row: a decision level (or the flat strawman) and its evaluation
/// power.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig6Row {
    /// Level name.
    pub level: String,
    /// Action-space size at this level.
    pub actions: usize,
    /// Exploration floor ε at this level.
    pub epsilon: f64,
    /// Harvested samples.
    pub n: usize,
    /// Eq. 1 radius for evaluating 10⁶ policies with this data.
    pub eq1_radius: f64,
    /// IPS estimate (negated latency) of the best constant action at this
    /// level, as a sanity signal (NaN for the flat strawman).
    pub best_constant_value: f64,
}

/// Policy-class size used for the radius comparison.
pub const K: f64 = 1e6;

/// Online latencies of hierarchical deployments: uniform exploration vs a
/// CB model trained and deployed per level.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct Fig6Online {
    /// Mean latency of uniform two-level routing.
    pub uniform_latency_s: f64,
    /// Mean latency after deploying the per-level CB models.
    pub cb_latency_s: f64,
}

/// Trains a CB model per level from the hierarchical exploration run and
/// deploys the pair — Fig 6 made actionable.
pub fn run_online(cfg: &ExperimentConfig) -> Fig6Online {
    let hcfg = HierarchyConfig::front_door(cfg.scaled(40_000, 5_000), cfg.seed);
    let harvest = run_hierarchical(&hcfg);
    let mut edge = CbLevel::fit(&harvest.edge_dataset, 1e-3).expect("edge model fits");
    let mut local = CbLevel::fit(&harvest.local_dataset, 1e-3).expect("local model fits");
    let cb_latency_s = run_hierarchical_with_policies(&hcfg, &mut edge, &mut local);
    let mut ue = UniformLevel;
    let mut ul = UniformLevel;
    let uniform_latency_s = run_hierarchical_with_policies(&hcfg, &mut ue, &mut ul);
    Fig6Online {
        uniform_latency_s,
        cb_latency_s,
    }
}

/// Renders the online comparison.
pub fn render_online(online: &Fig6Online) -> String {
    format!(
        "Fig 6 (deployed): uniform two-level routing {:.3}s -> per-level CB deployment {:.3}s\n",
        online.uniform_latency_s, online.cb_latency_s
    )
}

/// Regenerates Fig 6's quantitative comparison.
pub fn run(cfg: &ExperimentConfig) -> Vec<Fig6Row> {
    let hcfg = HierarchyConfig::front_door(cfg.scaled(40_000, 5_000), cfg.seed);
    let result = run_hierarchical(&hcfg);
    let bounds = BoundConfig::fig2();
    let n = result.edge_dataset.len();

    let ev = OffPolicyEvaluator::new(EstimatorKind::Ips);
    let best_edge = (0..hcfg.endpoints)
        .map(|a| {
            ev.evaluate(&result.edge_dataset, &ConstantPolicy::new(a))
                .value
        })
        .fold(f64::NEG_INFINITY, f64::max);
    let best_local = (0..hcfg.servers_per_endpoint)
        .map(|a| {
            ev.evaluate(&result.local_dataset, &ConstantPolicy::new(a))
                .value
        })
        .fold(f64::NEG_INFINITY, f64::max);

    vec![
        Fig6Row {
            level: "flat (E*S servers)".to_string(),
            actions: hcfg.endpoints * hcfg.servers_per_endpoint,
            epsilon: hcfg.flat_epsilon(),
            n,
            eq1_radius: ips_radius(&bounds, hcfg.flat_epsilon(), n as f64, K),
            best_constant_value: f64::NAN,
        },
        Fig6Row {
            level: "edge (endpoints)".to_string(),
            actions: hcfg.endpoints,
            epsilon: hcfg.edge_epsilon(),
            n,
            eq1_radius: ips_radius(&bounds, hcfg.edge_epsilon(), n as f64, K),
            best_constant_value: best_edge,
        },
        Fig6Row {
            level: "local (in-cluster)".to_string(),
            actions: hcfg.servers_per_endpoint,
            epsilon: hcfg.local_epsilon(),
            n,
            eq1_radius: ips_radius(&bounds, hcfg.local_epsilon(), n as f64, K),
            best_constant_value: best_local,
        },
    ]
}

/// Renders the comparison as aligned text.
pub fn render(rows: &[Fig6Row]) -> String {
    let mut out = String::from(
        "Fig 6: hierarchical Front Door — per-level action spaces multiply evaluation power\n",
    );
    out.push_str(&format!(
        "{:<20} {:>8} {:>8} {:>10} {:>12} {:>14}\n",
        "Level", "actions", "eps", "N", "Eq.1 radius", "best constant"
    ));
    for r in rows {
        let best = if r.best_constant_value.is_nan() {
            "       -".to_string()
        } else {
            format!("{:>13.3}", r.best_constant_value)
        };
        out.push_str(&format!(
            "{:<20} {:>8} {:>8.3} {:>10} {:>12.4} {}\n",
            r.level, r.actions, r.epsilon, r.n, r.eq1_radius, best
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_beats_flat_at_both_levels() {
        let rows = run(&ExperimentConfig {
            seed: 8,
            scale: 0.3,
        });
        assert_eq!(rows.len(), 3);
        let flat = &rows[0];
        let edge = &rows[1];
        let local = &rows[2];
        // Same data, smaller action space per level => tighter radius.
        assert!(edge.eq1_radius < flat.eq1_radius);
        assert!(local.eq1_radius < flat.eq1_radius);
        // ε composes: flat ε = edge ε × local ε.
        assert!((flat.epsilon - edge.epsilon * local.epsilon).abs() < 1e-12);
        // radius scales as 1/sqrt(eps): edge radius = flat radius * sqrt(flat_eps/edge_eps).
        let expect = flat.eq1_radius * (flat.epsilon / edge.epsilon).sqrt();
        assert!((edge.eq1_radius - expect).abs() < 1e-9);
    }
}

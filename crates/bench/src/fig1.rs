//! Fig 1 — the amount of data N required to simultaneously evaluate K
//! policies: A/B testing (linear-ish in K) vs contextual bandits
//! (logarithmic in K), at a fixed target error.

use harvest_estimators::bounds::{fig1_series, BoundConfig, Fig1Row};

use crate::ExperimentConfig;

/// The target simultaneous error used for the figure.
pub const TARGET_ERROR: f64 = 0.05;

/// The exploration floor used for the CB curve: uniform logging over 10
/// actions (the machine-health action space).
pub const EPSILON: f64 = 0.1;

/// Regenerates the Fig 1 series over `K ∈ {10⁰ … 10⁶}`.
pub fn run(_cfg: &ExperimentConfig) -> Vec<Fig1Row> {
    let ks: Vec<f64> = (0..=6).map(|e| 10f64.powi(e)).collect();
    fig1_series(&BoundConfig::fig1(), EPSILON, TARGET_ERROR, &ks)
}

/// Renders the series as aligned text rows.
pub fn render(rows: &[Fig1Row]) -> String {
    let mut out = String::from(
        "Fig 1: data required to evaluate K policies (target error 0.05, eps=0.1, delta=0.01)\n",
    );
    out.push_str(&format!(
        "{:>12} {:>16} {:>16} {:>10}\n",
        "K policies", "N (CB, offline)", "N (A/B test)", "A/B / CB"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>12.0} {:>16.0} {:>16.0} {:>10.1}\n",
            r.k,
            r.n_cb,
            r.n_ab,
            r.n_ab / r.n_cb
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cb_curve_is_flat_ab_curve_explodes() {
        let rows = run(&ExperimentConfig::default());
        assert_eq!(rows.len(), 7);
        // CB grows ≤ 10× from K=1 to K=10^6; A/B grows ≥ 10^5×.
        let cb_growth = rows[6].n_cb / rows[0].n_cb;
        let ab_growth = rows[6].n_ab / rows[0].n_ab;
        assert!(cb_growth < 10.0, "cb growth {cb_growth}");
        assert!(ab_growth > 1e5, "ab growth {ab_growth}");
        // At K = 10^6 the gap is at least four orders of magnitude.
        assert!(rows[6].n_ab / rows[6].n_cb > 1e4);
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = run(&ExperimentConfig::default());
        let text = render(&rows);
        assert_eq!(text.lines().count(), 2 + rows.len());
        assert!(text.contains("1000000"));
    }
}

/// One row of the empirical Fig 1 companion: with a fixed data budget N,
/// how accurately can each methodology score K candidate policies?
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig1EmpiricalRow {
    /// Number of candidate policies.
    pub k: usize,
    /// Interactions available (shared across all candidates).
    pub n: usize,
    /// Mean |estimate − truth| across candidates under A/B testing (each
    /// candidate gets ~N/K of the traffic).
    pub ab_mean_abs_error: f64,
    /// Mean |estimate − truth| across candidates under CB off-policy
    /// evaluation (every candidate reuses all N logged interactions).
    pub cb_mean_abs_error: f64,
}

/// Measures Fig 1's claim empirically on the machine-health scenario: as K
/// grows with N fixed, A/B error explodes (per-arm traffic vanishes) while
/// IPS error stays flat (every policy reuses the whole log).
pub fn run_empirical(cfg: &crate::ExperimentConfig, ks: &[usize]) -> Vec<Fig1EmpiricalRow> {
    use harvest_core::policy::{enumerate_stumps, UniformPolicy};
    use harvest_core::simulate::simulate_exploration;
    use harvest_estimators::ab::ab_test;
    use harvest_estimators::{EstimatorKind, OffPolicyEvaluator};
    use harvest_sim_mh::failure::NUM_ACTIONS;
    use harvest_sim_mh::machine::MachineSpec;
    use harvest_sim_mh::{generate_dataset, MachineHealthConfig};
    use harvest_sim_net::rng::fork_rng;

    let n = cfg.scaled(20_000, 4_000);
    let full = generate_dataset(&MachineHealthConfig {
        incidents: n,
        seed: cfg.seed,
    });
    let mut rng = fork_rng(cfg.seed, "fig1-empirical");
    let expl = simulate_exploration(&full, &UniformPolicy::new(), &mut rng);

    // Candidate policies: decision stumps over the machine features.
    let max_k = *ks.iter().max().expect("non-empty ks");
    let per_threshold = MachineSpec::FEATURE_DIM * NUM_ACTIONS * NUM_ACTIONS;
    let t = max_k.div_ceil(per_threshold).max(1);
    let thresholds: Vec<f64> = (0..t).map(|i| (i as f64 + 0.5) / t as f64).collect();
    let mut class = enumerate_stumps(MachineSpec::FEATURE_DIM, &thresholds, NUM_ACTIONS);
    class.truncate(max_k);

    ks.iter()
        .map(|&k| {
            let candidates = &class[..k.min(class.len())];
            // A/B: split the N interactions across the K arms.
            let arms = ab_test(&full, candidates, &mut rng);
            let mut ab_err = 0.0;
            let mut cb_err = 0.0;
            for (p, arm) in candidates.iter().zip(&arms) {
                let truth = full.value_of_policy(p).expect("non-empty");
                ab_err += (arm.estimate.value - truth).abs();
                cb_err += (OffPolicyEvaluator::new(EstimatorKind::Ips)
                    .evaluate(&expl, p)
                    .value
                    - truth)
                    .abs();
            }
            Fig1EmpiricalRow {
                k: candidates.len(),
                n,
                ab_mean_abs_error: ab_err / candidates.len() as f64,
                cb_mean_abs_error: cb_err / candidates.len() as f64,
            }
        })
        .collect()
}

/// Renders the empirical companion.
pub fn render_empirical(rows: &[Fig1EmpiricalRow]) -> String {
    let mut out = String::from(
        "Fig 1 (empirical): mean |error| scoring K policies from one budget of N interactions\n",
    );
    out.push_str(&format!(
        "{:>8} {:>8} {:>16} {:>16}\n",
        "K", "N", "A/B mean |err|", "CB mean |err|"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8} {:>8} {:>16.4} {:>16.4}\n",
            r.k, r.n, r.ab_mean_abs_error, r.cb_mean_abs_error
        ));
    }
    out
}

#[cfg(test)]
mod empirical_tests {
    use super::*;

    #[test]
    fn ab_error_explodes_with_k_while_cb_stays_flat() {
        let rows = run_empirical(
            &crate::ExperimentConfig {
                seed: 11,
                scale: 0.5,
            },
            &[4, 64, 1024],
        );
        assert_eq!(rows.len(), 3);
        // CB error is comparatively insensitive to K (same data reused).
        // The k=4 row averages only 4 candidates and larger K adds stumps
        // whose matching actions are rarer (higher IPS variance), so the
        // ratio is noisy — bound it loosely and let the A/B contrast below
        // carry the claim.
        let cb_growth = rows[2].cb_mean_abs_error / rows[0].cb_mean_abs_error.max(1e-9);
        assert!(cb_growth < 5.0, "cb growth {cb_growth}: {rows:?}");
        // A/B error grows sharply as per-arm traffic shrinks.
        assert!(
            rows[2].ab_mean_abs_error > 2.0 * rows[0].ab_mean_abs_error,
            "{rows:?}"
        );
        // And at large K, CB is decisively more accurate.
        assert!(
            rows[2].cb_mean_abs_error < rows[2].ab_mean_abs_error / 2.0,
            "{rows:?}"
        );
    }
}

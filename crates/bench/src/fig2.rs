//! Fig 2 — theoretical accuracy (Eq. 1) of evaluating |Π| = 10⁶ policies
//! as a function of N, for several exploration floors ε.

use harvest_estimators::bounds::{fig2_curve, BoundConfig, Fig2Point};

use crate::ExperimentConfig;

/// The policy-class size of the figure.
pub const K: f64 = 1e6;

/// The ε values plotted. 0.04 is the paper's worked example (an Azure edge
/// proxy balancing over 25 clusters).
pub const EPSILONS: [f64; 4] = [0.02, 0.04, 0.1, 0.25];

/// One labelled curve.
#[derive(Debug, Clone)]
pub struct Fig2Curve {
    /// The exploration floor of this curve.
    pub epsilon: f64,
    /// Accuracy at each data size.
    pub points: Vec<Fig2Point>,
}

/// Regenerates the Fig 2 curves over N from 10⁵ to 10⁷.
pub fn run(_cfg: &ExperimentConfig) -> Vec<Fig2Curve> {
    let ns: Vec<f64> = (0..=20)
        .map(|i| 1e5 * 10f64.powf(i as f64 / 10.0))
        .collect();
    EPSILONS
        .iter()
        .map(|&epsilon| Fig2Curve {
            epsilon,
            points: fig2_curve(&BoundConfig::fig2(), epsilon, K, &ns),
        })
        .collect()
}

/// Renders the curves as aligned text.
pub fn render(curves: &[Fig2Curve]) -> String {
    let mut out = String::from(
        "Fig 2: theoretical accuracy (Eq. 1 radius) evaluating 10^6 policies (C=2, delta=0.05)\n",
    );
    out.push_str(&format!("{:>12}", "N"));
    for c in curves {
        out.push_str(&format!("  eps={:<8}", c.epsilon));
    }
    out.push('\n');
    let npoints = curves[0].points.len();
    for i in 0..npoints {
        out.push_str(&format!("{:>12.0}", curves[0].points[i].n));
        for c in curves {
            out.push_str(&format!("  {:<12.4}", c.points[i].radius));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_insights_hold() {
        let curves = run(&ExperimentConfig::default());
        assert_eq!(curves.len(), 4);
        // Doubling epsilon from 0.02 to 0.04 halves the data needed: the
        // 0.04 curve at N equals the 0.02 curve at 2N.
        let c002 = &curves[0];
        let c004 = &curves[1];
        for (i, p) in c002.points.iter().enumerate() {
            if let Some(later) = c002.points.get(i + 10) {
                // ns grid is ×10^(1/10) per step, so +10 steps = ×10... use
                // direct radius relation instead: r(2N, eps) = r(N, 2 eps).
                let _ = later;
            }
            let r_half_data = (2.0f64).sqrt() * c004.points[i].radius;
            assert!((p.radius - r_half_data).abs() < 1e-12);
        }
        // More exploration => uniformly better accuracy.
        for i in 0..c002.points.len() {
            assert!(curves[3].points[i].radius < curves[0].points[i].radius);
        }
    }

    #[test]
    fn diminishing_returns_beyond_the_knee() {
        let curves = run(&ExperimentConfig::default());
        let c004 = &curves[1];
        // Early doublings improve accuracy a lot; late doublings barely.
        // radius ∝ N^{-1/2}: a 0.3-decade step late in the sweep (1.6
        // decades after the early one) improves accuracy 10^0.8 ≈ 6.3×
        // less.
        let early = c004.points[0].radius - c004.points[3].radius;
        let late = c004.points[16].radius - c004.points[19].radius;
        assert!(early > 5.0 * late, "early {early} vs late {late}");
    }

    #[test]
    fn render_has_header_and_rows() {
        let curves = run(&ExperimentConfig::default());
        let text = render(&curves);
        assert!(text.contains("eps=0.04"));
        assert_eq!(text.lines().count(), 2 + curves[0].points.len());
    }
}

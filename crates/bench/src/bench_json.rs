//! Machine-readable bench results: `BENCH_serve.json` at the repo root.
//!
//! The criterion stand-in prints human-readable timings but writes no
//! artifact, so the throughput benches (`serve_throughput`,
//! `wire_throughput`) call [`merge_section`] after their measured pass to
//! persist one JSON section each. Sections merge read-modify-write, so
//! running one bench never clobbers the other's numbers, and key order is
//! deterministic (insertion order) so reruns diff cleanly.
//!
//! Layout:
//!
//! ```json
//! {
//!   "serve_throughput": [
//!     {"axis": "8threads_8shards_tracing_off", "decisions": 32000,
//!      "elapsed_ns": 1234, "decisions_per_sec": 100000,
//!      "p50_ns": 800, "p99_ns": 2100},
//!     ...
//!   ],
//!   "wire_throughput": [...]
//! }
//! ```
//!
//! Latency percentiles come from a [`Histogram`] (the same log-bucketed
//! histogram the serve loop exports), recorded around each call by the
//! bench's load generator.

use std::io;
use std::path::Path;

use harvest_serve::Histogram;
use serde::Serialize;
use serde_json::Value;

/// One bench axis: a named configuration's throughput and latency tail.
#[derive(Debug, Serialize)]
pub struct AxisResult {
    /// The axis name (mirrors the criterion bench id).
    pub axis: String,
    /// Total decisions served across all threads/connections.
    pub decisions: u64,
    /// Wall-clock duration of the measured pass.
    pub elapsed_ns: u64,
    /// `decisions / elapsed`, the headline number.
    pub decisions_per_sec: u64,
    /// Median per-call latency from the recorded histogram.
    pub p50_ns: u64,
    /// Tail per-call latency from the recorded histogram.
    pub p99_ns: u64,
}

impl AxisResult {
    /// Builds an axis result from a measured run and its per-call latency
    /// histogram.
    pub fn from_run(
        axis: impl Into<String>,
        decisions: u64,
        elapsed_ns: u64,
        latencies: &Histogram,
    ) -> Self {
        let secs = elapsed_ns as f64 / 1e9;
        AxisResult {
            axis: axis.into(),
            decisions,
            elapsed_ns,
            decisions_per_sec: if secs > 0.0 {
                (decisions as f64 / secs) as u64
            } else {
                0
            },
            p50_ns: latencies.percentile(0.50),
            p99_ns: latencies.percentile(0.99),
        }
    }
}

/// Replaces (or appends) `section` in the JSON report at `path`, leaving
/// every other section untouched. A missing or unparsable file starts
/// fresh.
pub fn merge_section(path: &Path, section: &str, axes: &[AxisResult]) -> io::Result<()> {
    let mut root: Vec<(String, Value)> = match std::fs::read_to_string(path) {
        Ok(text) => match serde_json::from_str::<Value>(&text) {
            Ok(Value::Object(entries)) => entries,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    let rendered = Value::Array(axes.iter().map(serde_json::to_value).collect());
    match root.iter_mut().find(|(key, _)| key == section) {
        Some(slot) => slot.1 = rendered,
        None => root.push((section.to_string(), rendered)),
    }
    let text = serde_json::to_string(&Value::Object(root))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, text + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_merge_without_clobbering() {
        let dir = std::env::temp_dir().join("harvest-bench-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let _ = std::fs::remove_file(&path);

        let mut hist = Histogram::new();
        for v in [100u64, 200, 300, 10_000] {
            hist.record(v);
        }
        let a = AxisResult::from_run("axis_a", 4, 2_000_000_000, &hist);
        assert_eq!(a.decisions_per_sec, 2);
        merge_section(&path, "serve_throughput", &[a]).unwrap();
        let b = AxisResult::from_run("axis_b", 8, 1_000_000_000, &hist);
        merge_section(&path, "wire_throughput", &[b]).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let Value::Object(root) = serde_json::from_str::<Value>(&text).unwrap() else {
            panic!("report must be an object");
        };
        assert_eq!(root.len(), 2, "both sections present: {text}");
        assert_eq!(root[0].0, "serve_throughput");
        assert_eq!(root[1].0, "wire_throughput");

        // Re-merging a section replaces it in place, preserving the rest.
        let c = AxisResult::from_run("axis_c", 16, 1_000_000_000, &hist);
        merge_section(&path, "serve_throughput", &[c]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("axis_c") && !text.contains("axis_a"));
        assert!(text.contains("axis_b"));
        let _ = std::fs::remove_file(&path);
    }
}

//! Fig 3 — off-policy evaluation error on a CB policy from the machine
//! health scenario, relative to full-feedback ground truth.
//!
//! Procedure (paper §4): train a policy on exploration data; then, for a
//! testing dataset of growing size, run many *partial information
//! simulations* — each reveals one uniformly-chosen action's reward per
//! incident — and estimate the policy's value with IPS. The spread of those
//! estimates against the known ground truth is the figure: "with only 3500
//! points, the error is below 20% with median error at 8%".

use harvest_core::learner::{ModelingMode, RegressionCbLearner, SampleWeighting};
use harvest_core::policy::UniformPolicy;
use harvest_core::simulate::{simulate_exploration, simulate_exploration_n};
use harvest_core::{FullFeedbackDataset, SimpleContext};
use harvest_estimators::{EstimatorKind, OffPolicyEvaluator};
use harvest_sim_mh::{generate_dataset, MachineHealthConfig};
use harvest_sim_net::rng::fork_rng_indexed;

use crate::ExperimentConfig;

/// One point of the figure.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct Fig3Row {
    /// Test-set size N.
    pub n: usize,
    /// Ground-truth value of the evaluated policy on the test set prefix.
    pub truth: f64,
    /// Median relative error of the IPS estimate across trials.
    pub median_rel_error: f64,
    /// 5th percentile of the estimated value across trials.
    pub p5_value: f64,
    /// 95th percentile of the estimated value across trials.
    pub p95_value: f64,
    /// Relative half-width of the [p5, p95] band (the figure's error bar).
    pub rel_band: f64,
}

/// The test-set sizes of the sweep.
pub const SIZES: [usize; 7] = [250, 500, 1_000, 2_000, 3_500, 6_000, 10_000];

/// Number of partial-information simulations per size at scale 1.0 (the
/// paper used 1000).
pub const TRIALS: usize = 1_000;

/// Regenerates Fig 3.
pub fn run(cfg: &ExperimentConfig) -> Vec<Fig3Row> {
    let full = generate_dataset(&MachineHealthConfig {
        incidents: 8_000 + SIZES[SIZES.len() - 1],
        seed: cfg.seed,
    });
    let (train, test) = full.split_at(8_000);

    // Train the evaluated policy from simulated exploration on the training
    // split — the policy whose value Fig 3 estimates.
    let mut train_rng = fork_rng_indexed(cfg.seed, "fig3-train", 0);
    let train_expl = simulate_exploration(&train, &UniformPolicy::new(), &mut train_rng);
    let policy = RegressionCbLearner::new(ModelingMode::PerAction, SampleWeighting::Uniform, 1e-2)
        .expect("valid lambda")
        .fit_policy(&train_expl)
        .expect("training succeeds");

    let trials = cfg.scaled(TRIALS, 50);
    SIZES
        .iter()
        .map(|&n| {
            let prefix = truncate(&test, n);
            let truth = prefix
                .value_of_policy(&policy)
                .expect("non-empty test prefix");
            let mut estimates = run_trials(&prefix, &policy, trials, cfg.seed, n as u64);
            estimates.sort_by(|a, b| a.partial_cmp(b).expect("finite estimates"));
            let pick = |q: f64| {
                let pos = q * (estimates.len() - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = pos.ceil() as usize;
                estimates[lo] * (1.0 - (pos - lo as f64)) + estimates[hi] * (pos - lo as f64)
            };
            let mut rel_errors: Vec<f64> = estimates
                .iter()
                .map(|e| (e - truth).abs() / truth)
                .collect();
            rel_errors.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median_rel_error = rel_errors[rel_errors.len() / 2];
            let (p5, p95) = (pick(0.05), pick(0.95));
            Fig3Row {
                n,
                truth,
                median_rel_error,
                p5_value: p5,
                p95_value: p95,
                rel_band: ((p95 - truth).abs().max((truth - p5).abs())) / truth,
            }
        })
        .collect()
}

fn truncate(
    data: &FullFeedbackDataset<SimpleContext>,
    n: usize,
) -> FullFeedbackDataset<SimpleContext> {
    FullFeedbackDataset::from_samples(data.samples()[..n.min(data.len())].to_vec())
        .expect("prefix of valid data is valid")
}

/// Runs the partial-information simulations, spread across threads.
fn run_trials(
    prefix: &FullFeedbackDataset<SimpleContext>,
    policy: &(impl harvest_core::Policy<SimpleContext> + Sync),
    trials: usize,
    seed: u64,
    size_tag: u64,
) -> Vec<f64> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(trials.max(1));
    let mut estimates = vec![0.0f64; trials];
    let chunk = trials.div_ceil(workers);
    crossbeam::thread::scope(|scope| {
        for (w, out) in estimates.chunks_mut(chunk).enumerate() {
            let prefix = &prefix;
            let policy = &policy;
            scope.spawn(move |_| {
                for (i, slot) in out.iter_mut().enumerate() {
                    let trial = (w * chunk + i) as u64;
                    let mut rng =
                        fork_rng_indexed(seed, "fig3-trial", size_tag * 1_000_000 + trial);
                    let expl = simulate_exploration_n(
                        prefix,
                        &UniformPolicy::new(),
                        prefix.len(),
                        &mut rng,
                    );
                    *slot = OffPolicyEvaluator::new(EstimatorKind::Ips)
                        .evaluate(&expl, policy)
                        .value;
                }
            });
        }
    })
    .expect("trial workers do not panic");
    estimates
}

/// Renders the rows as aligned text.
pub fn render(rows: &[Fig3Row]) -> String {
    let mut out = String::from(
        "Fig 3: IPS estimation error vs test-set size (machine health; uniform logging over 10 actions)\n",
    );
    out.push_str(&format!(
        "{:>8} {:>10} {:>12} {:>12} {:>14} {:>12}\n",
        "N", "truth", "p5 value", "p95 value", "median |err|", "band (rel)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8} {:>10.4} {:>12.4} {:>12.4} {:>13.1}% {:>11.1}%\n",
            r.n,
            r.truth,
            r.p5_value,
            r.p95_value,
            100.0 * r.median_rel_error,
            100.0 * r.rel_band
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_shrinks_with_n_and_meets_paper_waypoint() {
        let rows = run(&ExperimentConfig {
            seed: 3,
            scale: 0.2, // 200 trials
        });
        assert_eq!(rows.len(), SIZES.len());
        // Error decreases with data.
        assert!(rows[0].median_rel_error > rows[6].median_rel_error);
        // Paper waypoint: at N = 3500, median error ≈ 8% (≤ 15% here) and
        // the 95th-percentile band is below ~25%.
        let at3500 = rows.iter().find(|r| r.n == 3_500).unwrap();
        assert!(
            at3500.median_rel_error < 0.15,
            "median {}",
            at3500.median_rel_error
        );
        assert!(at3500.rel_band < 0.3, "band {}", at3500.rel_band);
        // The truth is bracketed by the p5/p95 band everywhere.
        for r in &rows {
            assert!(r.p5_value <= r.truth && r.truth <= r.p95_value);
        }
    }
}

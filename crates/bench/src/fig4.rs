//! Fig 4 — convergence of CB training on the machine-health data, relative
//! to a full-feedback (supervised) model.
//!
//! The paper: "simulating 10,000 exploration datapoints from the dataset,
//! we learn a policy that obtains an average reward (on a testing set)
//! within 15% of a policy trained using supervised learning on the full
//! feedback dataset. The CB algorithm converges very quickly, getting
//! within 20% using only 2000 points."
//!
//! "Within X%" is measured on the *achievable regret range*: how much of
//! the gap between the default policy's value and the supervised skyline's
//! value the CB policy has closed.

use harvest_core::learner::{
    ModelingMode, RegressionCbLearner, SampleWeighting, SupervisedLearner,
};
use harvest_core::policy::{ConstantPolicy, UniformPolicy};
use harvest_core::simulate::simulate_exploration_n;
use harvest_sim_mh::failure::DEFAULT_ACTION;
use harvest_sim_mh::{generate_dataset, MachineHealthConfig};
use harvest_sim_net::rng::fork_rng;

use crate::ExperimentConfig;

/// One point of the learning curve.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct Fig4Row {
    /// Exploration datapoints used for CB training.
    pub n: usize,
    /// Test-set value of the CB policy.
    pub cb_value: f64,
    /// Test-set value of the supervised (full-feedback) skyline.
    pub supervised_value: f64,
    /// Test-set value of the data-collection default (wait 10 min).
    pub default_value: f64,
    /// Fraction of the default→supervised gap still open: 0 = matches the
    /// skyline, 1 = no better than the default.
    pub remaining_gap: f64,
}

/// Training-set sizes of the sweep (the paper trains up to 10 000 points).
pub const SIZES: [usize; 7] = [250, 500, 1_000, 2_000, 4_000, 7_000, 10_000];

/// Regenerates Fig 4.
pub fn run(cfg: &ExperimentConfig) -> Vec<Fig4Row> {
    let max_n = SIZES[SIZES.len() - 1];
    let test_n = cfg.scaled(10_000, 2_000);
    let full = generate_dataset(&MachineHealthConfig {
        incidents: max_n + test_n,
        seed: cfg.seed,
    });
    let (train, test) = full.split_at(max_n);

    let supervised = SupervisedLearner::new(1e-2)
        .expect("valid lambda")
        .fit_policy(&train)
        .expect("training succeeds");
    let supervised_value = test.value_of_policy(&supervised).expect("non-empty test");
    let default_value = test
        .value_of_policy(&ConstantPolicy::new(DEFAULT_ACTION))
        .expect("non-empty test");

    let mut rng = fork_rng(cfg.seed, "fig4-exploration");
    let exploration = simulate_exploration_n(&train, &UniformPolicy::new(), max_n, &mut rng);
    let learner = RegressionCbLearner::new(ModelingMode::PerAction, SampleWeighting::Uniform, 1e-2)
        .expect("valid lambda");

    SIZES
        .iter()
        .map(|&n| {
            let prefix = exploration.truncated(n);
            let cb = learner.fit_policy(&prefix).expect("training succeeds");
            let cb_value = test.value_of_policy(&cb).expect("non-empty test");
            let gap_total = supervised_value - default_value;
            let remaining_gap = if gap_total > 0.0 {
                ((supervised_value - cb_value) / gap_total).max(0.0)
            } else {
                0.0
            };
            Fig4Row {
                n,
                cb_value,
                supervised_value,
                default_value,
                remaining_gap,
            }
        })
        .collect()
}

/// Renders the learning curve as aligned text.
pub fn render(rows: &[Fig4Row]) -> String {
    let mut out = String::from(
        "Fig 4: CB training convergence (machine health) vs supervised full-feedback skyline\n",
    );
    out.push_str(&format!(
        "{:>8} {:>12} {:>12} {:>12} {:>16}\n",
        "N", "CB value", "supervised", "default", "remaining gap"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8} {:>12.4} {:>12.4} {:>12.4} {:>15.1}%\n",
            r.n,
            r.cb_value,
            r.supervised_value,
            r.default_value,
            100.0 * r.remaining_gap
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_like_the_paper() {
        let rows = run(&ExperimentConfig {
            seed: 4,
            scale: 0.5,
        });
        assert_eq!(rows.len(), SIZES.len());
        let at = |n: usize| rows.iter().find(|r| r.n == n).unwrap();
        // Within 20% of the skyline (gap-wise) at 2000 points.
        assert!(
            at(2_000).remaining_gap < 0.20,
            "gap at 2000: {}",
            at(2_000).remaining_gap
        );
        // Within 15% at 10 000 points.
        assert!(
            at(10_000).remaining_gap < 0.15,
            "gap at 10000: {}",
            at(10_000).remaining_gap
        );
        // The curve beats the default quickly and never exceeds the skyline.
        for r in &rows {
            assert!(r.supervised_value >= r.cb_value - 1e-9);
            if r.n >= 1_000 {
                assert!(r.cb_value > r.default_value, "n={} cb below default", r.n);
            }
        }
        // More data never makes things drastically worse (monotone-ish).
        assert!(at(10_000).remaining_gap <= at(250).remaining_gap);
    }
}

//! Table 2 — mean request latency of load-balancing policies: off-policy
//! estimates vs online (deployed) measurements.
//!
//! The headline negative result: in data logged under uniform-random
//! routing, server 1 always looks fast, so IPS scores "send to 1" as the
//! best policy — but deploying it overloads server 1 and roughly doubles
//! its latency. Meanwhile CB *optimization* still works: the learned
//! policy beats least-loaded online.

use harvest_core::policy::{FnPolicy, GreedyPolicy, Policy};
use harvest_core::{Context, SimpleContext};
use harvest_estimators::{EstimatorKind, OffPolicyEvaluator};
use harvest_sim_lb::policy::{CbRouting, LeastLoadedRouting, RandomRouting, SendToRouting};
use harvest_sim_lb::sim::{run_simulation, SimConfig};
use harvest_sim_lb::ClusterConfig;

use crate::ExperimentConfig;

/// One row of Table 2.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table2Row {
    /// Policy name.
    pub policy: String,
    /// Mean latency according to off-policy evaluation on the exploration
    /// data, in seconds.
    pub ope_latency_s: f64,
    /// Mean latency measured by actually deploying the policy, in seconds.
    pub online_latency_s: f64,
}

/// Requests per simulation run at scale 1.0.
pub const REQUESTS: usize = 60_000;

/// A deterministic core-policy mirror of least-loaded routing, usable by
/// the off-policy estimators (the first `num_servers` shared features are
/// the scaled connection counts).
pub fn least_loaded_core_policy(
    num_servers: usize,
) -> FnPolicy<impl Fn(&SimpleContext) -> usize + Clone> {
    FnPolicy::new("least-loaded", move |ctx: &SimpleContext| {
        let conns = &ctx.shared_features()[..num_servers.min(ctx.num_actions())];
        let mut best = 0;
        for (i, &c) in conns.iter().enumerate() {
            if c < conns[best] {
                best = i;
            }
        }
        best
    })
}

/// Regenerates Table 2.
pub fn run(cfg: &ExperimentConfig) -> Vec<Table2Row> {
    let cluster = ClusterConfig::fig5();
    let requests = cfg.scaled(REQUESTS, 5_000);
    let sim_cfg = SimConfig::table2(cluster.clone(), requests, cfg.seed);

    // Exploration: deploy uniform-random routing and harvest its logs.
    let exploration_run = run_simulation(&sim_cfg, &mut RandomRouting);
    let exploration = exploration_run.to_dataset();
    let scorer = exploration_run
        .fit_cb_scorer(1e-3)
        .expect("CB training succeeds");

    let k = cluster.num_servers();
    let ll = least_loaded_core_policy(k);
    let send1 = harvest_core::policy::ConstantPolicy::new(0);
    let cb = GreedyPolicy::new(scorer.clone()).named("cb-policy");

    // OPE values (rewards are negated latencies; flip sign back).
    let ope = |p: &dyn Policy<SimpleContext>| {
        -OffPolicyEvaluator::new(EstimatorKind::Ips)
            .evaluate(&exploration, p)
            .value
    };
    let rows_ope = [
        (
            "random".to_string(),
            -exploration.mean_logged_reward().unwrap_or(0.0),
        ),
        ("least-loaded".to_string(), ope(&ll)),
        ("send-to-1".to_string(), ope(&send1)),
        ("cb-policy".to_string(), ope(&cb)),
    ];

    // Online ground truth: deploy each policy in the simulator.
    let online = [
        run_simulation(&sim_cfg, &mut RandomRouting).mean_latency_s,
        run_simulation(&sim_cfg, &mut LeastLoadedRouting).mean_latency_s,
        run_simulation(&sim_cfg, &mut SendToRouting(0)).mean_latency_s,
        run_simulation(&sim_cfg, &mut CbRouting::greedy(scorer)).mean_latency_s,
    ];

    rows_ope
        .into_iter()
        .zip(online)
        .map(|((policy, ope_latency_s), online_latency_s)| Table2Row {
            policy,
            ope_latency_s,
            online_latency_s,
        })
        .collect()
}

/// Renders the table as aligned text.
pub fn render(rows: &[Table2Row]) -> String {
    let mut out =
        String::from("Table 2: mean request latency of load-balancing policies (Fig 5 cluster)\n");
    out.push_str(&format!(
        "{:<14} {:>22} {:>20}\n",
        "Policy", "Off-policy evaluation", "Online evaluation"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>21.2}s {:>19.2}s\n",
            r.policy, r.ope_latency_s, r.online_latency_s
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(rows: &'a [Table2Row], name: &str) -> &'a Table2Row {
        rows.iter().find(|r| r.policy == name).unwrap()
    }

    #[test]
    fn table2_shape_holds() {
        let rows = run(&ExperimentConfig {
            seed: 5,
            scale: 0.5,
        });
        assert_eq!(rows.len(), 4);
        let random = row(&rows, "random");
        let ll = row(&rows, "least-loaded");
        let send1 = row(&rows, "send-to-1");
        let cb = row(&rows, "cb-policy");

        // Random: OPE (= on-policy mean) agrees with online.
        assert!(
            (random.ope_latency_s - random.online_latency_s).abs() < 0.03,
            "random {:?}",
            random
        );
        // The catastrophic miss: send-to-1 looks great offline, is the
        // worst policy online (paper: 0.31 s vs 0.70 s).
        assert!(
            send1.ope_latency_s < random.ope_latency_s - 0.05,
            "send-to-1 must look fast offline: {send1:?}"
        );
        assert!(
            send1.online_latency_s > send1.ope_latency_s * 1.8,
            "send-to-1 must blow up online: {send1:?}"
        );
        assert!(send1.online_latency_s > random.online_latency_s + 0.1);
        // Least-loaded beats random online.
        assert!(ll.online_latency_s < random.online_latency_s - 0.02);
        // CB optimization works: beats least-loaded online.
        assert!(
            cb.online_latency_s < ll.online_latency_s,
            "cb {:?} vs ll {:?}",
            cb,
            ll
        );
    }
}

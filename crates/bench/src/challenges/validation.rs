//! Empirical Eq. 1 validation and the A1-violation drift tripwire.

use harvest_core::policy::UniformPolicy;
use harvest_core::simulate::simulate_exploration;
use harvest_sim_lb::policy::RandomRouting;
use harvest_sim_lb::sim::{run_simulation, SimConfig};
use harvest_sim_lb::ClusterConfig;
use harvest_sim_mh::{generate_dataset, MachineHealthConfig};
use harvest_sim_net::rng::fork_rng_indexed;

use crate::ExperimentConfig;

/// One row of the empirical Eq. 1 validation.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct SimultaneousEvalRow {
    /// Number of policies evaluated on the same data.
    pub k: usize,
    /// Exploration samples.
    pub n: usize,
    /// Largest |IPS estimate − ground truth| across all K policies.
    pub max_abs_error: f64,
    /// The Eq. 1 radius for these (ε, N, K, δ = 0.05).
    pub eq1_radius: f64,
}

/// Empirically validates Eq. 1's *simultaneity*: evaluate a whole policy
/// class on one exploration dataset and check that even the worst estimate
/// stays inside the theoretical radius. This is the mechanism behind the
/// Fig 1/Fig 2 efficiency claims.
pub fn simultaneous_evaluation(
    cfg: &ExperimentConfig,
    k: usize,
    ns: &[usize],
) -> Vec<SimultaneousEvalRow> {
    use harvest_core::policy::enumerate_stumps;
    use harvest_estimators::bounds::{ips_radius, BoundConfig};
    use harvest_sim_mh::failure::NUM_ACTIONS;
    use harvest_sim_mh::machine::MachineSpec;

    let max_n = *ns.iter().max().expect("non-empty sizes");
    let full = generate_dataset(&MachineHealthConfig {
        incidents: max_n,
        seed: cfg.seed,
    });
    let mut rng = fork_rng_indexed(cfg.seed, "simul-eval", 0);
    let expl = simulate_exploration(&full, &UniformPolicy::new(), &mut rng);

    // The policy class: decision stumps over the machine features (the
    // paper's "decision trees" template). Pick enough thresholds to reach
    // at least k members, then truncate to exactly k.
    let per_threshold = MachineSpec::FEATURE_DIM * NUM_ACTIONS * NUM_ACTIONS;
    let t = k.div_ceil(per_threshold).max(1);
    let thresholds: Vec<f64> = (0..t).map(|i| (i as f64 + 0.5) / t as f64).collect();
    let mut class = enumerate_stumps(MachineSpec::FEATURE_DIM, &thresholds, NUM_ACTIONS);
    class.truncate(k);
    let k = class.len();

    let bounds = BoundConfig::fig2();
    ns.iter()
        .map(|&n| {
            let prefix = expl.truncated(n);
            let full_prefix =
                harvest_core::FullFeedbackDataset::from_samples(full.samples()[..n].to_vec())
                    .expect("valid prefix");
            let mut max_abs_error = 0.0f64;
            for p in &class {
                let est = harvest_estimators::OffPolicyEvaluator::new(
                    harvest_estimators::EstimatorKind::Ips,
                )
                .evaluate(&prefix, p)
                .value;
                let truth = full_prefix.value_of_policy(p).expect("non-empty");
                max_abs_error = max_abs_error.max((est - truth).abs());
            }
            SimultaneousEvalRow {
                k,
                n,
                max_abs_error,
                eq1_radius: ips_radius(&bounds, 1.0 / NUM_ACTIONS as f64, n as f64, k as f64),
            }
        })
        .collect()
}

/// Renders the simultaneous-evaluation validation.
pub fn render_simultaneous(rows: &[SimultaneousEvalRow]) -> String {
    let mut out = String::from(
        "Empirical Eq. 1 validation: worst-case error over a policy class vs the bound\n",
    );
    out.push_str(&format!(
        "{:>8} {:>8} {:>16} {:>14}\n",
        "N", "K", "max |est-truth|", "Eq.1 radius"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8} {:>8} {:>16.4} {:>14.4}\n",
            r.n, r.k, r.max_abs_error, r.eq1_radius
        ));
    }
    out
}

/// One row of the drift tripwire demonstration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DriftRow {
    /// The deployed candidate whose canary contexts are compared against
    /// the exploration log.
    pub policy: String,
    /// Largest standardized mean shift across context features.
    pub max_effect_size: f64,
    /// Largest Kolmogorov–Smirnov distance across context features.
    pub max_ks: f64,
    /// Whether the A1-violation tripwire fires.
    pub suspected: bool,
}

/// Demonstrates the context-drift tripwire on Table 2's policies: deploying
/// "send to 1" changes the connection-count distribution so drastically
/// that the violation is detectable from a small canary run — *before*
/// trusting the (broken) off-policy estimate.
pub fn drift_tripwire(cfg: &ExperimentConfig) -> Vec<DriftRow> {
    use harvest_estimators::drift::context_drift;
    use harvest_sim_lb::policy::{CbRouting, SendToRouting};

    let requests = cfg.scaled(30_000, 6_000);
    let base = SimConfig::table2(ClusterConfig::fig5(), requests, cfg.seed);
    let explore = run_simulation(&base, &mut RandomRouting);
    let logged = explore.to_dataset();
    let scorer = explore.fit_cb_scorer(1e-3).expect("model fits");

    // Canary runs: deploy each candidate with a light exploration floor so
    // its contexts are loggable, and compare context distributions.
    let mut rows = Vec::new();
    let mut canary = |name: &str, run: harvest_sim_lb::sim::LbRunResult| {
        let deployed = run.to_dataset();
        let report = context_drift(&logged, &deployed);
        rows.push(DriftRow {
            policy: name.to_string(),
            max_effect_size: report.max_effect_size(),
            max_ks: report.max_ks(),
            suspected: report.a1_violation_suspected(),
        });
    };
    let mut seed2 = base.clone();
    seed2.seed = cfg.seed.wrapping_add(1);
    canary(
        "random (control)",
        run_simulation(&seed2, &mut RandomRouting),
    );
    // Wrap send-to-1 in an ε exploration floor so its canary decisions log
    // propensities; ~95% of traffic still lands on server 1. The pooled
    // scorer puts all its weight on server 0's identity one-hot
    // (φ layout for a 2-server, 2-class context: shared conns ×2, class
    // one-hot ×2 | own conn, id ×2, interactions ×4 | bias).
    let mut send1_weights = vec![0.0; 12];
    send1_weights[5] = 1.0; // id one-hot of server 0
    let send1_scorer = harvest_core::scorer::LinearScorer::Pooled {
        weights: send1_weights,
    };
    canary(
        "send-to-1 (canary)",
        run_simulation(&base, &mut CbRouting::epsilon_greedy(send1_scorer, 0.1)),
    );
    let _ = SendToRouting(0); // the ε→0 limit of the canary policy
    canary(
        "cb-policy (canary)",
        run_simulation(&base, &mut CbRouting::epsilon_greedy(scorer, 0.1)),
    );
    rows
}

/// Renders the drift tripwire table.
pub fn render_drift(rows: &[DriftRow]) -> String {
    let mut out = String::from(
        "A1-violation tripwire: context drift between exploration log and canary runs\n",
    );
    out.push_str(&format!(
        "{:<20} {:>14} {:>10} {:>12}\n",
        "Deployed policy", "max effect d", "max KS", "A1 suspect"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<20} {:>14.2} {:>10.2} {:>12}\n",
            r.policy,
            r.max_effect_size,
            r.max_ks,
            if r.suspected { "YES" } else { "no" }
        ));
    }
    out
}

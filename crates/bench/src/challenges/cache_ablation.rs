//! Cache-design ablations: eviction-sample counts and workload shape.
//!
//! Two questions DESIGN.md calls out:
//!
//! 1. **How much does Redis-style candidate subsampling cost?** The paper
//!    (§5, "data collection and distributed state") embraces subsampling as
//!    the thing that makes logging tractable; the sweep quantifies the
//!    hit-rate price each policy pays for small `maxmemory-samples`.
//! 2. **Is Table 3's result about the policies or the workload?** On a
//!    Zipf-popularity workload with uniform item sizes, the recency/
//!    frequency heuristics are fine and the freq/size rule loses its edge —
//!    confirming that the paper's negative result is specifically about
//!    unpriced *size* (long-term space cost), not about LRU/LFU being bad.

use harvest_sim_cache::policy::{FreqSizeEviction, LfuEviction, LruEviction, RandomEviction};
use harvest_sim_cache::runner::{run_cache_workload, CacheRunConfig};
use harvest_sim_cache::store::CacheConfig;
use harvest_sim_net::rng::fork_rng;
use harvest_sim_net::workload::{PoissonArrivals, Request, WorkloadGenerator, ZipfKeys};

use crate::ExperimentConfig;

/// Hit rates at one eviction-sample count.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SamplesRow {
    /// Candidates sampled per eviction (Redis `maxmemory-samples`).
    pub samples: usize,
    /// Hit rate of random eviction (insensitive by construction).
    pub random: f64,
    /// Hit rate of LRU over the sampled candidates.
    pub lru: f64,
    /// Hit rate of freq/size over the sampled candidates.
    pub freq_size: f64,
}

/// Sweeps `maxmemory-samples` on the Table 3 workload.
pub fn eviction_samples_sweep(cfg: &ExperimentConfig, sample_counts: &[usize]) -> Vec<SamplesRow> {
    let trace = harvest_sim_cache::runner::big_small_trace(cfg.scaled(60_000, 15_000), cfg.seed);
    sample_counts
        .iter()
        .map(|&samples| {
            let run_cfg = CacheRunConfig {
                cache: CacheConfig {
                    capacity_bytes: 75 * 1024,
                    eviction_samples: samples,
                },
                warmup: (trace.len() / 10).min(10_000),
                seed: cfg.seed,
            };
            SamplesRow {
                samples,
                random: run_cache_workload(&run_cfg, &mut RandomEviction, &trace).hit_rate(),
                lru: run_cache_workload(&run_cfg, &mut LruEviction, &trace).hit_rate(),
                freq_size: run_cache_workload(&run_cfg, &mut FreqSizeEviction, &trace).hit_rate(),
            }
        })
        .collect()
}

/// Renders the samples sweep.
pub fn render_samples_sweep(rows: &[SamplesRow]) -> String {
    let mut out = String::from(
        "Eviction-sample sweep (Table 3 workload): policy quality vs maxmemory-samples\n",
    );
    out.push_str(&format!(
        "{:>9} {:>10} {:>10} {:>11}\n",
        "samples", "random", "lru", "freq-size"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>9} {:>9.1}% {:>9.1}% {:>10.1}%\n",
            r.samples,
            100.0 * r.random,
            100.0 * r.lru,
            100.0 * r.freq_size
        ));
    }
    out
}

/// Hit rates on a Zipf workload with uniform sizes.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ZipfRow {
    /// Policy name.
    pub policy: String,
    /// Hit rate.
    pub hit_rate: f64,
}

/// Runs the eviction policies on a Zipf(0.9) workload over 300 equal-size
/// keys with a budget for 100 of them.
pub fn zipf_workload_check(cfg: &ExperimentConfig) -> Vec<ZipfRow> {
    let mut rng = fork_rng(cfg.seed, "zipf-cache");
    let mut generator =
        WorkloadGenerator::new(PoissonArrivals::new(200.0), ZipfKeys::new(300, 0.9, 1024));
    let trace: Vec<Request> = generator.take(cfg.scaled(60_000, 15_000), &mut rng);
    let run_cfg = CacheRunConfig {
        cache: CacheConfig {
            capacity_bytes: 100 * 1024,
            eviction_samples: 10,
        },
        warmup: (trace.len() / 10).min(10_000),
        seed: cfg.seed,
    };
    let mut rows = Vec::new();
    let mut random = RandomEviction;
    let mut lru = LruEviction;
    let mut lfu = LfuEviction;
    let mut fs = FreqSizeEviction;
    let policies: [(&str, &mut dyn harvest_sim_cache::EvictionPolicy); 4] = [
        ("random", &mut random),
        ("lru", &mut lru),
        ("lfu", &mut lfu),
        ("freq-size", &mut fs),
    ];
    for (name, p) in policies {
        rows.push(ZipfRow {
            policy: name.to_string(),
            hit_rate: run_cache_workload(&run_cfg, p, &trace).hit_rate(),
        });
    }
    rows
}

/// Renders the Zipf check.
pub fn render_zipf(rows: &[ZipfRow]) -> String {
    let mut out = String::from(
        "Zipf workload (uniform sizes): the Table 3 pathology disappears without size skew\n",
    );
    out.push_str(&format!("{:<12} {:>10}\n", "Policy", "Hit rate"));
    for r in rows {
        out.push_str(&format!("{:<12} {:>9.1}%\n", r.policy, 100.0 * r.hit_rate));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig {
            seed: 10,
            scale: 0.3,
        }
    }

    #[test]
    fn more_samples_help_informed_policies_not_random() {
        let rows = eviction_samples_sweep(&cfg(), &[1, 5, 20]);
        let one = &rows[0];
        let twenty = &rows[2];
        // With a single candidate every policy degenerates to random.
        assert!((one.lru - one.random).abs() < 0.03, "{rows:?}");
        assert!((one.freq_size - one.random).abs() < 0.03, "{rows:?}");
        // With 20 candidates freq/size pulls far ahead; random is flat.
        assert!(twenty.freq_size > twenty.random + 0.06, "{rows:?}");
        assert!((twenty.random - one.random).abs() < 0.04, "{rows:?}");
        // freq/size improves monotonically with samples.
        assert!(rows[1].freq_size > rows[0].freq_size);
        assert!(rows[2].freq_size >= rows[1].freq_size - 0.01);
    }

    #[test]
    fn zipf_without_size_skew_rehabilitates_recency_and_frequency() {
        let rows = zipf_workload_check(&cfg());
        let rate = |n: &str| rows.iter().find(|r| r.policy == n).unwrap().hit_rate;
        // Frequency-aware policies beat random on pure popularity skew.
        assert!(rate("lfu") > rate("random") + 0.01, "{rows:?}");
        // And freq/size has no special edge over LFU when sizes are equal
        // (they are the same rule up to a constant).
        assert!((rate("freq-size") - rate("lfu")).abs() < 0.02, "{rows:?}");
    }
}

/// One row of the short-term-reward vs hit-rate mismatch table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct OpeMismatchRow {
    /// Policy name.
    pub policy: String,
    /// IPS estimate of the policy's *short-term* CB reward (normalized
    /// time-to-next-access of the evicted item) on random-eviction logs.
    pub short_term_ope: f64,
    /// The policy's actual deployed hit rate on the same trace.
    pub online_hit_rate: f64,
}

/// Quantifies Table 3's root cause as a **rank inversion**: the policy with
/// the *worst* short-term off-policy value (freq/size — it deliberately
/// evicts hot large items that will be re-requested soon) has the *best*
/// hit rate, while the short-term-optimal CB policy loses. When rewards are
/// long-term, optimizing (or ranking by) the short-term proxy points in the
/// wrong direction.
pub fn cache_ope_mismatch(cfg: &ExperimentConfig) -> Vec<OpeMismatchRow> {
    use harvest_core::policy::FnPolicy;
    use harvest_core::{Context, SimpleContext};
    use harvest_estimators::{EstimatorKind, OffPolicyEvaluator};
    use harvest_sim_cache::policy::CbEviction;
    use harvest_sim_cache::runner::{big_small_trace, table3_cache_config};

    let trace = big_small_trace(cfg.scaled(80_000, 20_000), cfg.seed);
    let run_cfg = CacheRunConfig {
        cache: table3_cache_config(),
        warmup: (trace.len() / 10).min(10_000),
        seed: cfg.seed,
    };
    let explore = run_cache_workload(&run_cfg, &mut RandomEviction, &trace);
    let data = explore.to_dataset(60.0);
    let scorer = explore.fit_cb_scorer(60.0, 1e-2).expect("model fits");

    // Candidate features are [size_kb, idle, freq, age] (see
    // `Candidate::features`); the core-policy mirrors read them back.
    let af = |ctx: &SimpleContext, a: usize, i: usize| ctx.action_features(a)[i];
    let argmax = |ctx: &SimpleContext, score: &dyn Fn(&SimpleContext, usize) -> f64| {
        let mut best = 0;
        for a in 1..ctx.num_actions() {
            if score(ctx, a) > score(ctx, best) {
                best = a;
            }
        }
        best
    };
    let lru = FnPolicy::new("lru", move |ctx: &SimpleContext| {
        argmax(ctx, &|c, a| af(c, a, 1)) // longest idle
    });
    let freq_size = FnPolicy::new("freq-size", move |ctx: &SimpleContext| {
        argmax(ctx, &|c, a| -af(c, a, 2) / af(c, a, 0).max(1e-9)) // lowest freq density
    });
    let cb_core = harvest_core::policy::GreedyPolicy::new(scorer.clone()).named("cb-policy");

    // Random's short-term OPE = mean logged reward (on-policy).
    let ev = OffPolicyEvaluator::new(EstimatorKind::Ips);
    let mut rows = vec![OpeMismatchRow {
        policy: "random".to_string(),
        short_term_ope: data.mean_logged_reward().unwrap_or(0.0),
        online_hit_rate: explore.hit_rate(),
    }];
    rows.push(OpeMismatchRow {
        policy: "lru".to_string(),
        short_term_ope: ev.evaluate(&data, &lru).value,
        online_hit_rate: run_cache_workload(&run_cfg, &mut LruEviction, &trace).hit_rate(),
    });
    rows.push(OpeMismatchRow {
        policy: "cb-policy".to_string(),
        short_term_ope: ev.evaluate(&data, &cb_core).value,
        online_hit_rate: run_cache_workload(&run_cfg, &mut CbEviction::greedy(scorer), &trace)
            .hit_rate(),
    });
    rows.push(OpeMismatchRow {
        policy: "freq-size".to_string(),
        short_term_ope: ev.evaluate(&data, &freq_size).value,
        online_hit_rate: run_cache_workload(&run_cfg, &mut FreqSizeEviction, &trace).hit_rate(),
    });
    rows
}

/// Renders the mismatch table.
pub fn render_ope_mismatch(rows: &[OpeMismatchRow]) -> String {
    let mut out =
        String::from("Short-term OPE vs deployed hit rate (Table 3's root cause, quantified)\n");
    out.push_str(&format!(
        "{:<12} {:>18} {:>16}\n",
        "Policy", "short-term OPE", "online hit rate"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>18.4} {:>15.1}%\n",
            r.policy,
            r.short_term_ope,
            100.0 * r.online_hit_rate
        ));
    }
    out
}

#[cfg(test)]
mod mismatch_tests {
    use super::*;

    #[test]
    fn short_term_ranking_inverts_the_hit_rate_ranking() {
        let rows = cache_ope_mismatch(&ExperimentConfig {
            seed: 10,
            scale: 0.3,
        });
        let by = |n: &str| rows.iter().find(|r| r.policy == n).unwrap();
        let cb = by("cb-policy");
        let fs = by("freq-size");
        // The CB policy maximizes the short-term estimate…
        assert!(
            cb.short_term_ope > fs.short_term_ope,
            "cb must look better short-term: {rows:?}"
        );
        // …but freq/size wins where it counts.
        assert!(
            fs.online_hit_rate > cb.online_hit_rate + 0.04,
            "freq-size must win online: {rows:?}"
        );
    }
}

//! Sequence estimators: trajectory-IS variance blow-up and the doubly-robust remedy (§5).

use harvest_core::policy::{ConstantPolicy, PointMassPolicy};
use harvest_estimators::trajectory::{variance_profile, Episode, Step, WeightProfile};
use harvest_sim_lb::policy::RandomRouting;
use harvest_sim_lb::sim::{run_simulation, LbRunResult, SimConfig};
use harvest_sim_lb::{ClusterConfig, LbContext};

use crate::ExperimentConfig;

/// Chops a load-balancer run into fixed-horizon episodes for trajectory
/// estimators.
pub fn lb_episodes(
    result: &LbRunResult,
    horizon: usize,
) -> Vec<Episode<harvest_core::SimpleContext>> {
    let steps: Vec<Step<harvest_core::SimpleContext>> = result
        .measured_requests()
        .iter()
        .filter_map(|r| {
            let p = r.propensity?;
            Some(Step {
                context: LbContext {
                    connections: r.connections.clone(),
                    request_class: r.request_class,
                    num_classes: result.num_classes,
                }
                .to_cb_context(),
                action: r.server,
                reward: -r.latency_s,
                propensity: p,
            })
        })
        .collect();
    steps
        .chunks(horizon)
        .filter(|c| c.len() == horizon)
        .map(|c| Episode { steps: c.to_vec() })
        .collect()
}

/// Computes the trajectory-IS variance profile for evaluating "send to 1"
/// on episodes logged under uniform-random routing.
pub fn trajectory_variance(cfg: &ExperimentConfig, max_horizon: usize) -> Vec<WeightProfile> {
    let sim_cfg = SimConfig::table2(ClusterConfig::fig5(), cfg.scaled(40_000, 8_000), cfg.seed);
    let run = run_simulation(&sim_cfg, &mut RandomRouting);
    let episodes = lb_episodes(&run, max_horizon);
    let target = PointMassPolicy::new(ConstantPolicy::new(0));
    variance_profile(&episodes, &target, max_horizon)
}

/// Renders the variance profile.
pub fn render_trajectory(profile: &[WeightProfile]) -> String {
    let mut out = String::from(
        "Trajectory IS variance vs horizon (target: send-to-1; logging: uniform random)\n",
    );
    out.push_str(&format!(
        "{:>8} {:>14} {:>12} {:>12} {:>14}\n",
        "horizon", "match frac", "mean w", "max w", "ESS"
    ));
    for p in profile {
        out.push_str(&format!(
            "{:>8} {:>14.5} {:>12.3} {:>12.1} {:>14.1}\n",
            p.horizon, p.match_fraction, p.mean_weight, p.max_weight, p.effective_sample_size
        ));
    }
    out
}

/// One horizon of the PDIS vs DR-PDIS comparison.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct DrPdisRow {
    /// Episode horizon.
    pub horizon: usize,
    /// PDIS estimate and its standard error.
    pub pdis: (f64, f64),
    /// DR-PDIS estimate and its standard error.
    pub dr_pdis: (f64, f64),
}

/// Compares plain PDIS against doubly-robust PDIS on load-balancer
/// episodes — the paper's §5 plan ("leveraging doubly robust techniques …
/// to reduce this variance"), quantified.
///
/// Target: the uniform policy perturbed toward server 1 (85/15) — close
/// enough to the logging policy to keep some support at every probed
/// horizon, far enough that weights matter. The reward model is fitted on
/// the same exploration data by the pooled CB learner.
pub fn dr_pdis_comparison(cfg: &ExperimentConfig, horizons: &[usize]) -> Vec<DrPdisRow> {
    use harvest_core::policy::WeightedPolicy;
    use harvest_estimators::trajectory::{doubly_robust_pdis, per_decision_is};

    let sim_cfg = SimConfig::table2(ClusterConfig::fig5(), cfg.scaled(60_000, 10_000), cfg.seed);
    let run = run_simulation(&sim_cfg, &mut RandomRouting);
    let model = run.fit_cb_scorer(1e-3).expect("model fits");
    let target = WeightedPolicy::new(vec![0.85, 0.15]).expect("valid weights");
    horizons
        .iter()
        .map(|&h| {
            let episodes = lb_episodes(&run, h);
            let pdis = per_decision_is(&episodes, &target);
            let dr = doubly_robust_pdis(&episodes, &target, &model);
            DrPdisRow {
                horizon: h,
                pdis: (pdis.value, pdis.std_err),
                dr_pdis: (dr.value, dr.std_err),
            }
        })
        .collect()
}

/// Renders the DR-PDIS comparison.
pub fn render_dr_pdis(rows: &[DrPdisRow]) -> String {
    let mut out = String::from(
        "Doubly-robust PDIS vs plain PDIS (LB episodes; target 85/15 weighted random)\n",
    );
    out.push_str(&format!(
        "{:>8} {:>12} {:>10} {:>12} {:>10} {:>12}\n",
        "horizon", "PDIS", "se", "DR-PDIS", "se", "se ratio"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8} {:>12.3} {:>10.4} {:>12.3} {:>10.4} {:>12.2}\n",
            r.horizon,
            r.pdis.0,
            r.pdis.1,
            r.dr_pdis.0,
            r.dr_pdis.1,
            r.dr_pdis.1 / r.pdis.1.max(1e-12)
        ));
    }
    out
}

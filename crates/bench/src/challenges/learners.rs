//! Learner ablation: regression vs direct IPS optimization vs online epoch-greedy.

use harvest_core::learner::{ModelingMode, RegressionCbLearner, SampleWeighting};
use harvest_core::policy::UniformPolicy;
use harvest_sim_mh::{generate_dataset, MachineHealthConfig};
use harvest_sim_net::rng::fork_rng_indexed;

use crate::ExperimentConfig;

/// One learner's end-of-curve performance on the machine-health scenario.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LearnerRow {
    /// Learner name.
    pub learner: String,
    /// Ground-truth test value of the learned policy.
    pub test_value: f64,
    /// Fraction of the default→skyline gap left open (0 = matches the
    /// supervised skyline).
    pub remaining_gap: f64,
}

/// Ablates the CB learner design: reward-model regression (per-action
/// ridge) vs direct IPS policy optimization (softmax-linear) vs the online
/// epoch-greedy learner, all trained from the same exploration budget and
/// scored against the supervised skyline.
pub fn learner_ablation(cfg: &ExperimentConfig) -> Vec<LearnerRow> {
    use harvest_core::learner::{EpochGreedyLearner, IpsPolicyLearner, SupervisedLearner};
    use harvest_core::policy::ConstantPolicy;
    use harvest_core::simulate::simulate_exploration_n;
    use harvest_sim_mh::failure::DEFAULT_ACTION;
    use harvest_sim_mh::machine::MachineSpec;

    let train_n = cfg.scaled(10_000, 2_000);
    let test_n = cfg.scaled(10_000, 2_000);
    let full = generate_dataset(&MachineHealthConfig {
        incidents: train_n + test_n,
        seed: cfg.seed,
    });
    let (train, test) = full.split_at(train_n);

    let skyline = SupervisedLearner::new(1e-2)
        .expect("valid lambda")
        .fit_policy(&train)
        .expect("training succeeds");
    let skyline_value = test.value_of_policy(&skyline).expect("non-empty");
    let default_value = test
        .value_of_policy(&ConstantPolicy::new(DEFAULT_ACTION))
        .expect("non-empty");
    let gap = |v: f64| {
        let total = skyline_value - default_value;
        if total > 0.0 {
            ((skyline_value - v) / total).max(0.0)
        } else {
            0.0
        }
    };

    let mut rng = fork_rng_indexed(cfg.seed, "learner-ablation", 0);
    let expl = simulate_exploration_n(&train, &UniformPolicy::new(), train_n, &mut rng);

    let mut rows = Vec::new();

    // (a) Reward-model regression, greedy deployment.
    let regression =
        RegressionCbLearner::new(ModelingMode::PerAction, SampleWeighting::Uniform, 1e-2)
            .expect("valid lambda")
            .fit_policy(&expl)
            .expect("training succeeds");
    let v = test.value_of_policy(&regression).expect("non-empty");
    rows.push(LearnerRow {
        learner: "regression (ridge)".to_string(),
        test_value: v,
        remaining_gap: gap(v),
    });

    // (b) Direct IPS policy optimization.
    let ips_policy = IpsPolicyLearner::default_config()
        .fit(&expl)
        .expect("training succeeds")
        .greedy();
    let v = test.value_of_policy(&ips_policy).expect("non-empty");
    rows.push(LearnerRow {
        learner: "ips-policy (softmax)".to_string(),
        test_value: v,
        remaining_gap: gap(v),
    });

    // (c) Online epoch-greedy, replayed over the training incidents (it
    // generates its own exploration instead of consuming ours).
    let mut online = EpochGreedyLearner::new(
        harvest_sim_mh::failure::NUM_ACTIONS,
        MachineSpec::FEATURE_DIM,
        0.5,
        0.05,
        500.0,
    )
    .expect("valid schedule");
    let mut online_rng = fork_rng_indexed(cfg.seed, "learner-ablation-online", 1);
    for s in train.samples() {
        let (a, _p) = online.act(&s.context, &mut online_rng);
        online.learn(&s.context, a, s.rewards[a]);
    }
    let v = test.value_of_policy(&online.policy()).expect("non-empty");
    rows.push(LearnerRow {
        learner: "epoch-greedy (online)".to_string(),
        test_value: v,
        remaining_gap: gap(v),
    });

    rows.push(LearnerRow {
        learner: "supervised skyline".to_string(),
        test_value: skyline_value,
        remaining_gap: 0.0,
    });
    rows.push(LearnerRow {
        learner: "default (wait 10)".to_string(),
        test_value: default_value,
        remaining_gap: 1.0,
    });
    rows
}

/// Renders the learner ablation.
pub fn render_learners(rows: &[LearnerRow]) -> String {
    let mut out = String::from(
        "Learner ablation (machine health): same exploration budget, different optimizers\n",
    );
    out.push_str(&format!(
        "{:<24} {:>12} {:>16}\n",
        "Learner", "test value", "remaining gap"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<24} {:>12.4} {:>15.1}%\n",
            r.learner,
            r.test_value,
            100.0 * r.remaining_gap
        ));
    }
    out
}

//! Estimator ablation: IPS vs SNIPS vs DM vs DR bias/variance (§5).

use harvest_core::learner::{ModelingMode, RegressionCbLearner, SampleWeighting};
use harvest_core::policy::UniformPolicy;
use harvest_core::simulate::simulate_exploration;
use harvest_estimators::direct::direct_method;
use harvest_estimators::evaluator::ModelEstimatorKind;
use harvest_estimators::{EstimatorKind, OffPolicyEvaluator};
use harvest_sim_mh::{generate_dataset, MachineHealthConfig};
use harvest_sim_net::rng::fork_rng_indexed;

use crate::ExperimentConfig;

/// One estimator's accuracy profile across repeated partial-information
/// simulations.
#[derive(Debug, Clone, serde::Serialize)]
pub struct EstimatorRow {
    /// Estimator name.
    pub estimator: String,
    /// Ground-truth policy value.
    pub truth: f64,
    /// Mean estimate across trials.
    pub mean_estimate: f64,
    /// Bias (mean estimate − truth).
    pub bias: f64,
    /// Standard deviation of the estimate across trials.
    pub std_dev: f64,
}

/// Compares the four estimators on the machine-health scenario.
pub fn estimator_ablation(cfg: &ExperimentConfig) -> Vec<EstimatorRow> {
    let test_n = cfg.scaled(4_000, 1_000);
    let full = generate_dataset(&MachineHealthConfig {
        incidents: 2_000 + test_n,
        seed: cfg.seed,
    });
    let (train, test) = full.split_at(2_000);

    // The evaluated policy and a (deliberately imperfect) reward model,
    // both trained on the training split.
    let mut rng = fork_rng_indexed(cfg.seed, "ablation-train", 0);
    let train_expl = simulate_exploration(&train, &UniformPolicy::new(), &mut rng);
    let learner = RegressionCbLearner::new(ModelingMode::PerAction, SampleWeighting::Uniform, 1e-2)
        .expect("valid lambda");
    let policy = learner.fit_policy(&train_expl).expect("training succeeds");
    let model = learner.fit(&train_expl).expect("training succeeds");
    let truth = test.value_of_policy(&policy).expect("non-empty test");

    let trials = cfg.scaled(200, 30);
    let mut sums = [0.0f64; 4];
    let mut sums_sq = [0.0f64; 4];
    for t in 0..trials {
        let mut rng = fork_rng_indexed(cfg.seed, "ablation-trial", t as u64);
        let expl = simulate_exploration(&test, &UniformPolicy::new(), &mut rng);
        let values = [
            OffPolicyEvaluator::new(EstimatorKind::Ips)
                .evaluate(&expl, &policy)
                .value,
            OffPolicyEvaluator::new(EstimatorKind::Snips)
                .evaluate(&expl, &policy)
                .value,
            direct_method(&expl, &policy, &model).value,
            OffPolicyEvaluator::evaluate_with_model(
                &expl,
                &policy,
                &model,
                ModelEstimatorKind::DoublyRobust,
            )
            .value,
        ];
        for (i, v) in values.into_iter().enumerate() {
            sums[i] += v;
            sums_sq[i] += v * v;
        }
    }
    let names = ["ips", "snips", "direct-method", "doubly-robust"];
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mean = sums[i] / trials as f64;
            let var = (sums_sq[i] / trials as f64 - mean * mean).max(0.0);
            EstimatorRow {
                estimator: name.to_string(),
                truth,
                mean_estimate: mean,
                bias: mean - truth,
                std_dev: var.sqrt(),
            }
        })
        .collect()
}

/// Renders the estimator ablation.
pub fn render_estimators(rows: &[EstimatorRow]) -> String {
    let mut out = String::from(
        "Estimator ablation (machine health): bias/variance across partial-info simulations\n",
    );
    out.push_str(&format!(
        "{:<14} {:>10} {:>12} {:>10} {:>10}\n",
        "Estimator", "truth", "mean est.", "bias", "std"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>10.4} {:>12.4} {:>+10.4} {:>10.4}\n",
            r.estimator, r.truth, r.mean_estimate, r.bias, r.std_dev
        ));
    }
    out
}

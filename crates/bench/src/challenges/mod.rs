//! §5 challenge demonstrations and design ablations.
//!
//! Three quantitative companions to the paper's challenges section:
//!
//! * [`estimator_ablation`] — IPS vs SNIPS vs direct method vs doubly
//!   robust on the machine-health scenario: the bias/variance trade-off
//!   that motivates the paper's doubly-robust plan.
//! * [`trajectory_variance`] — per-decision importance sampling over
//!   load-balancer episodes: unbiased in principle, but the match fraction
//!   and effective sample size collapse exponentially with horizon
//!   ("a uniform random load balancing policy will almost never choose the
//!   same server twenty times in a row").
//! * [`exploration_coverage`] — the paper's proposed fix: randomizing
//!   traffic *shares per episode* instead of per request yields sustained
//!   skewed-load sequences that per-request randomization never produces.

mod cache_ablation;
mod estimators;
mod exploration;
mod learners;
mod sequences;
mod validation;

pub use cache_ablation::{
    cache_ope_mismatch, eviction_samples_sweep, render_ope_mismatch, render_samples_sweep,
    render_zipf, zipf_workload_check, OpeMismatchRow, SamplesRow, ZipfRow,
};
pub use estimators::{estimator_ablation, render_estimators, EstimatorRow};
pub use exploration::{
    exploration_coverage, render_coverage, render_staleness, staleness_sweep, CoverageRow,
    StalenessRow,
};
pub use learners::{learner_ablation, render_learners, LearnerRow};
pub use sequences::{
    dr_pdis_comparison, lb_episodes, render_dr_pdis, render_trajectory, trajectory_variance,
    DrPdisRow,
};
pub use validation::{
    drift_tripwire, render_drift, render_simultaneous, simultaneous_evaluation, DriftRow,
    SimultaneousEvalRow,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentConfig;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig {
            seed: 9,
            scale: 0.2,
        }
    }

    #[test]
    fn ips_and_dr_are_nearly_unbiased_dm_is_not_guaranteed() {
        let rows = estimator_ablation(&cfg());
        assert_eq!(rows.len(), 4);
        let by = |n: &str| rows.iter().find(|r| r.estimator == n).unwrap();
        let ips_r = by("ips");
        let dr = by("doubly-robust");
        let snips_r = by("snips");
        assert!(ips_r.bias.abs() < 0.02, "ips bias {}", ips_r.bias);
        assert!(dr.bias.abs() < 0.02, "dr bias {}", dr.bias);
        assert!(snips_r.bias.abs() < 0.03);
        // DR should not be more variable than IPS (it has a baseline).
        assert!(dr.std_dev <= ips_r.std_dev * 1.1);
    }

    #[test]
    fn trajectory_match_fraction_collapses() {
        let profile = trajectory_variance(&cfg(), 12);
        assert_eq!(profile.len(), 12);
        assert!(profile[0].match_fraction > 0.3);
        assert!(profile[11].match_fraction < 0.01);
        assert!(profile[11].effective_sample_size < profile[0].effective_sample_size / 10.0);
    }

    #[test]
    fn episode_weights_create_long_runs() {
        let rows = exploration_coverage(&cfg());
        let uniform = &rows[0];
        let episodic = &rows[1];
        // Length-20 runs: essentially never under per-request uniform,
        // plentiful under episode-randomized weights.
        let u20 = uniform
            .runs_per_10k
            .iter()
            .find(|(l, _)| *l == 20)
            .unwrap()
            .1;
        let e20 = episodic
            .runs_per_10k
            .iter()
            .find(|(l, _)| *l == 20)
            .unwrap()
            .1;
        assert!(e20 > 10.0 * (u20 + 0.1), "episodic {e20} vs uniform {u20}");
    }

    #[test]
    fn dr_pdis_cuts_variance_on_lb_episodes() {
        let rows = dr_pdis_comparison(&cfg(), &[2, 4, 6]);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            // DR must not be more variable, and at longer horizons it must
            // be clearly better.
            assert!(
                r.dr_pdis.1 <= r.pdis.1 * 1.05,
                "horizon {}: dr se {} vs pdis se {}",
                r.horizon,
                r.dr_pdis.1,
                r.pdis.1
            );
        }
        let last = rows.last().unwrap();
        assert!(
            last.dr_pdis.1 < 0.9 * last.pdis.1,
            "at horizon {} dr se {} should clearly beat pdis se {}",
            last.horizon,
            last.dr_pdis.1,
            last.pdis.1
        );
    }

    #[test]
    fn staleness_degrades_least_loaded_more_than_cb() {
        let rows = staleness_sweep(&cfg(), &[0.0, 2.0]);
        let fresh = &rows[0];
        let stale = &rows[1];
        // Least-loaded suffers from herding on stale counts.
        assert!(
            stale.least_loaded_s > fresh.least_loaded_s + 0.02,
            "ll fresh {} stale {}",
            fresh.least_loaded_s,
            stale.least_loaded_s
        );
        // The CB policy leans on per-server/class priors, so its absolute
        // degradation is smaller.
        let cb_delta = stale.cb_policy_s - fresh.cb_policy_s;
        let ll_delta = stale.least_loaded_s - fresh.least_loaded_s;
        assert!(
            cb_delta < ll_delta,
            "cb delta {cb_delta} vs ll delta {ll_delta}"
        );
        // Random is unaffected (control).
        assert!((stale.random_s - fresh.random_s).abs() < 0.02);
    }

    #[test]
    fn eq1_bound_holds_empirically_over_a_policy_class() {
        let rows = simultaneous_evaluation(&cfg(), 100, &[1_000, 4_000]);
        for r in &rows {
            assert!(
                r.max_abs_error < r.eq1_radius,
                "N={}: worst error {} exceeds Eq.1 radius {}",
                r.n,
                r.max_abs_error,
                r.eq1_radius
            );
        }
        // Error shrinks with N.
        assert!(rows[1].max_abs_error < rows[0].max_abs_error);
    }

    #[test]
    fn drift_tripwire_flags_send_to_one_only() {
        let rows = drift_tripwire(&cfg());
        let by = |n: &str| rows.iter().find(|r| r.policy.starts_with(n)).unwrap();
        assert!(!by("random").suspected, "control must not trip: {rows:?}");
        assert!(by("send-to-1").suspected, "send-to-1 must trip: {rows:?}");
        assert!(
            by("send-to-1").max_effect_size > by("random").max_effect_size * 3.0,
            "{rows:?}"
        );
    }

    #[test]
    fn all_learners_beat_the_default_and_trail_the_skyline() {
        let rows = learner_ablation(&ExperimentConfig {
            seed: 9,
            scale: 0.4,
        });
        let by = |n: &str| rows.iter().find(|r| r.learner.starts_with(n)).unwrap();
        let default = by("default").test_value;
        let skyline = by("supervised").test_value;
        for name in ["regression", "ips-policy", "epoch-greedy"] {
            let r = by(name);
            assert!(
                r.test_value > default,
                "{name} must beat the default: {rows:?}"
            );
            assert!(
                r.test_value <= skyline + 1e-9,
                "{name} cannot beat full feedback: {rows:?}"
            );
        }
        // The regression learner is the strongest of the partial-feedback
        // learners in this setting (matching the paper's choice).
        assert!(by("regression").remaining_gap < 0.25, "{rows:?}");
    }
}

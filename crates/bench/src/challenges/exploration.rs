//! Exploration coverage and context staleness (§5).

use harvest_sim_lb::policy::{EpisodeWeightedRouting, RandomRouting, RoutingPolicy};
use harvest_sim_lb::sim::{run_simulation, SimConfig};
use harvest_sim_lb::ClusterConfig;

use crate::ExperimentConfig;

/// Coverage of sustained single-server runs under an exploration scheme.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CoverageRow {
    /// Exploration policy name.
    pub policy: String,
    /// Number of length-≥`run_len` all-one-server runs observed per 10k
    /// requests, for each probed run length.
    pub runs_per_10k: Vec<(usize, f64)>,
}

/// Compares per-request uniform randomization against episode-randomized
/// weights (paper §5's proposal) on sustained-sequence coverage.
pub fn exploration_coverage(cfg: &ExperimentConfig) -> Vec<CoverageRow> {
    let sim_cfg = SimConfig::table2(ClusterConfig::fig5(), cfg.scaled(60_000, 10_000), cfg.seed);
    let probes = [5usize, 10, 20];
    let mut rows = Vec::new();
    let mut uniform = RandomRouting;
    let mut episodic = EpisodeWeightedRouting::new(200, 0.3);
    let policies: [(&str, &mut dyn RoutingPolicy); 2] = [
        ("uniform-random", &mut uniform),
        ("episode-weighted", &mut episodic),
    ];
    for (name, policy) in policies {
        let run = run_simulation(&sim_cfg, policy);
        let servers: Vec<usize> = run.measured_requests().iter().map(|r| r.server).collect();
        let per_10k = 10_000.0 / servers.len() as f64;
        let runs_per_10k = probes
            .iter()
            .map(|&len| {
                let mut count = 0usize;
                let mut current = 0usize;
                let mut last = usize::MAX;
                for &s in &servers {
                    if s == last {
                        current += 1;
                    } else {
                        current = 1;
                        last = s;
                    }
                    if current == len {
                        count += 1; // counts each run once, when it reaches `len`
                    }
                }
                (len, count as f64 * per_10k)
            })
            .collect();
        rows.push(CoverageRow {
            policy: name.to_string(),
            runs_per_10k,
        });
    }
    rows
}

/// Renders the coverage comparison.
pub fn render_coverage(rows: &[CoverageRow]) -> String {
    let mut out =
        String::from("Exploration coverage: sustained same-server runs per 10k requests\n");
    out.push_str(&format!("{:<18}", "Policy"));
    for (len, _) in &rows[0].runs_per_10k {
        out.push_str(&format!(" {:>12}", format!("len>={len}")));
    }
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:<18}", r.policy));
        for (_, count) in &r.runs_per_10k {
            out.push_str(&format!(" {:>12.2}", count));
        }
        out.push('\n');
    }
    out
}

/// One row of the staleness sweep.
#[derive(Debug, Clone, serde::Serialize)]
pub struct StalenessRow {
    /// Context refresh period, seconds (0 = live).
    pub staleness_s: f64,
    /// Least-loaded online mean latency.
    pub least_loaded_s: f64,
    /// CB-policy online mean latency (model trained on live-context
    /// exploration, deployed against stale contexts).
    pub cb_policy_s: f64,
    /// Random routing (context-free control).
    pub random_s: f64,
}

/// Sweeps context staleness (paper §5: distributed state "will inevitably
/// result in stale or incomplete contexts. We suspect that CB algorithms
/// can naturally tolerate staleness").
pub fn staleness_sweep(cfg: &ExperimentConfig, periods_s: &[f64]) -> Vec<StalenessRow> {
    use harvest_sim_lb::policy::{CbRouting, LeastLoadedRouting};
    use harvest_sim_net::SimDuration;

    let requests = cfg.scaled(40_000, 8_000);
    let base = SimConfig::table2(ClusterConfig::fig5(), requests, cfg.seed);
    // Train the CB model once, on live-context exploration data.
    let explore = run_simulation(&base, &mut RandomRouting);
    let scorer = explore.fit_cb_scorer(1e-3).expect("model fits");

    periods_s
        .iter()
        .map(|&s| {
            let sim_cfg = base.clone().with_staleness(SimDuration::from_secs_f64(s));
            StalenessRow {
                staleness_s: s,
                least_loaded_s: run_simulation(&sim_cfg, &mut LeastLoadedRouting).mean_latency_s,
                cb_policy_s: run_simulation(&sim_cfg, &mut CbRouting::greedy(scorer.clone()))
                    .mean_latency_s,
                random_s: run_simulation(&sim_cfg, &mut RandomRouting).mean_latency_s,
            }
        })
        .collect()
}

/// Renders the staleness sweep.
pub fn render_staleness(rows: &[StalenessRow]) -> String {
    let mut out =
        String::from("Context staleness sweep: online mean latency vs context refresh period\n");
    out.push_str(&format!(
        "{:>12} {:>14} {:>12} {:>10}\n",
        "staleness", "least-loaded", "cb-policy", "random"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>11.1}s {:>13.3}s {:>11.3}s {:>9.3}s\n",
            r.staleness_s, r.least_loaded_s, r.cb_policy_s, r.random_s
        ));
    }
    out
}

//! Criterion bench for decision throughput: one shard vs many.
//!
//! Worker threads hammer a [`DecisionEngine`] under a greedy incumbent
//! (the realistic hot path: one atomic generation check, a scorer pass, one
//! or two RNG draws, one record enqueue). With a single shard every thread
//! serializes on the same lock; with one shard per thread each lock is
//! effectively private. Sharding wins in both worlds: on multi-core
//! hardware the shards genuinely run in parallel, and even on a single
//! core the uncontended locks skip the futex sleep/wake churn that a
//! contended shard pays on every decision.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use harvest_core::scorer::LinearScorer;
use harvest_core::SimpleContext;
use harvest_log::segment::SegmentConfig;
use harvest_serve::supervisor::{
    spawn_supervised_writer, SupervisorConfig, WriterSupervisorHandle,
};
use harvest_serve::{
    Backpressure, DecisionEngine, EngineConfig, LoggerConfig, ObsConfig, PolicyRegistry,
    ServeMetrics, ServeObs, ServePolicy,
};

const THREADS: usize = 8;
const DECISIONS_PER_THREAD: usize = 4_000;
const ACTIONS: usize = 8;
const FEATURES: usize = 32;

fn engine(shards: usize, traced: bool) -> (DecisionEngine, WriterSupervisorHandle<std::io::Sink>) {
    // Tracing on/off is the bench axis: the traced variant pays the tracer
    // insert plus one histogram record per decision, and the delta between
    // the two variants is the whole observability overhead on the hot path.
    let metrics = if traced {
        Arc::new(ServeMetrics::with_obs(Arc::new(ServeObs::new(
            &ObsConfig::default(),
        ))))
    } else {
        Arc::new(ServeMetrics::new())
    };
    // A realistically-sized model: 8 actions × 32 shared features. The
    // scorer pass runs under the shard lock, so this is the contended work.
    let scorer = LinearScorer::PerAction {
        weights: (0..ACTIONS)
            .map(|a| {
                (0..FEATURES + 1)
                    .map(|f| ((a * 31 + f * 7) % 13) as f64 * 0.1 - 0.6)
                    .collect()
            })
            .collect(),
    };
    let registry = Arc::new(PolicyRegistry::new(
        ServePolicy::Greedy(scorer),
        "bench-greedy",
    ));
    // DropNewest: under saturation the hot path pays a failed try_send and
    // a counter bump, never a stall on the writer thread.
    let cfg = LoggerConfig {
        capacity: 4096,
        backpressure: Backpressure::DropNewest,
        segment: SegmentConfig::default(),
    };
    let (logger, writer) = spawn_supervised_writer(
        cfg,
        SupervisorConfig::default(),
        Arc::clone(&metrics),
        None,
        std::io::sink(),
    );
    let engine = DecisionEngine::new(
        &EngineConfig {
            shards,
            epsilon: 0.1,
            master_seed: 42,
            component: "bench".to_string(),
        },
        registry,
        metrics,
        logger,
    );
    (engine, writer)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_throughput");
    g.sample_size(40);
    for (shards, traced) in [
        (1usize, false),
        (1usize, true),
        (THREADS, false),
        (THREADS, true),
    ] {
        let (engine, _writer) = engine(shards, traced);
        let ctx = SimpleContext::new(
            (0..FEATURES).map(|f| (f as f64 * 0.37).sin()).collect(),
            ACTIONS,
        );
        let tracing = if traced { "tracing_on" } else { "tracing_off" };
        g.bench_function(&format!("{THREADS}threads_{shards}shards_{tracing}"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..THREADS {
                        let engine = &engine;
                        let ctx = &ctx;
                        s.spawn(move || {
                            let shard = t % shards;
                            for i in 0..DECISIONS_PER_THREAD {
                                black_box(engine.decide(shard, i as u64, ctx).unwrap());
                            }
                        });
                    }
                });
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

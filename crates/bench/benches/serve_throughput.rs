//! Criterion bench for decision throughput: one shard vs many, single
//! calls vs batches.
//!
//! Worker threads hammer a [`DecisionEngine`] under a greedy incumbent
//! (the realistic hot path: one atomic generation check, a scorer pass, one
//! or two RNG draws, one record enqueue). With a single shard every thread
//! serializes on the same lock; with one shard per thread each lock is
//! effectively private. Sharding wins in both worlds: on multi-core
//! hardware the shards genuinely run in parallel, and even on a single
//! core the uncontended locks skip the futex sleep/wake churn that a
//! contended shard pays on every decision.
//!
//! The batch axis measures what `decide_batch` amortizes: batch 1 is the
//! degenerate case (batch framing overhead with no amortization), batch 16
//! pays the lock/sequence/queue-admission/log-frame cost once per 16
//! decisions, batch 256 almost never. That group serves the uniform
//! bootstrap incumbent and carries its own single-call baseline (see
//! [`bench_batch`]); the acceptance floor is batch 256 on 8 shards at
//! ≥ 2× that baseline's decisions/sec.

use std::sync::Arc;

use criterion::{black_box, criterion_group, Criterion};
use harvest_bench::bench_json::{merge_section, AxisResult};
use harvest_core::scorer::LinearScorer;
use harvest_core::SimpleContext;
use harvest_serve::supervisor::{
    spawn_supervised_writer, SupervisorConfig, WriterSupervisorHandle,
};
use harvest_serve::{
    Backpressure, DecisionBatch, DecisionEngine, EngineConfig, Histogram, LoggerConfig, ObsConfig,
    PolicyRegistry, ServeMetrics, ServeObs, ServePolicy,
};

const THREADS: usize = 8;
const DECISIONS_PER_THREAD: usize = 4_000;
// Divisible by every batch size so every batch-axis entry serves the same
// total decision count (ns/iter comparisons are then decisions/sec
// comparisons directly).
const BATCH_DECISIONS_PER_THREAD: usize = 4_096;
const ACTIONS: usize = 8;
const FEATURES: usize = 32;

fn make_engine(
    shards: usize,
    traced: bool,
    policy: ServePolicy,
) -> (DecisionEngine, WriterSupervisorHandle<std::io::Sink>) {
    // Tracing on/off is the bench axis: the traced variant pays the tracer
    // insert plus one histogram record per decision, and the delta between
    // the two variants is the whole observability overhead on the hot path.
    let metrics = if traced {
        Arc::new(ServeMetrics::with_obs(Arc::new(ServeObs::new(
            &ObsConfig::default(),
        ))))
    } else {
        Arc::new(ServeMetrics::new())
    };
    let registry = Arc::new(PolicyRegistry::new(policy, "bench-policy"));
    // DropNewest: under saturation the hot path pays a failed try_send and
    // a counter bump, never a stall on the writer thread.
    let cfg = LoggerConfig::builder()
        .capacity(4096)
        .backpressure(Backpressure::DropNewest)
        .build();
    let (logger, writer) = spawn_supervised_writer(
        cfg,
        SupervisorConfig::default(),
        Arc::clone(&metrics),
        None,
        std::io::sink(),
    );
    let engine_cfg = EngineConfig::builder()
        .shards(shards)
        .epsilon(0.1)
        .master_seed(42)
        .component("bench")
        .build()
        .expect("valid bench config");
    let engine = DecisionEngine::new(&engine_cfg, registry, metrics, logger);
    (engine, writer)
}

/// A realistically-sized model: 8 actions × 32 shared features. The scorer
/// pass runs under the shard lock, so this is the contended work.
fn greedy_policy() -> ServePolicy {
    ServePolicy::Greedy(LinearScorer::PerAction {
        weights: (0..ACTIONS)
            .map(|a| {
                (0..FEATURES + 1)
                    .map(|f| ((a * 31 + f * 7) % 13) as f64 * 0.1 - 0.6)
                    .collect()
            })
            .collect(),
    })
}

fn bench_context() -> SimpleContext {
    SimpleContext::new(
        (0..FEATURES).map(|f| (f as f64 * 0.37).sin()).collect(),
        ACTIONS,
    )
}

fn bench_single(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_throughput");
    g.sample_size(40);
    for (shards, traced) in [
        (1usize, false),
        (1usize, true),
        (THREADS, false),
        (THREADS, true),
    ] {
        let (engine, _writer) = make_engine(shards, traced, greedy_policy());
        let ctx = bench_context();
        let tracing = if traced { "tracing_on" } else { "tracing_off" };
        g.bench_function(&format!("{THREADS}threads_{shards}shards_{tracing}"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..THREADS {
                        let engine = &engine;
                        let ctx = &ctx;
                        s.spawn(move || {
                            let shard = t % shards;
                            for i in 0..DECISIONS_PER_THREAD {
                                black_box(engine.decide(shard, i as u64, ctx).unwrap());
                            }
                        });
                    }
                });
            })
        });
    }
    g.finish();
}

/// The batch axis: single calls vs batch size {1, 16, 256}, on {1, 8}
/// shards. This group runs the **uniform bootstrap incumbent** (the
/// generation-0 policy every deployment serves before its first trained
/// model promotes), so the per-decision work under the lock is one RNG
/// draw — the workload where the fixed per-call costs that `decide_batch`
/// amortizes (lock acquire, id reservation, queue admission, ledger
/// update, log-frame build) *are* the cost being measured, instead of
/// being masked by a scorer pass that batching cannot amortize. The
/// `single` entry is the baseline for the acceptance floor: batch 256 on
/// 8 shards must beat it by ≥ 2× decisions/sec. Batch 1 isolates the
/// framing overhead (it pays the batch bookkeeping with no amortization).
///
/// Every entry serves THREADS × BATCH_DECISIONS_PER_THREAD decisions per
/// iteration, so reported iteration times compare directly as
/// decisions/sec across the whole group.
fn bench_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_throughput_batched");
    g.sample_size(40);
    for shards in [1usize, THREADS] {
        let (engine, _writer) = make_engine(shards, false, ServePolicy::Uniform);
        let ctx = bench_context();
        g.bench_function(&format!("{THREADS}threads_{shards}shards_single"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..THREADS {
                        let engine = &engine;
                        let ctx = &ctx;
                        s.spawn(move || {
                            let shard = t % shards;
                            for i in 0..BATCH_DECISIONS_PER_THREAD {
                                black_box(engine.decide(shard, i as u64, ctx).unwrap());
                            }
                        });
                    }
                });
            })
        });
        for batch_size in [1usize, 16, 256] {
            let (engine, _writer) = make_engine(shards, false, ServePolicy::Uniform);
            let contexts: Vec<SimpleContext> = (0..batch_size).map(|_| bench_context()).collect();
            g.bench_function(
                &format!("{THREADS}threads_{shards}shards_batch{batch_size}"),
                |b| {
                    b.iter(|| {
                        std::thread::scope(|s| {
                            for t in 0..THREADS {
                                let engine = &engine;
                                let contexts = &contexts;
                                s.spawn(move || {
                                    let shard = t % shards;
                                    let mut out = DecisionBatch::with_capacity(batch_size);
                                    for i in 0..BATCH_DECISIONS_PER_THREAD / batch_size {
                                        engine
                                            .decide_batch(shard, i as u64, contexts, &mut out)
                                            .unwrap();
                                        black_box(out.len());
                                    }
                                });
                            }
                        });
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_single, bench_batch);

const JSON_DECISIONS_PER_THREAD: usize = 4_096;

/// One measured pass per axis for the machine-readable report: every
/// thread records its per-call wall latency into a [`Histogram`], and the
/// axis rolls up into decisions/sec + p50/p99 in `BENCH_serve.json`.
/// Separate from the criterion samples so the report pass's per-call
/// `Instant` reads never skew the timed comparisons above.
fn json_axis<F>(axes: &mut Vec<AxisResult>, name: String, decisions: u64, run: F)
where
    F: Fn(usize, &mut Histogram) + Sync,
{
    let start = std::time::Instant::now();
    let hists: Vec<Histogram> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let run = &run;
                s.spawn(move || {
                    let mut h = Histogram::new();
                    run(t, &mut h);
                    h
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench thread"))
            .collect()
    });
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let mut merged = Histogram::new();
    for h in &hists {
        merged.merge(h);
    }
    axes.push(AxisResult::from_run(name, decisions, elapsed_ns, &merged));
}

/// Regenerates the `serve_throughput` section of `BENCH_serve.json`: the
/// same axes as the criterion groups (shards × tracing for single calls,
/// shards × batch size for the batched path), one measured pass each.
fn write_json_report() -> std::io::Result<()> {
    let mut axes = Vec::new();
    for (shards, traced) in [
        (1usize, false),
        (1usize, true),
        (THREADS, false),
        (THREADS, true),
    ] {
        let (engine, _writer) = make_engine(shards, traced, greedy_policy());
        let ctx = bench_context();
        let tracing = if traced { "tracing_on" } else { "tracing_off" };
        json_axis(
            &mut axes,
            format!("{THREADS}threads_{shards}shards_{tracing}"),
            (THREADS * JSON_DECISIONS_PER_THREAD) as u64,
            |t, h| {
                let shard = t % shards;
                for i in 0..JSON_DECISIONS_PER_THREAD {
                    let t0 = std::time::Instant::now();
                    black_box(engine.decide(shard, i as u64, &ctx).unwrap());
                    h.record(t0.elapsed().as_nanos() as u64);
                }
            },
        );
    }
    for shards in [1usize, THREADS] {
        for batch_size in [1usize, 16, 256] {
            let (engine, _writer) = make_engine(shards, false, ServePolicy::Uniform);
            let contexts: Vec<SimpleContext> = (0..batch_size).map(|_| bench_context()).collect();
            json_axis(
                &mut axes,
                format!("{THREADS}threads_{shards}shards_batch{batch_size}"),
                (THREADS * (JSON_DECISIONS_PER_THREAD / batch_size) * batch_size) as u64,
                |t, h| {
                    let shard = t % shards;
                    let mut out = DecisionBatch::with_capacity(batch_size);
                    for i in 0..JSON_DECISIONS_PER_THREAD / batch_size {
                        let t0 = std::time::Instant::now();
                        engine
                            .decide_batch(shard, i as u64, &contexts, &mut out)
                            .unwrap();
                        black_box(out.len());
                        h.record(t0.elapsed().as_nanos() as u64);
                    }
                },
            );
        }
    }
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_serve.json"
    ));
    merge_section(path, "serve_throughput", &axes)?;
    eprintln!(
        "wrote serve_throughput section ({} axes) to {}",
        axes.len(),
        path.display()
    );
    Ok(())
}

fn main() {
    benches();
    write_json_report().expect("write BENCH_serve.json");
}

//! Criterion bench for decision throughput: one shard vs many, single
//! calls vs batches.
//!
//! Worker threads hammer a [`DecisionEngine`] under a greedy incumbent
//! (the realistic hot path: one atomic generation check, a scorer pass, one
//! or two RNG draws, one record enqueue). With a single shard every thread
//! serializes on the same shard cell; with one shard per thread each cell
//! is effectively private and its acquire is one uncontended atomic swap.
//! The cross-shard axis rotates every thread across all shards so the cost
//! of violating affinity (cache-line bouncing, spin handoffs) stays
//! visible next to the affine number — the regression the pre-refactor
//! bench never measured.
//!
//! The batch axis measures what `decide_batch` amortizes: batch 1 is the
//! degenerate case (batch framing overhead with no amortization), batch 16
//! pays the cell-acquire/sequence/queue-admission/log-frame cost once per
//! 16 decisions, batch 256 almost never. That group serves the uniform
//! bootstrap incumbent and carries its own single-call baseline (see
//! [`bench_batch`]); the acceptance floor is batch 256 on 8 shards at
//! ≥ 2× that baseline's decisions/sec.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use criterion::{black_box, criterion_group, Criterion};
use harvest_bench::bench_json::{merge_section, AxisResult};
use harvest_core::scorer::LinearScorer;
use harvest_core::SimpleContext;
use harvest_log::segment::MemorySegments;
use harvest_serve::supervisor::{
    spawn_supervised_writer, SupervisorConfig, WriterSupervisorHandle,
};
use harvest_serve::{
    Backpressure, DecisionBatch, DecisionEngine, DecisionService, EngineConfig, Histogram,
    LoggerConfig, ObsConfig, PolicyRegistry, ServeConfig, ServeMetrics, ServeObs, ServePolicy,
};
use harvest_wire::{Duplex, OpsQuery, OpsResponse, WireConfig, WireCore};

const THREADS: usize = 8;
const DECISIONS_PER_THREAD: usize = 4_000;
// Divisible by every batch size so every batch-axis entry serves the same
// total decision count (ns/iter comparisons are then decisions/sec
// comparisons directly).
const BATCH_DECISIONS_PER_THREAD: usize = 4_096;
const ACTIONS: usize = 8;
const FEATURES: usize = 32;

fn make_engine(
    shards: usize,
    traced: bool,
    policy: ServePolicy,
) -> (DecisionEngine, WriterSupervisorHandle<std::io::Sink>) {
    // Tracing on/off is the bench axis: the traced variant pays the tracer
    // insert plus one histogram record per decision, and the delta between
    // the two variants is the whole observability overhead on the hot path.
    let metrics = if traced {
        Arc::new(ServeMetrics::with_obs(Arc::new(ServeObs::new(
            &ObsConfig::default(),
        ))))
    } else {
        Arc::new(ServeMetrics::new())
    };
    let registry = Arc::new(PolicyRegistry::new(policy, "bench-policy"));
    // DropNewest: under saturation the hot path pays a failed ring push and
    // a counter bump, never a stall on the writer thread. One SPSC ring per
    // shard so the bench exercises the same producer routing the service
    // wires up.
    let cfg = LoggerConfig::builder()
        .capacity(4096)
        .backpressure(Backpressure::DropNewest)
        .shard_rings(shards)
        .build();
    let (logger, writer) = spawn_supervised_writer(
        cfg,
        SupervisorConfig::default(),
        Arc::clone(&metrics),
        None,
        std::io::sink(),
    );
    let engine_cfg = EngineConfig::builder()
        .shards(shards)
        .epsilon(0.1)
        .master_seed(42)
        .component("bench")
        .build()
        .expect("valid bench config");
    let engine = DecisionEngine::new(&engine_cfg, registry, metrics, logger);
    (engine, writer)
}

/// A realistically-sized model: 8 actions × 32 shared features. The scorer
/// pass runs while the shard cell is held, so this is the contended work.
fn greedy_policy() -> ServePolicy {
    ServePolicy::Greedy(LinearScorer::PerAction {
        weights: (0..ACTIONS)
            .map(|a| {
                (0..FEATURES + 1)
                    .map(|f| ((a * 31 + f * 7) % 13) as f64 * 0.1 - 0.6)
                    .collect()
            })
            .collect(),
    })
}

fn bench_context() -> SimpleContext {
    SimpleContext::new(
        (0..FEATURES).map(|f| (f as f64 * 0.37).sin()).collect(),
        ACTIONS,
    )
}

fn bench_single(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_throughput");
    g.sample_size(40);
    for (shards, traced) in [
        (1usize, false),
        (1usize, true),
        (THREADS, false),
        (THREADS, true),
    ] {
        let (engine, _writer) = make_engine(shards, traced, greedy_policy());
        let ctx = bench_context();
        let tracing = if traced { "tracing_on" } else { "tracing_off" };
        g.bench_function(&format!("{THREADS}threads_{shards}shards_{tracing}"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..THREADS {
                        let engine = &engine;
                        let ctx = &ctx;
                        s.spawn(move || {
                            let shard = t % shards;
                            for i in 0..DECISIONS_PER_THREAD {
                                black_box(engine.decide(shard, i as u64, ctx).unwrap());
                            }
                        });
                    }
                });
            })
        });
    }
    g.finish();
}

/// The affinity axis: the same 8-thread/8-shard workload served affine
/// (each thread owns its shard — the deployment the engine is built for)
/// vs rotating every thread across all shards each call. The rotating
/// variant makes every cell acquire a contended cross-core handoff, so the
/// cost of violating shard affinity is a first-class bench number instead
/// of an accident smeared into the shard-count comparison (the pre-refactor
/// bench had no such axis, which is how an 8-shard slowdown shipped
/// unnoticed — see DESIGN.md).
fn bench_cross_shard(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_throughput_routing");
    g.sample_size(40);
    for affine in [true, false] {
        let (engine, _writer) = make_engine(THREADS, false, greedy_policy());
        let ctx = bench_context();
        let name = if affine { "affine" } else { "cross_shard" };
        g.bench_function(&format!("{THREADS}threads_{THREADS}shards_{name}"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..THREADS {
                        let engine = &engine;
                        let ctx = &ctx;
                        s.spawn(move || {
                            for i in 0..DECISIONS_PER_THREAD {
                                let shard = if affine { t } else { (t + i) % THREADS };
                                black_box(engine.decide(shard, i as u64, ctx).unwrap());
                            }
                        });
                    }
                });
            })
        });
    }
    g.finish();
}

/// The batch axis: single calls vs batch size {1, 16, 256}, on {1, 8}
/// shards. This group runs the **uniform bootstrap incumbent** (the
/// generation-0 policy every deployment serves before its first trained
/// model promotes), so the per-decision work under the lock is one RNG
/// draw — the workload where the fixed per-call costs that `decide_batch`
/// amortizes (cell acquire, id reservation, queue admission, ledger
/// update, log-frame build) *are* the cost being measured, instead of
/// being masked by a scorer pass that batching cannot amortize. The
/// `single` entry is the baseline for the acceptance floor: batch 256 on
/// 8 shards must beat it by ≥ 2× decisions/sec. Batch 1 isolates the
/// framing overhead (it pays the batch bookkeeping with no amortization).
///
/// Every entry serves THREADS × BATCH_DECISIONS_PER_THREAD decisions per
/// iteration, so reported iteration times compare directly as
/// decisions/sec across the whole group.
fn bench_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_throughput_batched");
    g.sample_size(40);
    for shards in [1usize, THREADS] {
        let (engine, _writer) = make_engine(shards, false, ServePolicy::Uniform);
        let ctx = bench_context();
        g.bench_function(&format!("{THREADS}threads_{shards}shards_single"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..THREADS {
                        let engine = &engine;
                        let ctx = &ctx;
                        s.spawn(move || {
                            let shard = t % shards;
                            for i in 0..BATCH_DECISIONS_PER_THREAD {
                                black_box(engine.decide(shard, i as u64, ctx).unwrap());
                            }
                        });
                    }
                });
            })
        });
        for batch_size in [1usize, 16, 256] {
            let (engine, _writer) = make_engine(shards, false, ServePolicy::Uniform);
            let contexts: Vec<SimpleContext> = (0..batch_size).map(|_| bench_context()).collect();
            g.bench_function(
                &format!("{THREADS}threads_{shards}shards_batch{batch_size}"),
                |b| {
                    b.iter(|| {
                        std::thread::scope(|s| {
                            for t in 0..THREADS {
                                let engine = &engine;
                                let contexts = &contexts;
                                s.spawn(move || {
                                    let shard = t % shards;
                                    let mut out = DecisionBatch::with_capacity(batch_size);
                                    for i in 0..BATCH_DECISIONS_PER_THREAD / batch_size {
                                        engine
                                            .decide_batch(shard, i as u64, contexts, &mut out)
                                            .unwrap();
                                        black_box(out.len());
                                    }
                                });
                            }
                        });
                    })
                },
            );
        }
    }
    g.finish();
}

/// The scrape axis: the batched hot path through the full
/// [`DecisionService`] with 0 vs 4 concurrent OPS scrapers hammering the
/// wire ops endpoint (full Prometheus render per scrape, through the
/// duplex frame codec). The delta between the two entries is the cost a
/// scrape storm levies on serving. Scrapes never touch a shard cell — they
/// read relaxed counters, the obs histograms, and the scope mutex — so on
/// a machine with spare cores the delta is lock/cache interference only;
/// on a core-starved host it also includes plain CPU sharing with the
/// spinning scrapers, which is the honest number for that deployment.
const SCRAPE_BATCH: usize = 16;
const SCRAPE_BATCHES_PER_THREAD: usize = JSON_DECISIONS_PER_THREAD / SCRAPE_BATCH;

fn make_scrape_rig() -> (
    Arc<DecisionService<MemorySegments>>,
    Arc<Duplex<MemorySegments>>,
) {
    // Same logging posture as `make_engine`: DropNewest with one ring per
    // shard, so the axis measures scrape interference, not writer-thread
    // backpressure stalls.
    let cfg = ServeConfig::builder()
        .shards(THREADS)
        .epsilon(0.1)
        .master_seed(42)
        .component("bench-scrape")
        .logger(
            LoggerConfig::builder()
                .capacity(4096)
                .backpressure(Backpressure::DropNewest)
                .shard_rings(THREADS)
                .build(),
        )
        .build()
        .expect("valid bench config");
    let svc = Arc::new(DecisionService::new(cfg, MemorySegments::new()));
    let core = Arc::new(WireCore::new(Arc::clone(&svc), WireConfig::default()));
    (svc, Duplex::new(core))
}

/// One pass: THREADS decide-batch threads (shard-affine) race to
/// completion while `scrapers` extra threads scrape the ops endpoint in a
/// closed loop until the hot path finishes. Returns wall time and the
/// merged per-batch latency histogram (decide threads only — scrapers are
/// load, not the measurement).
fn scrape_pass(
    svc: &Arc<DecisionService<MemorySegments>>,
    duplex: &Arc<Duplex<MemorySegments>>,
    contexts: &[SimpleContext],
    scrapers: usize,
) -> (u64, Histogram) {
    let done = AtomicUsize::new(0);
    let start = std::time::Instant::now();
    let hists: Vec<Histogram> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let svc = &*svc;
                let done = &done;
                s.spawn(move || {
                    let mut h = Histogram::new();
                    let mut out = DecisionBatch::with_capacity(SCRAPE_BATCH);
                    for i in 0..SCRAPE_BATCHES_PER_THREAD {
                        let t0 = std::time::Instant::now();
                        svc.decide_batch(t, i as u64, contexts, &mut out).unwrap();
                        black_box(out.len());
                        h.record(t0.elapsed().as_nanos() as u64);
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                    h
                })
            })
            .collect();
        for _ in 0..scrapers {
            let mut conn = duplex.connect();
            let done = &done;
            s.spawn(move || {
                while done.load(Ordering::SeqCst) < THREADS {
                    match conn.ops(&OpsQuery::Prometheus).expect("scrape") {
                        OpsResponse::Report { body } => {
                            black_box(body.len());
                        }
                        OpsResponse::Shed { .. } => {}
                    }
                }
            });
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("bench thread"))
            .collect()
    });
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let mut merged = Histogram::new();
    for h in &hists {
        merged.merge(h);
    }
    (elapsed_ns, merged)
}

fn bench_scrape_under_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_throughput_scrape");
    g.sample_size(20);
    for scrapers in [0usize, 4] {
        let (svc, duplex) = make_scrape_rig();
        let contexts: Vec<SimpleContext> = (0..SCRAPE_BATCH).map(|_| bench_context()).collect();
        g.bench_function(
            &format!("{THREADS}threads_{THREADS}shards_batch{SCRAPE_BATCH}_{scrapers}scrapers"),
            |b| {
                b.iter(|| {
                    black_box(scrape_pass(&svc, &duplex, &contexts, scrapers));
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_single,
    bench_cross_shard,
    bench_batch,
    bench_scrape_under_load
);

const JSON_DECISIONS_PER_THREAD: usize = 4_096;
/// Untimed passes before measurement: warm the allocator, fault in the
/// ring buffers, and let the branch predictors settle. One warmup pass was
/// enough to stop `tracing_on` occasionally "beating" `tracing_off` — the
/// first pass pays one-time costs (page faults, lazy thread-pool state)
/// that have nothing to do with the axis under test.
const WARMUP_RUNS: usize = 1;
/// Measured passes per axis. The reported throughput is the **median**
/// run (robust to a run eating a scheduler hiccup — the fastest batch
/// passes finish in under a millisecond, so a single 100µs preemption
/// swings one run by 20%); the latency percentiles come from the
/// histograms of *all* measured runs pooled, so tail samples aren't
/// discarded with the non-median runs.
const MEASURED_RUNS: usize = 5;

/// One timed pass: every thread records its per-call wall latency into a
/// [`Histogram`]; returns wall time and the merged per-thread histograms.
fn timed_pass<F>(threads: usize, run: &F) -> (u64, Histogram)
where
    F: Fn(usize, &mut Histogram) + Sync,
{
    let start = std::time::Instant::now();
    let hists: Vec<Histogram> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let mut h = Histogram::new();
                    run(t, &mut h);
                    h
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench thread"))
            .collect()
    });
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let mut merged = Histogram::new();
    for h in &hists {
        merged.merge(h);
    }
    (elapsed_ns, merged)
}

/// Warmup + multi-run measurement for the machine-readable report: the
/// axis rolls up into decisions/sec (median run) + pooled p50/p99 in
/// `BENCH_serve.json`. Separate from the criterion samples so the report
/// pass's per-call `Instant` reads never skew the timed comparisons above.
fn json_axis_on<F>(axes: &mut Vec<AxisResult>, name: String, threads: usize, decisions: u64, run: F)
where
    F: Fn(usize, &mut Histogram) + Sync,
{
    for _ in 0..WARMUP_RUNS {
        timed_pass(threads, &run);
    }
    let mut elapsed = Vec::with_capacity(MEASURED_RUNS);
    let mut pooled = Histogram::new();
    for _ in 0..MEASURED_RUNS {
        let (ns, hist) = timed_pass(threads, &run);
        elapsed.push(ns);
        pooled.merge(&hist);
    }
    elapsed.sort_unstable();
    let median_ns = elapsed[elapsed.len() / 2];
    axes.push(AxisResult::from_run(name, decisions, median_ns, &pooled));
}

fn json_axis<F>(axes: &mut Vec<AxisResult>, name: String, decisions: u64, run: F)
where
    F: Fn(usize, &mut Histogram) + Sync,
{
    json_axis_on(axes, name, THREADS, decisions, run);
}

/// Regenerates the `serve_throughput` section of `BENCH_serve.json`: the
/// same axes as the criterion groups (shards × tracing for single calls,
/// affine vs cross-shard routing, shards × batch size for the batched
/// path), plus an uncontended single-decision latency axis — warmup plus
/// three measured passes each (median throughput, pooled percentiles).
fn write_json_report() -> std::io::Result<()> {
    let mut axes = Vec::new();
    for (shards, traced) in [
        (1usize, false),
        (1usize, true),
        (THREADS, false),
        (THREADS, true),
    ] {
        let (engine, _writer) = make_engine(shards, traced, greedy_policy());
        let ctx = bench_context();
        let tracing = if traced { "tracing_on" } else { "tracing_off" };
        json_axis(
            &mut axes,
            format!("{THREADS}threads_{shards}shards_{tracing}"),
            (THREADS * JSON_DECISIONS_PER_THREAD) as u64,
            |t, h| {
                let shard = t % shards;
                for i in 0..JSON_DECISIONS_PER_THREAD {
                    let t0 = std::time::Instant::now();
                    black_box(engine.decide(shard, i as u64, &ctx).unwrap());
                    h.record(t0.elapsed().as_nanos() as u64);
                }
            },
        );
    }
    // Routing axis: affine (thread t owns shard t) vs rotating every call
    // across all shards. The delta is the price of violating affinity.
    for affine in [true, false] {
        let (engine, _writer) = make_engine(THREADS, false, greedy_policy());
        let ctx = bench_context();
        let name = if affine { "affine" } else { "cross_shard" };
        json_axis(
            &mut axes,
            format!("{THREADS}threads_{THREADS}shards_{name}"),
            (THREADS * JSON_DECISIONS_PER_THREAD) as u64,
            |t, h| {
                for i in 0..JSON_DECISIONS_PER_THREAD {
                    let shard = if affine { t } else { (t + i) % THREADS };
                    let t0 = std::time::Instant::now();
                    black_box(engine.decide(shard, i as u64, &ctx).unwrap());
                    h.record(t0.elapsed().as_nanos() as u64);
                }
            },
        );
    }
    // Single-decision latency: one thread, one shard, no contention — the
    // floor a caller sees per decide() when the hot path has the cell, the
    // policy slot, and the ring producer gate all to itself.
    {
        let (engine, _writer) = make_engine(1, false, greedy_policy());
        let ctx = bench_context();
        json_axis_on(
            &mut axes,
            "single_decision_latency".to_string(),
            1,
            JSON_DECISIONS_PER_THREAD as u64,
            |_, h| {
                for i in 0..JSON_DECISIONS_PER_THREAD {
                    let t0 = std::time::Instant::now();
                    black_box(engine.decide(0, i as u64, &ctx).unwrap());
                    h.record(t0.elapsed().as_nanos() as u64);
                }
            },
        );
    }
    for shards in [1usize, THREADS] {
        for batch_size in [1usize, 16, 256] {
            let (engine, _writer) = make_engine(shards, false, ServePolicy::Uniform);
            let contexts: Vec<SimpleContext> = (0..batch_size).map(|_| bench_context()).collect();
            json_axis(
                &mut axes,
                format!("{THREADS}threads_{shards}shards_batch{batch_size}"),
                (THREADS * (JSON_DECISIONS_PER_THREAD / batch_size) * batch_size) as u64,
                |t, h| {
                    let shard = t % shards;
                    let mut out = DecisionBatch::with_capacity(batch_size);
                    for i in 0..JSON_DECISIONS_PER_THREAD / batch_size {
                        let t0 = std::time::Instant::now();
                        engine
                            .decide_batch(shard, i as u64, &contexts, &mut out)
                            .unwrap();
                        black_box(out.len());
                        h.record(t0.elapsed().as_nanos() as u64);
                    }
                },
            );
        }
    }
    // Scrape-under-load: the batched hot path with 0 vs 4 concurrent OPS
    // scrapers. The throughput delta is the scrape tax on serving.
    for scrapers in [0usize, 4] {
        let (svc, duplex) = make_scrape_rig();
        let contexts: Vec<SimpleContext> = (0..SCRAPE_BATCH).map(|_| bench_context()).collect();
        for _ in 0..WARMUP_RUNS {
            scrape_pass(&svc, &duplex, &contexts, scrapers);
        }
        let mut elapsed = Vec::with_capacity(MEASURED_RUNS);
        let mut pooled = Histogram::new();
        for _ in 0..MEASURED_RUNS {
            let (ns, hist) = scrape_pass(&svc, &duplex, &contexts, scrapers);
            elapsed.push(ns);
            pooled.merge(&hist);
        }
        elapsed.sort_unstable();
        axes.push(AxisResult::from_run(
            format!("scrape_under_load_{scrapers}scrapers"),
            (THREADS * SCRAPE_BATCHES_PER_THREAD * SCRAPE_BATCH) as u64,
            elapsed[elapsed.len() / 2],
            &pooled,
        ));
    }
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_serve.json"
    ));
    merge_section(path, "serve_throughput", &axes)?;
    eprintln!(
        "wrote serve_throughput section ({} axes) to {}",
        axes.len(),
        path.display()
    );
    Ok(())
}

fn main() {
    benches();
    write_json_report().expect("write BENCH_serve.json");
}

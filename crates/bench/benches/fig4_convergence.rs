//! Criterion bench for the Fig 4 CB-training learning curve.

use criterion::{criterion_group, criterion_main, Criterion};
use harvest_bench::{fig4, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        seed: 1,
        scale: 0.2,
    };
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("learning_curve", |b| b.iter(|| fig4::run(&cfg)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

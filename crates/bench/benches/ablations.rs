//! Criterion bench for the §5 challenge demonstrations and ablations.

use criterion::{criterion_group, criterion_main, Criterion};
use harvest_bench::{challenges, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        seed: 1,
        scale: 0.1,
    };
    let mut g = c.benchmark_group("challenges");
    g.sample_size(10);
    g.bench_function("estimator_ablation", |b| {
        b.iter(|| challenges::estimator_ablation(&cfg))
    });
    g.bench_function("trajectory_variance", |b| {
        b.iter(|| challenges::trajectory_variance(&cfg, 12))
    });
    g.bench_function("exploration_coverage", |b| {
        b.iter(|| challenges::exploration_coverage(&cfg))
    });
    g.bench_function("dr_pdis_comparison", |b| {
        b.iter(|| challenges::dr_pdis_comparison(&cfg, &[2, 6]))
    });
    g.bench_function("staleness_sweep", |b| {
        b.iter(|| challenges::staleness_sweep(&cfg, &[0.0, 2.0]))
    });
    g.bench_function("simultaneous_evaluation", |b| {
        b.iter(|| challenges::simultaneous_evaluation(&cfg, 100, &[1_000]))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for the Table 2 load-balancing experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use harvest_bench::{table2, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        seed: 1,
        scale: 0.1,
    };
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("ope_vs_online", |b| b.iter(|| table2::run(&cfg)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

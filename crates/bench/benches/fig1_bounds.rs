//! Criterion bench for the Fig 1 bound computations.

use criterion::{criterion_group, criterion_main, Criterion};
use harvest_bench::{fig1, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::fast();
    c.bench_function("fig1_series", |b| b.iter(|| fig1::run(&cfg)));
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for the Fig 3 off-policy-evaluation error sweep.
//!
//! Runs a shrunken version of the full experiment (fewer trials) so the
//! bench exercises every stage: dataset generation, policy training,
//! partial-information simulation, IPS estimation, percentile extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use harvest_bench::{fig3, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        seed: 1,
        scale: 0.05,
    };
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("ope_error_sweep", |b| b.iter(|| fig3::run(&cfg)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for the portfolio evaluator: candidate count k × worker
//! count, over one fixed crash-safe segment log.
//!
//! The claim under test is Fig 1's economics made operational: scoring 128
//! candidate policies in the one-pass evaluator costs a small multiple of
//! scoring one, because the per-record work that dominates — segment
//! recovery, frame decode, the cross-segment outcome join — is shared
//! across the whole portfolio, and only the per-candidate accumulator fold
//! scales with k. The acceptance floor asserted by `repro --check` reads
//! from the `portfolio_eval` section this bench writes into
//! `BENCH_serve.json`: k=128 must finish in under 4× the k=1 wall time at
//! 8 workers.

use criterion::{black_box, criterion_group, Criterion};
use harvest_bench::bench_json::{merge_section, AxisResult};
use harvest_core::scorer::LinearScorer;
use harvest_estimators::{Candidate, EvaluatorConfig, GreedyScorerCandidate, PortfolioEvaluator};
use harvest_log::record::{DecisionRecord, LogRecord, OutcomeRecord};
use harvest_log::segment::{MemorySegments, SegmentConfig, SegmentedLogWriter};
use harvest_serve::Histogram;

const REQUESTS: u64 = 6_000;
const ACTIONS: usize = 2;
const KS: [usize; 3] = [1, 16, 128];
const WORKERS: [usize; 2] = [1, 8];
const WARMUP_RUNS: usize = 1;
const MEASURED_RUNS: usize = 5;

/// The fixed workload every axis scores: a deterministic crossing-reward
/// log where half the rewards resolve through trailing outcome records, so
/// recovery, decode, and the cross-segment join are all on the timed path.
fn build_segments() -> Vec<Vec<u8>> {
    let mut w = SegmentedLogWriter::new(
        MemorySegments::new(),
        SegmentConfig {
            max_records: 256,
            max_bytes: usize::MAX,
            max_span_ns: u64::MAX,
        },
    );
    let mut pending: Vec<(u64, f64)> = Vec::new();
    for i in 0..REQUESTS {
        let x = ((i as f64) * 0.618_033_988_749_895).fract();
        let action = (i % 3 == 0) as usize;
        let reward = if action == 0 { x } else { 1.0 - x };
        let deferred = i % 2 == 1;
        w.write(&LogRecord::Decision(DecisionRecord {
            request_id: i,
            timestamp_ns: i * 1_000,
            component: "bench-portfolio".to_string(),
            shared_features: vec![x],
            action_features: None,
            num_actions: ACTIONS,
            action,
            propensity: Some(if action == 0 { 0.7 } else { 0.3 }),
            reward: (!deferred).then_some(reward),
        }))
        .unwrap();
        if deferred {
            pending.push((i, reward));
        }
        if pending.len() >= 64 {
            for (rid, r) in pending.drain(..) {
                w.write(&LogRecord::Outcome(OutcomeRecord {
                    request_id: rid,
                    timestamp_ns: rid * 1_000 + 500,
                    reward: r,
                }))
                .unwrap();
            }
        }
    }
    for (rid, r) in pending.drain(..) {
        w.write(&LogRecord::Outcome(OutcomeRecord {
            request_id: rid,
            timestamp_ns: rid * 1_000 + 500,
            reward: r,
        }))
        .unwrap();
    }
    w.into_sink().unwrap().snapshot()
}

/// k distinct threshold candidates plus a shared DR reward model.
fn evaluator(k: usize, parallelism: usize) -> PortfolioEvaluator {
    PortfolioEvaluator::builder()
        .config(
            EvaluatorConfig::builder()
                .clip(10.0)
                .delta(0.05)
                .parallelism(parallelism)
                .build(),
        )
        .candidates((0..k).map(|j| {
            let theta = 0.1 + 0.8 * (j as f64 + 0.5) / k as f64;
            Candidate::new(
                format!("cand-{j:03}"),
                GreedyScorerCandidate::new(
                    LinearScorer::PerAction {
                        weights: vec![vec![1.0, 0.0], vec![-1.0, 2.0 * theta]],
                    },
                    0.1,
                ),
            )
        }))
        .model(LinearScorer::PerAction {
            weights: vec![vec![1.0, 0.0], vec![-1.0, 1.0]],
        })
        .build()
        .unwrap()
}

fn bench_portfolio(c: &mut Criterion) {
    let segments = build_segments();
    let mut g = c.benchmark_group("portfolio_eval");
    g.sample_size(10);
    for &workers in &WORKERS {
        for &k in &KS {
            let ev = evaluator(k, workers);
            g.bench_function(&format!("k{k}_{workers}workers"), |b| {
                b.iter(|| {
                    let (report, _) = ev.evaluate_segments(&segments);
                    black_box(report.entries.len());
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_portfolio);

/// Regenerates the `portfolio_eval` section of `BENCH_serve.json`: one axis
/// per (k, workers) cell — median wall time of five runs, one pass each —
/// with candidate-evaluations/sec as the throughput figure. Also prints the
/// k=128 / k=1 wall-time ratio at 8 workers, the ISSUE's acceptance
/// headline (< 4× means the shared pass dominates, as designed).
fn write_json_report() -> std::io::Result<()> {
    let segments = build_segments();
    let mut axes = Vec::new();
    let mut median_ns = std::collections::BTreeMap::new();
    for &workers in &WORKERS {
        for &k in &KS {
            let ev = evaluator(k, workers);
            for _ in 0..WARMUP_RUNS {
                black_box(ev.evaluate_segments(&segments).0.n);
            }
            let mut elapsed = Vec::with_capacity(MEASURED_RUNS);
            let mut pooled = Histogram::new();
            let mut joined = 0usize;
            for _ in 0..MEASURED_RUNS {
                let t0 = std::time::Instant::now();
                let (report, _) = ev.evaluate_segments(&segments);
                let ns = t0.elapsed().as_nanos() as u64;
                joined = report.n;
                elapsed.push(ns);
                pooled.record(ns);
            }
            elapsed.sort_unstable();
            let median = elapsed[elapsed.len() / 2];
            median_ns.insert((k, workers), median);
            axes.push(AxisResult::from_run(
                format!("k{k}_{workers}workers"),
                (joined * k) as u64,
                median,
                &pooled,
            ));
        }
    }
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_serve.json"
    ));
    merge_section(path, "portfolio_eval", &axes)?;
    let ratio = median_ns[&(128, 8)] as f64 / median_ns[&(1, 8)] as f64;
    eprintln!(
        "wrote portfolio_eval section ({} axes) to {}",
        axes.len(),
        path.display()
    );
    eprintln!(
        "portfolio amortization: k=128 / k=1 wall time at 8 workers = {ratio:.2}x (target < 4x)"
    );
    Ok(())
}

fn main() {
    benches();
    write_json_report().expect("write BENCH_serve.json");
}

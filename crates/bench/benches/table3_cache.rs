//! Criterion bench for the Table 3 cache-eviction experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use harvest_bench::{table3, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        seed: 1,
        scale: 0.2,
    };
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("eviction_policies", |b| b.iter(|| table3::run(&cfg)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for the Fig 5 latency model and Fig 6 hierarchy runs.

use criterion::{criterion_group, criterion_main, Criterion};
use harvest_bench::{fig5, fig6, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        seed: 1,
        scale: 0.1,
    };
    let mut g = c.benchmark_group("topology");
    g.sample_size(10);
    g.bench_function("fig5_latency_model", |b| b.iter(|| fig5::run(&cfg)));
    g.bench_function("fig6_hierarchy", |b| b.iter(|| fig6::run(&cfg)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for the Fig 2 accuracy curves.

use criterion::{criterion_group, criterion_main, Criterion};
use harvest_bench::{fig2, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::fast();
    c.bench_function("fig2_curves", |b| b.iter(|| fig2::run(&cfg)));
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Closed-loop wire throughput: N client connections hammering the TCP
//! front-end over loopback.
//!
//! Each connection is one client thread running a closed loop — send one
//! request, wait for its response, repeat — so the measured number is the
//! end-to-end serve rate through the full stack: frame encode, socket,
//! reader decode, admission door, shard-affine worker, serve, response
//! frame, client decode. The axes are connection count × request shape
//! (single `Decide` vs `DecideBatch` of 16, which amortizes framing and
//! queue hops exactly like `decide_batch` amortizes the shard lock).
//!
//! Connections spread across shards (conn *i* targets shard *i* mod
//! shards), so with multiple connections the shard-affine worker pool
//! genuinely runs in parallel. Admission is configured wide open (no rate
//! limit, deep pending budget): this bench measures throughput, not
//! shedding — `tests/wire_equivalence.rs` covers the overload behavior.
//!
//! Results are printed per axis and written to the `wire_throughput`
//! section of `BENCH_serve.json` (decisions/sec, p50/p99 per-call wall
//! latency). Pass `--test` for a quick smoke run.

use std::sync::Arc;
use std::time::Instant;

use harvest_bench::bench_json::{merge_section, AxisResult};
use harvest_core::SimpleContext;
use harvest_log::segment::MemorySegments;
use harvest_serve::{Backpressure, DecisionService, Histogram, LoggerConfig, ServeConfig};
use harvest_wire::{Connection, Request, Response, TcpServer, Transport, WireConfig, WireCore};

const SHARDS: usize = 4;
const WORKERS: usize = 4;
const ACTIONS: usize = 8;
const FEATURES: usize = 32;
const BATCH: usize = 16;

fn service(seed: u64) -> Arc<DecisionService<MemorySegments>> {
    let cfg = ServeConfig::builder()
        .shards(SHARDS)
        .epsilon(0.1)
        .master_seed(seed)
        .component("wire-bench")
        .logger(
            LoggerConfig::builder()
                .capacity(4096)
                // Under saturation the hot path pays a failed try_send and
                // a counter bump, never a stall on the writer thread.
                .backpressure(Backpressure::DropNewest)
                .build(),
        )
        .build()
        .expect("valid bench config");
    Arc::new(DecisionService::new(cfg, MemorySegments::new()))
}

fn bench_context() -> SimpleContext {
    SimpleContext::new(
        (0..FEATURES).map(|f| (f as f64 * 0.37).sin()).collect(),
        ACTIONS,
    )
}

/// One axis: `conns` closed-loop connections, each issuing `calls`
/// requests of `batch` decisions (`batch == 1` sends single `Decide`s).
fn run_axis(conns: usize, calls: usize, batch: usize) -> AxisResult {
    let svc = service(42);
    let core = Arc::new(WireCore::new(
        Arc::clone(&svc),
        WireConfig::builder().pending_capacity(4096).build(),
    ));
    let server = TcpServer::bind(Arc::clone(&core), "127.0.0.1:0", WORKERS).expect("bind loopback");

    let start = Instant::now();
    let hists: Vec<Histogram> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let server = &server;
                s.spawn(move || {
                    let mut client = server.connect().expect("connect");
                    let mut h = Histogram::new();
                    let ctx = bench_context();
                    let shard = (c % SHARDS) as u32;
                    for i in 0..calls {
                        let now_ns = (i as u64 + 1) * 1_000;
                        let req = if batch == 1 {
                            Request::Decide {
                                shard,
                                now_ns,
                                budget_ns: 0,
                                context: ctx.clone(),
                            }
                        } else {
                            Request::DecideBatch {
                                shard,
                                now_ns,
                                budget_ns: 0,
                                contexts: vec![ctx.clone(); batch],
                            }
                        };
                        let t0 = Instant::now();
                        let resp = client.call(&req).expect("closed-loop call");
                        h.record(t0.elapsed().as_nanos() as u64);
                        match resp {
                            Response::Decision(_) | Response::Batch(_) => {}
                            other => panic!("bench must be served, got {other:?}"),
                        }
                    }
                    h
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let decisions = (conns * calls * batch) as u64;

    let snap = core.metrics().snapshot();
    assert!(snap.ledger_ok, "bench traffic must reconcile: {snap:?}");
    assert_eq!(snap.decisions_served, decisions);
    server.shutdown();

    let mut merged = Histogram::new();
    for h in &hists {
        merged.merge(h);
    }
    let shape = if batch == 1 {
        "decide".to_string()
    } else {
        format!("batch{batch}")
    };
    AxisResult::from_run(
        format!("{conns}conns_{shape}"),
        decisions,
        elapsed_ns,
        &merged,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let (calls_single, calls_batch) = if quick { (50, 10) } else { (2_000, 400) };
    let mut axes = Vec::new();
    for conns in [1usize, 4, 8] {
        axes.push(run_axis(conns, calls_single, 1));
    }
    for conns in [4usize, 8] {
        axes.push(run_axis(conns, calls_batch, BATCH));
    }
    for a in &axes {
        println!(
            "wire_throughput/{}: {} decisions/sec (p50 {} ns, p99 {} ns, {} decisions)",
            a.axis, a.decisions_per_sec, a.p50_ns, a.p99_ns, a.decisions
        );
    }
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_serve.json"
    ));
    merge_section(path, "wire_throughput", &axes).expect("write BENCH_serve.json");
    eprintln!(
        "wrote wire_throughput section ({} axes) to {}",
        axes.len(),
        path.display()
    );
}

//! Property tests for the simulation substrate.

use proptest::prelude::*;

use harvest_sim_net::event::{Control, Simulator};
use harvest_sim_net::fault::{Fault, FaultKind, FaultPlan};
use harvest_sim_net::rng::{fork_rng, fork_seed};
use harvest_sim_net::stats::{Histogram, QuantileSketch, RunningStats};
use harvest_sim_net::time::{SimDuration, SimTime};
use harvest_sim_net::workload::{KeyDistribution, ZipfKeys};

proptest! {
    #[test]
    fn sim_time_round_trips_through_seconds(nanos in 0u64..u64::MAX / 2) {
        let t = SimTime::from_nanos(nanos);
        let back = SimTime::from_secs_f64(t.as_secs_f64());
        // f64 has 52 mantissa bits; round-trip error is bounded by the
        // magnitude's ulp.
        let err = back.as_nanos().abs_diff(t.as_nanos());
        prop_assert!(err as f64 <= t.as_nanos() as f64 * 1e-9 + 1.0, "err {err}");
    }

    #[test]
    fn duration_addition_is_commutative_and_monotone(
        a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4
    ) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!(da + db, db + da);
        prop_assert!(da + db >= da);
        let t = SimTime::from_nanos(a);
        prop_assert!(t + db >= t);
    }

    #[test]
    fn simulator_clock_is_monotone_over_arbitrary_schedules(
        times in proptest::collection::vec(0u64..1_000_000, 1..100)
    ) {
        let mut sim: Simulator<()> = Simulator::new();
        for &t in &times {
            sim.schedule(SimTime::from_nanos(t), ());
        }
        let mut last = SimTime::ZERO;
        let mut seen = 0u64;
        sim.run(|sim, _| {
            assert!(sim.now() >= last);
            last = sim.now();
            seen += 1;
            Control::Continue
        });
        prop_assert_eq!(seen, times.len() as u64);
        prop_assert_eq!(last.as_nanos(), *times.iter().max().unwrap());
    }

    #[test]
    fn fork_seed_is_stable_and_label_sensitive(seed in any::<u64>()) {
        prop_assert_eq!(fork_seed(seed, "x"), fork_seed(seed, "x"));
        prop_assert_ne!(fork_seed(seed, "x"), fork_seed(seed, "y"));
    }

    #[test]
    fn running_stats_merge_is_associative_enough(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
        cut in 0usize..100
    ) {
        let cut = cut.min(xs.len());
        let mut whole = RunningStats::new();
        for &x in &xs { whole.push(x); }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..cut] { a.push(x); }
        for &x in &xs[cut..] { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-4 * (1.0 + whole.variance()));
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..200),
        q1 in 0.0f64..1.0, q2 in 0.0f64..1.0
    ) {
        let mut sketch = QuantileSketch::new();
        for &x in &xs { sketch.push(x); }
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let lo = sketch.quantile(lo_q).unwrap();
        let hi = sketch.quantile(hi_q).unwrap();
        prop_assert!(lo <= hi + 1e-12);
        // Quantiles are bounded by the sample range.
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo >= min - 1e-12 && hi <= max + 1e-12);
    }

    #[test]
    fn histogram_quantile_upper_bound_is_an_upper_bound(
        xs in proptest::collection::vec(1e-4f64..100.0, 1..300),
        q in 0.0f64..1.0
    ) {
        let mut h = Histogram::for_latency_secs();
        let mut sketch = QuantileSketch::new();
        for &x in &xs {
            h.record(x);
            sketch.push(x);
        }
        let bound = h.quantile_upper_bound(q).unwrap();
        let exact = sketch.quantile(q).unwrap();
        prop_assert!(bound >= exact - 1e-9, "bound {bound} < exact {exact}");
    }

    #[test]
    fn fault_effects_never_speed_things_up(
        targets in proptest::collection::vec((0usize..4, 0u64..100, 1u64..50), 0..20),
        probe_t in 0u64..150, probe_target in 0usize..4
    ) {
        let faults: Vec<Fault> = targets.iter().map(|&(target, start, len)| Fault {
            target,
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(start + len),
            kind: FaultKind::SlowDown { factor: 3.0 },
        }).collect();
        let plan = FaultPlan::from_faults(faults);
        let base = SimDuration::from_millis(100);
        if let Some(eff) = plan.effect(probe_target, SimTime::from_secs(probe_t)) {
            prop_assert!(eff.apply(base) >= base);
        }
    }

    #[test]
    fn zipf_samples_stay_in_range(n in 1u64..500, s in 0.0f64..3.0, seed in 0u64..100) {
        let mut z = ZipfKeys::new(n, s, 1);
        let mut rng = fork_rng(seed, "zipf-prop");
        for _ in 0..100 {
            prop_assert!(z.sample_key(&mut rng) < n);
        }
        prop_assert_eq!(z.key_count(), Some(n));
    }
}

proptest! {
    #[test]
    fn trace_round_trips_for_arbitrary_requests(
        reqs in proptest::collection::vec((0u64..u64::MAX / 2, 0u64..u64::MAX, 0u64..u64::MAX), 0..100)
    ) {
        use harvest_sim_net::trace::{trace_from_string, trace_to_string};
        use harvest_sim_net::workload::Request;
        let trace: Vec<Request> = reqs.iter().map(|&(t, k, s)| Request {
            at: SimTime::from_nanos(t),
            key: k,
            size_bytes: s,
        }).collect();
        let (back, errors) = trace_from_string(&trace_to_string(&trace));
        prop_assert!(errors.is_empty());
        prop_assert_eq!(back, trace);
    }
}

//! Simulated time.
//!
//! Simulation timestamps are stored as integer nanoseconds since the start of
//! the simulation. Integers (rather than `f64` seconds) make [`SimTime`]
//! totally ordered, hashable, and free of accumulation error, which matters
//! because event-queue ordering must be exact for the simulators to be
//! deterministic across runs and platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant on the simulated clock, in nanoseconds since simulation start.
///
/// `SimTime` is a thin wrapper over `u64`; arithmetic with [`SimDuration`]
/// saturates rather than wrapping so that a buggy caller produces a stuck
/// clock (easy to spot in tests) instead of time travel.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a timestamp from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a timestamp from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates a timestamp from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates a timestamp from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates a timestamp from fractional seconds.
    ///
    /// Negative and non-finite inputs clamp to zero; this keeps workload
    /// generators (which sample exponential interarrival gaps) robust against
    /// degenerate samples.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`, or zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.9}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// Elapsed time between two instants; saturates at zero if `rhs` is later.
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, clamping negative or
    /// non-finite inputs to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// This span expressed in fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// Multiplies the span by a non-negative factor, saturating on overflow.
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({:.9}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
        assert_eq!(SimTime::from_millis(1500).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_mins(2).as_secs_f64(), 120.0);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration::from_secs(1), SimTime::MAX);
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(late - early, SimDuration::from_secs(1));
    }

    #[test]
    fn ordering_is_total_and_exact() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
        assert_eq!(format!("{}", SimDuration::from_micros(250)), "0.000250s");
    }
}

//! A FIFO-stable discrete-event queue and a minimal simulation driver.
//!
//! The queue is a binary heap ordered by `(time, sequence)`. The sequence
//! number breaks ties so that two events scheduled for the same instant pop
//! in the order they were pushed — without it, simulator behaviour would
//! depend on heap internals and change across `std` versions.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event wrapped with its scheduled time and a tie-breaking sequence
/// number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Push order, used to break ties at equal `at` (FIFO).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    /// Reversed so that the *earliest* event is the heap maximum.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timed events with stable FIFO ordering for ties.
///
/// # Examples
///
/// ```
/// use harvest_sim_net::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "second");
/// q.push(SimTime::from_secs(1), "first");
/// assert_eq!(q.pop().unwrap().event, "first");
/// assert_eq!(q.pop().unwrap().event, "second");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events. Sequence numbering continues, so FIFO
    /// stability is preserved across a clear.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// The outcome of handling one event: whether the driver loop should
/// continue or stop early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep processing events.
    Continue,
    /// Stop the simulation immediately (remaining events are discarded).
    Stop,
}

/// A minimal discrete-event simulation driver.
///
/// `Simulator` owns the clock and queue; user state lives outside and is
/// borrowed by the handler closure on each event. This keeps the driver
/// free of generic-state plumbing while letting simulators schedule new
/// events from inside handlers.
///
/// # Examples
///
/// ```
/// use harvest_sim_net::{Simulator, SimTime};
/// use harvest_sim_net::event::Control;
///
/// let mut sim = Simulator::new();
/// sim.schedule(SimTime::from_secs(1), 10u32);
/// let mut total = 0;
/// sim.run(|sim, ev| {
///     total += ev.event;
///     if ev.event < 30 {
///         let next = sim.now() + harvest_sim_net::SimDuration::from_secs(1);
///         sim.schedule(next, ev.event + 10);
///     }
///     Control::Continue
/// });
/// assert_eq!(total, 10 + 20 + 30);
/// assert_eq!(sim.now(), SimTime::from_secs(3));
/// ```
#[derive(Debug, Default)]
pub struct Simulator<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Simulator<E> {
    /// Creates a simulator with the clock at zero and an empty queue.
    pub fn new() -> Self {
        Simulator {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an event. Events scheduled in the past (before `now`) fire
    /// immediately-next at the current time; the clock never moves backwards.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        self.queue.push(at, event);
    }

    /// Runs until the queue drains or the handler returns [`Control::Stop`].
    ///
    /// The handler receives `&mut Simulator` so it can schedule follow-up
    /// events, plus the event being fired (with its timestamp).
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Simulator<E>, ScheduledEvent<E>) -> Control,
    {
        self.run_until(SimTime::MAX, &mut handler);
    }

    /// Runs until the queue drains, the handler stops the run, or the next
    /// event would fire after `deadline`. Events at exactly `deadline` are
    /// processed. On deadline exhaustion the clock advances to `deadline`.
    pub fn run_until<F>(&mut self, deadline: SimTime, handler: &mut F)
    where
        F: FnMut(&mut Simulator<E>, ScheduledEvent<E>) -> Control,
    {
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                self.now = deadline.max(self.now);
                return;
            }
            let ev = self.queue.pop().expect("peeked event must pop");
            debug_assert!(ev.at >= self.now, "event queue went back in time");
            self.now = ev.at;
            self.processed += 1;
            if handler(self, ev) == Control::Stop {
                return;
            }
        }
        if deadline != SimTime::MAX {
            self.now = deadline.max(self.now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 'c');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(7), ());
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
    }

    #[test]
    fn clear_preserves_fifo_stability() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 1);
        q.clear();
        assert!(q.is_empty());
        let t = SimTime::from_secs(2);
        q.push(t, 2);
        q.push(t, 3);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
    }

    #[test]
    fn simulator_advances_clock_and_counts() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::from_secs(2), ());
        sim.schedule(SimTime::from_secs(1), ());
        sim.run(|_, _| Control::Continue);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        assert_eq!(sim.processed(), 2);
    }

    #[test]
    fn simulator_stop_short_circuits() {
        let mut sim = Simulator::new();
        for s in 1..=10 {
            sim.schedule(SimTime::from_secs(s), s);
        }
        let mut seen = 0;
        sim.run(|_, ev| {
            seen += 1;
            if ev.event == 3 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert_eq!(seen, 3);
        assert_eq!(sim.pending(), 7);
    }

    #[test]
    fn simulator_deadline_is_inclusive() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::from_secs(1), 1);
        sim.schedule(SimTime::from_secs(2), 2);
        sim.schedule(SimTime::from_secs(3), 3);
        let mut seen = Vec::new();
        sim.run_until(SimTime::from_secs(2), &mut |_, ev: ScheduledEvent<i32>| {
            seen.push(ev.event);
            Control::Continue
        });
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::from_secs(5), "first");
        let mut times = Vec::new();
        sim.run(|sim, ev| {
            times.push((sim.now(), ev.event));
            if ev.event == "first" {
                // Scheduled "in the past": must fire at now, not at 1s.
                sim.schedule(SimTime::from_secs(1), "clamped");
            }
            Control::Continue
        });
        assert_eq!(
            times,
            vec![
                (SimTime::from_secs(5), "first"),
                (SimTime::from_secs(5), "clamped")
            ]
        );
    }

    #[test]
    fn handler_can_chain_events() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::ZERO, 0u32);
        let mut count = 0;
        sim.run(|sim, ev| {
            count += 1;
            if ev.event < 99 {
                let next = sim.now() + SimDuration::from_millis(10);
                sim.schedule(next, ev.event + 1);
            }
            Control::Continue
        });
        assert_eq!(count, 100);
        assert_eq!(sim.now(), SimTime::from_millis(990));
    }
}

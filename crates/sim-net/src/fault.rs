//! Chaos-Monkey-style fault injection.
//!
//! Paper §5 ("Exploration coverage") proposes leveraging reliability testing
//! — randomized failures à la Netflix's Chaos Monkey — to push systems into
//! uneven traffic and extreme conditions that produce broader exploration
//! data. This module provides a deterministic fault plan generator and a
//! per-component fault state tracker the simulators consult when computing
//! service times.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// What a fault does to the targeted component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The component is unavailable for the duration; requests routed to it
    /// fail or queue (simulator's choice).
    Crash,
    /// Service time is multiplied by `factor` (> 1) for the duration.
    SlowDown {
        /// Service-time multiplier (must exceed 1 to be a degradation).
        factor: f64,
    },
    /// A fixed extra latency is added to every request for the duration.
    LatencySpike {
        /// Additional latency per request.
        extra: SimDuration,
    },
}

/// One scheduled fault: a component, a window, and an effect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fault {
    /// Index of the targeted component (server, endpoint…).
    pub target: usize,
    /// Start of the fault window.
    pub start: SimTime,
    /// End of the fault window (exclusive).
    pub end: SimTime,
    /// The effect during the window.
    pub kind: FaultKind,
}

impl Fault {
    /// Whether the fault is active at time `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// Configuration for random fault generation.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlanConfig {
    /// Mean faults per component per simulated second.
    pub rate_per_component: f64,
    /// Mean fault duration.
    pub mean_duration: SimDuration,
    /// Probability a generated fault is a crash (vs a degradation).
    pub crash_fraction: f64,
    /// Slow-down factor range for degradations, e.g. (2.0, 10.0).
    pub slowdown_range: (f64, f64),
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            rate_per_component: 0.01,
            mean_duration: SimDuration::from_secs(5),
            crash_fraction: 0.3,
            slowdown_range: (2.0, 8.0),
        }
    }
}

/// A deterministic schedule of faults over a simulation horizon.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from an explicit fault list. The list is sorted by
    /// start time.
    pub fn from_faults(mut faults: Vec<Fault>) -> Self {
        faults.sort_by_key(|f| f.start);
        FaultPlan { faults }
    }

    /// Generates a random plan for `components` components over `horizon`.
    ///
    /// Fault start times are Poisson per component; durations are
    /// exponential with the configured mean; kinds follow
    /// `cfg.crash_fraction`.
    pub fn generate(
        components: usize,
        horizon: SimDuration,
        cfg: &FaultPlanConfig,
        rng: &mut DetRng,
    ) -> Self {
        assert!(
            cfg.rate_per_component.is_finite() && cfg.rate_per_component >= 0.0,
            "fault rate must be non-negative"
        );
        let mut faults = Vec::new();
        if cfg.rate_per_component == 0.0 {
            return FaultPlan { faults };
        }
        for target in 0..components {
            let mut t = 0.0;
            let horizon_s = horizon.as_secs_f64();
            loop {
                // Exponential gap via inverse CDF (keeps rand_distr out of
                // the per-fault path).
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -u.ln() / cfg.rate_per_component;
                if t >= horizon_s {
                    break;
                }
                let u2: f64 = rng.gen_range(f64::EPSILON..1.0);
                let dur = cfg.mean_duration.mul_f64(-u2.ln());
                let start = SimTime::from_secs_f64(t);
                let kind = if rng.gen_bool(cfg.crash_fraction.clamp(0.0, 1.0)) {
                    FaultKind::Crash
                } else {
                    let (lo, hi) = cfg.slowdown_range;
                    FaultKind::SlowDown {
                        factor: rng.gen_range(lo..hi),
                    }
                };
                faults.push(Fault {
                    target,
                    start,
                    end: start + dur,
                    kind,
                });
            }
        }
        FaultPlan::from_faults(faults)
    }

    /// All faults, sorted by start time.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Faults affecting `target` that are active at `t`.
    pub fn active_for(&self, target: usize, t: SimTime) -> impl Iterator<Item = &Fault> {
        self.faults
            .iter()
            .filter(move |f| f.target == target && f.active_at(t))
    }

    /// Effective service-time multiplier and additive latency for `target`
    /// at `t`, combining all active degradations. Returns `None` if the
    /// component is crashed.
    pub fn effect(&self, target: usize, t: SimTime) -> Option<FaultEffect> {
        let mut eff = FaultEffect::default();
        for f in self.active_for(target, t) {
            match f.kind {
                FaultKind::Crash => return None,
                FaultKind::SlowDown { factor } => eff.multiplier *= factor.max(1.0),
                FaultKind::LatencySpike { extra } => eff.extra_latency += extra,
            }
        }
        Some(eff)
    }
}

/// The combined effect of active (non-crash) faults on a component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEffect {
    /// Service-time multiplier (1.0 = healthy).
    pub multiplier: f64,
    /// Additive latency per request.
    pub extra_latency: SimDuration,
}

impl Default for FaultEffect {
    fn default() -> Self {
        FaultEffect {
            multiplier: 1.0,
            extra_latency: SimDuration::ZERO,
        }
    }
}

impl FaultEffect {
    /// Applies this effect to a base service time.
    pub fn apply(&self, base: SimDuration) -> SimDuration {
        base.mul_f64(self.multiplier) + self.extra_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fork_rng;

    fn mk(target: usize, s: u64, e: u64, kind: FaultKind) -> Fault {
        Fault {
            target,
            start: SimTime::from_secs(s),
            end: SimTime::from_secs(e),
            kind,
        }
    }

    #[test]
    fn window_is_half_open() {
        let f = mk(0, 1, 2, FaultKind::Crash);
        assert!(!f.active_at(SimTime::from_millis(999)));
        assert!(f.active_at(SimTime::from_secs(1)));
        assert!(f.active_at(SimTime::from_millis(1999)));
        assert!(!f.active_at(SimTime::from_secs(2)));
    }

    #[test]
    fn effect_combines_degradations() {
        let plan = FaultPlan::from_faults(vec![
            mk(0, 0, 10, FaultKind::SlowDown { factor: 2.0 }),
            mk(
                0,
                0,
                10,
                FaultKind::LatencySpike {
                    extra: SimDuration::from_millis(50),
                },
            ),
            mk(1, 0, 10, FaultKind::SlowDown { factor: 100.0 }),
        ]);
        let eff = plan.effect(0, SimTime::from_secs(5)).unwrap();
        assert_eq!(eff.multiplier, 2.0);
        assert_eq!(eff.extra_latency, SimDuration::from_millis(50));
        let applied = eff.apply(SimDuration::from_millis(100));
        assert_eq!(applied, SimDuration::from_millis(250));
        // Target 2 has no faults.
        assert_eq!(
            plan.effect(2, SimTime::from_secs(5)).unwrap(),
            FaultEffect::default()
        );
    }

    #[test]
    fn crash_dominates() {
        let plan = FaultPlan::from_faults(vec![
            mk(0, 0, 10, FaultKind::SlowDown { factor: 2.0 }),
            mk(0, 3, 6, FaultKind::Crash),
        ]);
        assert!(plan.effect(0, SimTime::from_secs(4)).is_none());
        assert!(plan.effect(0, SimTime::from_secs(7)).is_some());
    }

    #[test]
    fn generated_plan_is_within_horizon_and_sorted() {
        let mut rng = fork_rng(11, "faults");
        let cfg = FaultPlanConfig {
            rate_per_component: 0.5,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(4, SimDuration::from_secs(100), &cfg, &mut rng);
        assert!(
            !plan.faults().is_empty(),
            "expected some faults at rate 0.5"
        );
        for f in plan.faults() {
            assert!(f.start < SimTime::from_secs(100));
            assert!(f.end > f.start);
            assert!(f.target < 4);
        }
        for w in plan.faults().windows(2) {
            assert!(w[0].start <= w[1].start, "plan must be sorted");
        }
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let mut rng = fork_rng(12, "nofaults");
        let cfg = FaultPlanConfig {
            rate_per_component: 0.0,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(4, SimDuration::from_secs(100), &cfg, &mut rng);
        assert!(plan.faults().is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = FaultPlanConfig::default();
        let a = FaultPlan::generate(
            3,
            SimDuration::from_secs(1000),
            &cfg,
            &mut fork_rng(13, "det"),
        );
        let b = FaultPlan::generate(
            3,
            SimDuration::from_secs(1000),
            &cfg,
            &mut fork_rng(13, "det"),
        );
        assert_eq!(a.faults(), b.faults());
    }
}

//! Chaos-Monkey-style fault injection.
//!
//! Paper §5 ("Exploration coverage") proposes leveraging reliability testing
//! — randomized failures à la Netflix's Chaos Monkey — to push systems into
//! uneven traffic and extreme conditions that produce broader exploration
//! data. This module provides a deterministic fault plan generator and a
//! per-component fault state tracker the simulators consult when computing
//! service times.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// What a fault does to the targeted component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The component is unavailable for the duration; requests routed to it
    /// fail or queue (simulator's choice).
    Crash,
    /// Service time is multiplied by `factor` (> 1) for the duration.
    SlowDown {
        /// Service-time multiplier (must exceed 1 to be a degradation).
        factor: f64,
    },
    /// A fixed extra latency is added to every request for the duration.
    LatencySpike {
        /// Additional latency per request.
        extra: SimDuration,
    },
}

/// One scheduled fault: a component, a window, and an effect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fault {
    /// Index of the targeted component (server, endpoint…).
    pub target: usize,
    /// Start of the fault window.
    pub start: SimTime,
    /// End of the fault window (exclusive).
    pub end: SimTime,
    /// The effect during the window.
    pub kind: FaultKind,
}

impl Fault {
    /// Whether the fault is active at time `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// Configuration for random fault generation.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlanConfig {
    /// Mean faults per component per simulated second.
    pub rate_per_component: f64,
    /// Mean fault duration.
    pub mean_duration: SimDuration,
    /// Probability a generated fault is a crash (vs a degradation).
    pub crash_fraction: f64,
    /// Slow-down factor range for degradations, e.g. (2.0, 10.0).
    pub slowdown_range: (f64, f64),
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            rate_per_component: 0.01,
            mean_duration: SimDuration::from_secs(5),
            crash_fraction: 0.3,
            slowdown_range: (2.0, 8.0),
        }
    }
}

/// A deterministic schedule of faults over a simulation horizon.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from an explicit fault list. The list is sorted by
    /// start time.
    pub fn from_faults(mut faults: Vec<Fault>) -> Self {
        faults.sort_by_key(|f| f.start);
        FaultPlan { faults }
    }

    /// Generates a random plan for `components` components over `horizon`.
    ///
    /// Fault start times are Poisson per component; durations are
    /// exponential with the configured mean; kinds follow
    /// `cfg.crash_fraction`.
    pub fn generate(
        components: usize,
        horizon: SimDuration,
        cfg: &FaultPlanConfig,
        rng: &mut DetRng,
    ) -> Self {
        assert!(
            cfg.rate_per_component.is_finite() && cfg.rate_per_component >= 0.0,
            "fault rate must be non-negative"
        );
        let mut faults = Vec::new();
        if cfg.rate_per_component == 0.0 {
            return FaultPlan { faults };
        }
        for target in 0..components {
            let mut t = 0.0;
            let horizon_s = horizon.as_secs_f64();
            loop {
                // Exponential gap via inverse CDF (keeps rand_distr out of
                // the per-fault path).
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -u.ln() / cfg.rate_per_component;
                if t >= horizon_s {
                    break;
                }
                let u2: f64 = rng.gen_range(f64::EPSILON..1.0);
                let dur = cfg.mean_duration.mul_f64(-u2.ln());
                let start = SimTime::from_secs_f64(t);
                let kind = if rng.gen_bool(cfg.crash_fraction.clamp(0.0, 1.0)) {
                    FaultKind::Crash
                } else {
                    let (lo, hi) = cfg.slowdown_range;
                    FaultKind::SlowDown {
                        factor: rng.gen_range(lo..hi),
                    }
                };
                faults.push(Fault {
                    target,
                    start,
                    end: start + dur,
                    kind,
                });
            }
        }
        FaultPlan::from_faults(faults)
    }

    /// All faults, sorted by start time.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Faults affecting `target` that are active at `t`.
    pub fn active_for(&self, target: usize, t: SimTime) -> impl Iterator<Item = &Fault> {
        self.faults
            .iter()
            .filter(move |f| f.target == target && f.active_at(t))
    }

    /// Effective service-time multiplier and additive latency for `target`
    /// at `t`, combining all active degradations. Returns `None` if the
    /// component is crashed.
    pub fn effect(&self, target: usize, t: SimTime) -> Option<FaultEffect> {
        let mut eff = FaultEffect::default();
        for f in self.active_for(target, t) {
            match f.kind {
                FaultKind::Crash => return None,
                FaultKind::SlowDown { factor } => eff.multiplier *= factor.max(1.0),
                FaultKind::LatencySpike { extra } => eff.extra_latency += extra,
            }
        }
        Some(eff)
    }
}

/// The combined effect of active (non-crash) faults on a component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEffect {
    /// Service-time multiplier (1.0 = healthy).
    pub multiplier: f64,
    /// Additive latency per request.
    pub extra_latency: SimDuration,
}

impl Default for FaultEffect {
    fn default() -> Self {
        FaultEffect {
            multiplier: 1.0,
            extra_latency: SimDuration::ZERO,
        }
    }
}

impl FaultEffect {
    /// Applies this effect to a base service time.
    pub fn apply(&self, base: SimDuration) -> SimDuration {
        base.mul_f64(self.multiplier) + self.extra_latency
    }
}

// ---------------------------------------------------------------------------
// Serve-loop chaos schedules
// ---------------------------------------------------------------------------

/// A fault aimed at the decision-log writer thread, keyed by the index of
/// the record it is about to process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WriterFault {
    /// The writer thread panics *before* popping the record: nothing is
    /// lost — the record stays queued for the restarted incarnation.
    Kill,
    /// The writer pops the record, appends only `keep_frac` of its frame
    /// bytes (clamped to at least one and at most all-but-one), then
    /// panics: the at-rest image of a crash mid-`write(2)`.
    Tear {
        /// Fraction of the frame to persist before dying, in `(0, 1)`.
        keep_frac: f64,
    },
}

/// A fault applied to one reward delivery, keyed by reward-call index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RewardFault {
    /// The reward never reaches the joiner (network loss); the decision
    /// eventually expires as missing-outcome.
    Drop,
    /// The reward arrives `by_ns` late on the logical clock; past the join
    /// TTL it is refused as expired.
    Delay {
        /// Added logical delay in nanoseconds.
        by_ns: u64,
    },
}

/// Damage applied to sealed segments at rest, between serving waves. Both
/// variants are *crash-consistent*: they never remove whole frames or touch
/// headers, so recovery can still count every damaged record and the
/// accounting invariant stays exact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AtRestFault {
    /// Bit rot: XOR one byte inside the payload of a frame. Recovery
    /// quarantines that frame and everything after it in the segment.
    CorruptPayload {
        /// Which segment, as a fraction of the segment count.
        segment_frac: f64,
        /// Which frame within the segment, as a fraction of its frames.
        frame_frac: f64,
        /// The XOR mask (non-zero).
        xor: u8,
    },
    /// A torn final write: truncate the last frame of a segment, keeping
    /// `keep_frac` of its bytes.
    TearTail {
        /// Which segment, as a fraction of the segment count.
        segment_frac: f64,
        /// Fraction of the final frame to keep.
        keep_frac: f64,
    },
}

/// A fault aimed at the checkpoint path, keyed by checkpoint index (the Nth
/// `DecisionService::checkpoint` call). The first two variants model a crash
/// racing the checkpoint write; the last two damage the checkpoint itself —
/// recovery must fall back to the previous valid one, counted never silent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CheckpointFault {
    /// The process dies before any checkpoint bytes are written: the newest
    /// durable state is the *previous* checkpoint plus the decision log.
    KillBefore,
    /// The checkpoint write tears mid-frame (only `keep_frac` of the bytes
    /// land) and the process dies: the torn blob must fail validation.
    Tear {
        /// Fraction of the checkpoint blob to persist, in `(0, 1)`.
        keep_frac: f64,
    },
    /// The checkpoint is written whole, then one payload byte rots at rest
    /// (XOR mask, non-zero). The process continues; a later restart must
    /// detect the damage via the CRC and fall back.
    Corrupt {
        /// The XOR mask (non-zero).
        xor: u8,
    },
    /// The checkpoint is written cleanly and the process dies immediately
    /// after: the pure warm-restart case, with an empty replay suffix.
    KillAfter,
}

/// Sizing for [`ChaosPlan::generate`]: how many operations of each kind the
/// driven trace will perform, so fault indices land inside it.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosHorizon {
    /// Records the writer will process (fault window for writer faults).
    pub writer_records: u64,
    /// Reward deliveries (fault window for reward faults).
    pub rewards: u64,
    /// Decisions (fault window for shard poisonings).
    pub decisions: u64,
    /// Training rounds (fault window for trainer crashes).
    pub rounds: u64,
    /// Checkpoint calls (fault window for checkpoint faults).
    pub checkpoints: u64,
}

/// How many faults of each class [`ChaosPlan::generate`] schedules.
#[derive(Debug, Clone, Copy)]
pub struct ChaosPlanConfig {
    /// Writer-thread kills.
    pub writer_kills: usize,
    /// Torn writes.
    pub writer_tears: usize,
    /// Rewards lost in flight.
    pub reward_drops: usize,
    /// Rewards delayed past plausibility.
    pub reward_delays: usize,
    /// Logical delay range for delayed rewards (nanoseconds).
    pub delay_ns_range: (u64, u64),
    /// Shard-lock poisonings.
    pub shard_poisons: usize,
    /// Trainer crashes mid-fit.
    pub trainer_crashes: usize,
    /// At-rest payload corruptions.
    pub at_rest_corruptions: usize,
    /// At-rest torn tails.
    pub at_rest_tears: usize,
    /// Crashes just before a checkpoint write.
    pub checkpoint_kills_before: usize,
    /// Torn checkpoint writes (crash mid-write).
    pub checkpoint_tears: usize,
    /// At-rest checkpoint corruptions.
    pub checkpoint_corruptions: usize,
    /// Crashes just after a clean checkpoint write.
    pub checkpoint_kills_after: usize,
}

impl Default for ChaosPlanConfig {
    fn default() -> Self {
        ChaosPlanConfig {
            writer_kills: 1,
            writer_tears: 1,
            reward_drops: 2,
            reward_delays: 2,
            delay_ns_range: (1_000_000_000, 60_000_000_000),
            shard_poisons: 1,
            trainer_crashes: 1,
            at_rest_corruptions: 1,
            at_rest_tears: 1,
            checkpoint_kills_before: 0,
            checkpoint_tears: 0,
            checkpoint_corruptions: 0,
            checkpoint_kills_after: 0,
        }
    }
}

/// A deterministic chaos schedule for the serve loop.
///
/// Unlike [`FaultPlan`], which keys faults by simulated time, a `ChaosPlan`
/// keys them by **operation index** — the writer's Nth record, the Nth
/// reward call, the Nth decision, the Nth training round. Thread scheduling
/// and wall-clock jitter therefore cannot move a fault: two runs with the
/// same seed inject exactly the same faults at exactly the same points in
/// the logical trace, which is what makes chaos recovery replayable.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    writer: std::collections::BTreeMap<u64, WriterFault>,
    rewards: std::collections::BTreeMap<u64, RewardFault>,
    poisons: std::collections::BTreeSet<u64>,
    trainer: std::collections::BTreeSet<u64>,
    at_rest: Vec<AtRestFault>,
    checkpoints: std::collections::BTreeMap<u64, CheckpointFault>,
}

impl ChaosPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// A builder starting from the empty plan — the composable way to
    /// write chaos schedules (the per-fault methods on `ChaosPlan` itself
    /// remain for existing call sites).
    pub fn builder() -> ChaosPlanBuilder {
        ChaosPlanBuilder(ChaosPlan::none())
    }

    /// Schedules a writer kill before record `index` is processed.
    pub fn kill_writer_at(mut self, index: u64) -> Self {
        self.writer.insert(index, WriterFault::Kill);
        self
    }

    /// Schedules a torn write of record `index`.
    pub fn tear_writer_at(mut self, index: u64, keep_frac: f64) -> Self {
        self.writer.insert(index, WriterFault::Tear { keep_frac });
        self
    }

    /// Schedules reward delivery `index` to be lost.
    pub fn drop_reward_at(mut self, index: u64) -> Self {
        self.rewards.insert(index, RewardFault::Drop);
        self
    }

    /// Schedules reward delivery `index` to arrive `by_ns` late.
    pub fn delay_reward_at(mut self, index: u64, by_ns: u64) -> Self {
        self.rewards.insert(index, RewardFault::Delay { by_ns });
        self
    }

    /// Schedules the serving shard of decision `index` to be lock-poisoned
    /// immediately before that decision.
    pub fn poison_shard_at(mut self, index: u64) -> Self {
        self.poisons.insert(index);
        self
    }

    /// Schedules training round `index` to crash mid-fit.
    pub fn crash_trainer_at(mut self, round: u64) -> Self {
        self.trainer.insert(round);
        self
    }

    /// Adds an at-rest damage entry, applied by the harness between waves.
    pub fn damage_at_rest(mut self, fault: AtRestFault) -> Self {
        self.at_rest.push(fault);
        self
    }

    /// Schedules a checkpoint fault at checkpoint call `index`.
    pub fn fault_checkpoint_at(mut self, index: u64, fault: CheckpointFault) -> Self {
        self.checkpoints.insert(index, fault);
        self
    }

    /// Generates a seeded random plan sized by `cfg` inside `horizon`.
    /// Same seed ⇒ same plan; indices are sampled without collision so the
    /// configured fault counts are exact (saturating at the horizon).
    pub fn generate(cfg: &ChaosPlanConfig, horizon: &ChaosHorizon, rng: &mut DetRng) -> Self {
        fn sample_distinct(n: usize, horizon: u64, rng: &mut DetRng) -> Vec<u64> {
            let mut picked = std::collections::BTreeSet::new();
            let want = (n as u64).min(horizon) as usize;
            while picked.len() < want {
                picked.insert(rng.gen_range(0..horizon));
            }
            picked.into_iter().collect()
        }

        let mut plan = ChaosPlan::none();
        let writer_idx = sample_distinct(
            cfg.writer_kills + cfg.writer_tears,
            horizon.writer_records,
            rng,
        );
        for (i, idx) in writer_idx.into_iter().enumerate() {
            if i < cfg.writer_kills {
                plan.writer.insert(idx, WriterFault::Kill);
            } else {
                let keep_frac = rng.gen_range(0.05..0.95);
                plan.writer.insert(idx, WriterFault::Tear { keep_frac });
            }
        }
        let reward_idx =
            sample_distinct(cfg.reward_drops + cfg.reward_delays, horizon.rewards, rng);
        for (i, idx) in reward_idx.into_iter().enumerate() {
            if i < cfg.reward_drops {
                plan.rewards.insert(idx, RewardFault::Drop);
            } else {
                let (lo, hi) = cfg.delay_ns_range;
                let by_ns = rng.gen_range(lo..hi.max(lo + 1));
                plan.rewards.insert(idx, RewardFault::Delay { by_ns });
            }
        }
        for idx in sample_distinct(cfg.shard_poisons, horizon.decisions, rng) {
            plan.poisons.insert(idx);
        }
        for idx in sample_distinct(cfg.trainer_crashes, horizon.rounds, rng) {
            plan.trainer.insert(idx);
        }
        for _ in 0..cfg.at_rest_corruptions {
            plan.at_rest.push(AtRestFault::CorruptPayload {
                segment_frac: rng.gen_range(0.0..1.0),
                frame_frac: rng.gen_range(0.0..1.0),
                xor: rng.gen_range(1..256u32) as u8,
            });
        }
        for _ in 0..cfg.at_rest_tears {
            plan.at_rest.push(AtRestFault::TearTail {
                segment_frac: rng.gen_range(0.0..1.0),
                keep_frac: rng.gen_range(0.05..0.95),
            });
        }
        let ckpt_idx = sample_distinct(
            cfg.checkpoint_kills_before
                + cfg.checkpoint_tears
                + cfg.checkpoint_corruptions
                + cfg.checkpoint_kills_after,
            horizon.checkpoints,
            rng,
        );
        for (i, idx) in ckpt_idx.into_iter().enumerate() {
            let fault = if i < cfg.checkpoint_kills_before {
                CheckpointFault::KillBefore
            } else if i < cfg.checkpoint_kills_before + cfg.checkpoint_tears {
                CheckpointFault::Tear {
                    keep_frac: rng.gen_range(0.05..0.95),
                }
            } else if i < cfg.checkpoint_kills_before
                + cfg.checkpoint_tears
                + cfg.checkpoint_corruptions
            {
                CheckpointFault::Corrupt {
                    xor: rng.gen_range(1..256u32) as u8,
                }
            } else {
                CheckpointFault::KillAfter
            };
            plan.checkpoints.insert(idx, fault);
        }
        plan
    }

    /// The writer fault scheduled for record `index`, if any.
    pub fn writer_fault_at(&self, index: u64) -> Option<WriterFault> {
        self.writer.get(&index).copied()
    }

    /// Record indices with a scheduled writer kill, sorted.
    pub fn writer_kills(&self) -> Vec<u64> {
        self.writer
            .iter()
            .filter(|(_, f)| matches!(f, WriterFault::Kill))
            .map(|(&i, _)| i)
            .collect()
    }

    /// The reward fault scheduled for delivery `index`, if any.
    pub fn reward_fault_at(&self, index: u64) -> Option<RewardFault> {
        self.rewards.get(&index).copied()
    }

    /// Whether decision `index` poisons its shard first.
    pub fn poison_at(&self, index: u64) -> bool {
        self.poisons.contains(&index)
    }

    /// Whether training round `round` crashes mid-fit.
    pub fn trainer_crash_at(&self, round: u64) -> bool {
        self.trainer.contains(&round)
    }

    /// The at-rest damage entries, in insertion order.
    pub fn at_rest(&self) -> &[AtRestFault] {
        &self.at_rest
    }

    /// The checkpoint fault scheduled for checkpoint call `index`, if any.
    pub fn checkpoint_fault_at(&self, index: u64) -> Option<CheckpointFault> {
        self.checkpoints.get(&index).copied()
    }

    /// All scheduled checkpoint faults, keyed by checkpoint index, sorted.
    pub fn checkpoint_faults(&self) -> Vec<(u64, CheckpointFault)> {
        self.checkpoints.iter().map(|(&i, &f)| (i, f)).collect()
    }

    /// Total scheduled faults across all classes.
    pub fn len(&self) -> usize {
        self.writer.len()
            + self.rewards.len()
            + self.poisons.len()
            + self.trainer.len()
            + self.at_rest.len()
            + self.checkpoints.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One-line human summary ("2 writer, 4 reward, …").
    pub fn summary(&self) -> String {
        format!(
            "{} writer, {} reward, {} poison, {} trainer, {} at-rest, {} checkpoint",
            self.writer.len(),
            self.rewards.len(),
            self.poisons.len(),
            self.trainer.len(),
            self.at_rest.len(),
            self.checkpoints.len()
        )
    }
}

/// Builder for [`ChaosPlan`]: schedule faults by operation index, then
/// [`build`](ChaosPlanBuilder::build).
#[derive(Debug, Clone, Default)]
pub struct ChaosPlanBuilder(ChaosPlan);

impl ChaosPlanBuilder {
    /// Schedules a writer kill before record `index` is processed.
    pub fn kill_writer_at(mut self, index: u64) -> Self {
        self.0 = self.0.kill_writer_at(index);
        self
    }

    /// Schedules a torn write of record `index`.
    pub fn tear_writer_at(mut self, index: u64, keep_frac: f64) -> Self {
        self.0 = self.0.tear_writer_at(index, keep_frac);
        self
    }

    /// Schedules reward delivery `index` to be lost.
    pub fn drop_reward_at(mut self, index: u64) -> Self {
        self.0 = self.0.drop_reward_at(index);
        self
    }

    /// Schedules reward delivery `index` to arrive `by_ns` late.
    pub fn delay_reward_at(mut self, index: u64, by_ns: u64) -> Self {
        self.0 = self.0.delay_reward_at(index, by_ns);
        self
    }

    /// Schedules the serving shard of decision `index` to be lock-poisoned
    /// immediately before that decision.
    pub fn poison_shard_at(mut self, index: u64) -> Self {
        self.0 = self.0.poison_shard_at(index);
        self
    }

    /// Schedules training round `round` to crash mid-fit.
    pub fn crash_trainer_at(mut self, round: u64) -> Self {
        self.0 = self.0.crash_trainer_at(round);
        self
    }

    /// Adds an at-rest damage entry, applied by the harness between waves.
    pub fn damage_at_rest(mut self, fault: AtRestFault) -> Self {
        self.0 = self.0.damage_at_rest(fault);
        self
    }

    /// Schedules a checkpoint fault at checkpoint call `index`.
    pub fn fault_checkpoint_at(mut self, index: u64, fault: CheckpointFault) -> Self {
        self.0 = self.0.fault_checkpoint_at(index, fault);
        self
    }

    /// Returns the composed plan.
    pub fn build(self) -> ChaosPlan {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fork_rng;

    fn mk(target: usize, s: u64, e: u64, kind: FaultKind) -> Fault {
        Fault {
            target,
            start: SimTime::from_secs(s),
            end: SimTime::from_secs(e),
            kind,
        }
    }

    #[test]
    fn window_is_half_open() {
        let f = mk(0, 1, 2, FaultKind::Crash);
        assert!(!f.active_at(SimTime::from_millis(999)));
        assert!(f.active_at(SimTime::from_secs(1)));
        assert!(f.active_at(SimTime::from_millis(1999)));
        assert!(!f.active_at(SimTime::from_secs(2)));
    }

    #[test]
    fn effect_combines_degradations() {
        let plan = FaultPlan::from_faults(vec![
            mk(0, 0, 10, FaultKind::SlowDown { factor: 2.0 }),
            mk(
                0,
                0,
                10,
                FaultKind::LatencySpike {
                    extra: SimDuration::from_millis(50),
                },
            ),
            mk(1, 0, 10, FaultKind::SlowDown { factor: 100.0 }),
        ]);
        let eff = plan.effect(0, SimTime::from_secs(5)).unwrap();
        assert_eq!(eff.multiplier, 2.0);
        assert_eq!(eff.extra_latency, SimDuration::from_millis(50));
        let applied = eff.apply(SimDuration::from_millis(100));
        assert_eq!(applied, SimDuration::from_millis(250));
        // Target 2 has no faults.
        assert_eq!(
            plan.effect(2, SimTime::from_secs(5)).unwrap(),
            FaultEffect::default()
        );
    }

    #[test]
    fn crash_dominates() {
        let plan = FaultPlan::from_faults(vec![
            mk(0, 0, 10, FaultKind::SlowDown { factor: 2.0 }),
            mk(0, 3, 6, FaultKind::Crash),
        ]);
        assert!(plan.effect(0, SimTime::from_secs(4)).is_none());
        assert!(plan.effect(0, SimTime::from_secs(7)).is_some());
    }

    #[test]
    fn generated_plan_is_within_horizon_and_sorted() {
        let mut rng = fork_rng(11, "faults");
        let cfg = FaultPlanConfig {
            rate_per_component: 0.5,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(4, SimDuration::from_secs(100), &cfg, &mut rng);
        assert!(
            !plan.faults().is_empty(),
            "expected some faults at rate 0.5"
        );
        for f in plan.faults() {
            assert!(f.start < SimTime::from_secs(100));
            assert!(f.end > f.start);
            assert!(f.target < 4);
        }
        for w in plan.faults().windows(2) {
            assert!(w[0].start <= w[1].start, "plan must be sorted");
        }
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let mut rng = fork_rng(12, "nofaults");
        let cfg = FaultPlanConfig {
            rate_per_component: 0.0,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(4, SimDuration::from_secs(100), &cfg, &mut rng);
        assert!(plan.faults().is_empty());
    }

    #[test]
    fn chaos_plan_generation_is_deterministic_and_exactly_sized() {
        let cfg = ChaosPlanConfig {
            writer_kills: 2,
            writer_tears: 3,
            reward_drops: 4,
            reward_delays: 2,
            shard_poisons: 2,
            trainer_crashes: 1,
            at_rest_corruptions: 2,
            at_rest_tears: 1,
            ..ChaosPlanConfig::default()
        };
        let horizon = ChaosHorizon {
            writer_records: 10_000,
            rewards: 10_000,
            decisions: 10_000,
            rounds: 4,
            checkpoints: 0,
        };
        let a = ChaosPlan::generate(&cfg, &horizon, &mut fork_rng(7, "chaos"));
        let b = ChaosPlan::generate(&cfg, &horizon, &mut fork_rng(7, "chaos"));
        assert_eq!(a.len(), 2 + 3 + 4 + 2 + 2 + 1 + 2 + 1);
        assert_eq!(a.writer_kills().len(), 2);
        assert_eq!(a.at_rest().len(), 3);
        // Same seed ⇒ identical schedule, at every lookup point.
        for i in 0..10_000 {
            assert_eq!(a.writer_fault_at(i), b.writer_fault_at(i));
            assert_eq!(a.reward_fault_at(i), b.reward_fault_at(i));
            assert_eq!(a.poison_at(i), b.poison_at(i));
        }
        for r in 0..4 {
            assert_eq!(a.trainer_crash_at(r), b.trainer_crash_at(r));
        }
        assert_eq!(a.at_rest(), b.at_rest());
        // And a different seed genuinely moves the faults.
        let c = ChaosPlan::generate(&cfg, &horizon, &mut fork_rng(8, "chaos"));
        assert_ne!(a.writer_kills(), c.writer_kills());
    }

    #[test]
    fn chaos_plan_counts_saturate_at_the_horizon() {
        let cfg = ChaosPlanConfig {
            writer_kills: 50,
            writer_tears: 50,
            ..ChaosPlanConfig::default()
        };
        let horizon = ChaosHorizon {
            writer_records: 10,
            rewards: 100,
            decisions: 100,
            rounds: 2,
            checkpoints: 0,
        };
        let plan = ChaosPlan::generate(&cfg, &horizon, &mut fork_rng(9, "sat"));
        // 100 requested writer faults cannot exceed 10 distinct indices.
        assert_eq!(
            (0..10)
                .filter(|&i| plan.writer_fault_at(i).is_some())
                .count(),
            10
        );
    }

    #[test]
    fn chaos_plan_builders_key_by_exact_index() {
        let plan = ChaosPlan::none()
            .kill_writer_at(5)
            .tear_writer_at(9, 0.4)
            .drop_reward_at(3)
            .delay_reward_at(4, 1_000)
            .poison_shard_at(7)
            .crash_trainer_at(1)
            .damage_at_rest(AtRestFault::TearTail {
                segment_frac: 0.5,
                keep_frac: 0.5,
            })
            .fault_checkpoint_at(2, CheckpointFault::Tear { keep_frac: 0.5 });
        assert_eq!(plan.writer_fault_at(5), Some(WriterFault::Kill));
        assert_eq!(plan.writer_fault_at(6), None);
        assert_eq!(plan.writer_kills(), vec![5]);
        assert!(matches!(
            plan.writer_fault_at(9),
            Some(WriterFault::Tear { .. })
        ));
        assert_eq!(plan.reward_fault_at(3), Some(RewardFault::Drop));
        assert_eq!(
            plan.reward_fault_at(4),
            Some(RewardFault::Delay { by_ns: 1_000 })
        );
        assert!(plan.poison_at(7) && !plan.poison_at(8));
        assert!(plan.trainer_crash_at(1) && !plan.trainer_crash_at(0));
        assert_eq!(
            plan.checkpoint_fault_at(2),
            Some(CheckpointFault::Tear { keep_frac: 0.5 })
        );
        assert_eq!(plan.checkpoint_fault_at(3), None);
        assert_eq!(
            plan.checkpoint_faults(),
            vec![(2, CheckpointFault::Tear { keep_frac: 0.5 })]
        );
        assert_eq!(plan.len(), 8);
        assert!(!plan.is_empty());
        assert_eq!(
            plan.summary(),
            "2 writer, 2 reward, 1 poison, 1 trainer, 1 at-rest, 1 checkpoint"
        );
    }

    #[test]
    fn generated_checkpoint_faults_are_sized_and_deterministic() {
        let cfg = ChaosPlanConfig {
            checkpoint_kills_before: 1,
            checkpoint_tears: 1,
            checkpoint_corruptions: 1,
            checkpoint_kills_after: 1,
            ..ChaosPlanConfig::default()
        };
        let horizon = ChaosHorizon {
            writer_records: 1_000,
            rewards: 1_000,
            decisions: 1_000,
            rounds: 4,
            checkpoints: 16,
        };
        let a = ChaosPlan::generate(&cfg, &horizon, &mut fork_rng(7, "ckpt"));
        let b = ChaosPlan::generate(&cfg, &horizon, &mut fork_rng(7, "ckpt"));
        assert_eq!(a.checkpoint_faults(), b.checkpoint_faults());
        assert_eq!(a.checkpoint_faults().len(), 4);
        let kinds: Vec<CheckpointFault> =
            a.checkpoint_faults().into_iter().map(|(_, f)| f).collect();
        assert!(kinds
            .iter()
            .any(|f| matches!(f, CheckpointFault::KillBefore)));
        assert!(kinds
            .iter()
            .any(|f| matches!(f, CheckpointFault::Tear { .. })));
        assert!(kinds
            .iter()
            .any(|f| matches!(f, CheckpointFault::Corrupt { xor } if *xor != 0)));
        assert!(kinds
            .iter()
            .any(|f| matches!(f, CheckpointFault::KillAfter)));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = FaultPlanConfig::default();
        let a = FaultPlan::generate(
            3,
            SimDuration::from_secs(1000),
            &cfg,
            &mut fork_rng(13, "det"),
        );
        let b = FaultPlan::generate(
            3,
            SimDuration::from_secs(1000),
            &cfg,
            &mut fork_rng(13, "det"),
        );
        assert_eq!(a.faults(), b.faults());
    }
}

//! Deterministic random-number plumbing.
//!
//! Every experiment in this reproduction takes a single master seed. Each
//! component (workload generator, routing policy, fault injector, …) forks
//! its own RNG from the master seed *by label*, using a stable FNV-1a hash
//! of the label mixed into the seed with SplitMix64. This guarantees two
//! properties the figures depend on:
//!
//! 1. **Reproducibility** — the same seed regenerates the same table rows
//!    bit-for-bit on any platform.
//! 2. **Isolation** — adding or reordering components never perturbs the
//!    random stream of another component, so ablations change only what they
//!    mean to change.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The deterministic RNG used throughout the workspace.
///
/// `StdRng` is seedable, portable, and reproducible across platforms for a
/// given `rand` version, which is what the experiment harness needs.
pub type DetRng = StdRng;

/// FNV-1a 64-bit hash of a byte string. Stable across platforms and Rust
/// versions (unlike `std`'s `DefaultHasher`, which is explicitly not).
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// SplitMix64 finalizer; a cheap, high-quality bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a sub-seed from a master seed and a component label.
pub fn fork_seed(master_seed: u64, label: &str) -> u64 {
    splitmix64(master_seed ^ fnv1a(label.as_bytes()))
}

/// Forks a component RNG from a master seed and a stable label.
///
/// # Examples
///
/// ```
/// use harvest_sim_net::fork_rng;
/// use rand::Rng;
///
/// let mut a = fork_rng(42, "workload");
/// let mut b = fork_rng(42, "workload");
/// let mut c = fork_rng(42, "faults");
/// let (xa, xb, xc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
/// assert_eq!(xa, xb);  // same label => same stream
/// assert_ne!(xa, xc);  // different label => independent stream
/// ```
pub fn fork_rng(master_seed: u64, label: &str) -> DetRng {
    DetRng::seed_from_u64(fork_seed(master_seed, label))
}

/// Forks an RNG for the `i`-th replica of a component, e.g. per-server or
/// per-trial streams.
pub fn fork_rng_indexed(master_seed: u64, label: &str, index: u64) -> DetRng {
    DetRng::seed_from_u64(splitmix64(
        fork_seed(master_seed, label) ^ splitmix64(index),
    ))
}

/// Captures the exact stream position of a [`DetRng`], for checkpointing.
/// Restoring via [`rng_from_state`] continues the stream bit-for-bit.
pub fn rng_state(rng: &DetRng) -> [u64; 4] {
    rng.state()
}

/// Rebuilds a [`DetRng`] at a position captured by [`rng_state`].
pub fn rng_from_state(state: [u64; 4]) -> DetRng {
    DetRng::from_state(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn fork_is_deterministic() {
        let x: u64 = fork_rng(7, "alpha").gen();
        let y: u64 = fork_rng(7, "alpha").gen();
        assert_eq!(x, y);
    }

    #[test]
    fn labels_give_independent_streams() {
        let x: u64 = fork_rng(7, "alpha").gen();
        let y: u64 = fork_rng(7, "beta").gen();
        assert_ne!(x, y);
    }

    #[test]
    fn seeds_give_independent_streams() {
        let x: u64 = fork_rng(7, "alpha").gen();
        let y: u64 = fork_rng(8, "alpha").gen();
        assert_ne!(x, y);
    }

    #[test]
    fn indexed_forks_differ() {
        let x: u64 = fork_rng_indexed(7, "server", 0).gen();
        let y: u64 = fork_rng_indexed(7, "server", 1).gen();
        assert_ne!(x, y);
        let z: u64 = fork_rng_indexed(7, "server", 0).gen();
        assert_eq!(x, z);
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut rng = fork_rng_indexed(42, "serve-shard", 3);
        for _ in 0..57 {
            let _: u64 = rng.gen();
        }
        let saved = rng_state(&rng);
        let tail: Vec<u64> = (0..16).map(|_| rng.gen()).collect();
        let mut restored = rng_from_state(saved);
        let replayed: Vec<u64> = (0..16).map(|_| restored.gen()).collect();
        assert_eq!(tail, replayed);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Reference values for FNV-1a 64-bit.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn empty_label_is_still_mixed() {
        // Even a degenerate label must not expose the raw seed.
        let mut rng = fork_rng(0, "");
        let v: u64 = rng.gen();
        let mut raw = DetRng::seed_from_u64(0);
        let w: u64 = raw.gen();
        assert_ne!(v, w);
    }
}

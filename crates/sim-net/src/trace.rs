//! Request-trace serialization: save and replay workloads as text.
//!
//! Policy comparisons are only meaningful on identical request sequences
//! (Table 3 replays one trace through every eviction policy), and real
//! deployments tune against *recorded* traces, not distributions. This
//! module gives traces a stable on-disk form:
//!
//! ```text
//! # harvest-trace v1
//! timestamp_ns,key,size_bytes
//! 1000000,42,1024
//! 2500000,7,4096
//! ```
//!
//! One CSV-style line per request, `#`-prefixed comments, headers
//! optional. The parser reports malformed lines with their numbers instead
//! of dying — recorded traces come from the same messy world as logs.

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::time::SimTime;
use crate::workload::Request;

/// Why a trace line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// Wrong number of comma-separated fields.
    WrongFieldCount {
        /// Fields found.
        got: usize,
    },
    /// A field failed numeric conversion.
    BadNumber {
        /// Which field (0-based).
        field: usize,
    },
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::WrongFieldCount { got } => {
                write!(f, "expected 3 comma-separated fields, got {got}")
            }
            TraceParseError::BadNumber { field } => write!(f, "field {field} is not a number"),
        }
    }
}

impl std::error::Error for TraceParseError {}

/// Writes a trace in the v1 text format.
pub fn write_trace<W: Write>(mut w: W, trace: &[Request]) -> io::Result<()> {
    writeln!(w, "# harvest-trace v1")?;
    writeln!(w, "timestamp_ns,key,size_bytes")?;
    for r in trace {
        writeln!(w, "{},{},{}", r.at.as_nanos(), r.key, r.size_bytes)?;
    }
    Ok(())
}

/// Renders a trace to a `String`.
pub fn trace_to_string(trace: &[Request]) -> String {
    let mut buf = Vec::new();
    write_trace(&mut buf, trace).expect("writing to memory cannot fail");
    String::from_utf8(buf).expect("trace text is ASCII")
}

fn parse_line(line: &str) -> Result<Request, TraceParseError> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 3 {
        return Err(TraceParseError::WrongFieldCount { got: fields.len() });
    }
    let num = |i: usize| -> Result<u64, TraceParseError> {
        fields[i]
            .trim()
            .parse()
            .map_err(|_| TraceParseError::BadNumber { field: i })
    };
    Ok(Request {
        at: SimTime::from_nanos(num(0)?),
        key: num(1)?,
        size_bytes: num(2)?,
    })
}

/// Parsed requests plus the malformed lines ((0-based) numbers and errors).
pub type TraceParseResult = (Vec<Request>, Vec<(usize, TraceParseError)>);

/// Reads a trace, skipping comments, blank lines, and the optional header.
/// Malformed data lines are returned with their (0-based) line numbers.
pub fn read_trace<R: BufRead>(reader: R) -> io::Result<TraceParseResult> {
    let mut requests = Vec::new();
    let mut errors = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with("timestamp_ns") {
            continue;
        }
        match parse_line(t) {
            Ok(r) => requests.push(r),
            Err(e) => errors.push((i, e)),
        }
    }
    Ok((requests, errors))
}

/// Parses a trace from a string.
pub fn trace_from_string(text: &str) -> TraceParseResult {
    read_trace(text.as_bytes()).expect("reading from memory cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Request> {
        vec![
            Request {
                at: SimTime::from_millis(1),
                key: 42,
                size_bytes: 1024,
            },
            Request {
                at: SimTime::from_millis(3),
                key: 7,
                size_bytes: 4096,
            },
        ]
    }

    #[test]
    fn round_trips() {
        let text = trace_to_string(&sample());
        assert!(text.starts_with("# harvest-trace v1\n"));
        let (back, errors) = trace_from_string(&text);
        assert!(errors.is_empty());
        assert_eq!(back, sample());
    }

    #[test]
    fn skips_comments_blank_lines_and_header() {
        let text = "# comment\n\n timestamp_ns,key,size_bytes \n1,2,3\n# more\n4,5,6\n";
        let (back, errors) = trace_from_string(text);
        assert!(errors.is_empty());
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].key, 5);
    }

    #[test]
    fn reports_malformed_lines_with_numbers() {
        let text = "1,2,3\nnot,a,number\n1,2\n4,5,6\n";
        let (back, errors) = trace_from_string(text);
        assert_eq!(back.len(), 2);
        assert_eq!(
            errors,
            vec![
                (1, TraceParseError::BadNumber { field: 0 }),
                (2, TraceParseError::WrongFieldCount { got: 2 }),
            ]
        );
    }

    #[test]
    fn whitespace_tolerant() {
        let (back, errors) = trace_from_string("  10 , 20 , 30  \n");
        assert!(errors.is_empty());
        assert_eq!(back[0].key, 20);
        assert_eq!(back[0].size_bytes, 30);
        assert_eq!(back[0].at.as_nanos(), 10);
    }

    #[test]
    fn error_display() {
        assert!(TraceParseError::WrongFieldCount { got: 1 }
            .to_string()
            .contains("expected 3"));
        assert!(TraceParseError::BadNumber { field: 2 }
            .to_string()
            .contains("field 2"));
    }
}

//! Online statistics used to summarise simulated measurements.
//!
//! Three tools, matched to what the paper's evaluation reports:
//!
//! * [`RunningStats`] — Welford's online mean/variance, for mean-latency and
//!   mean-reward rows (Tables 2, 3).
//! * [`QuantileSketch`] — exact quantiles from retained samples, for
//!   percentile error bars (Fig 3, 5th/95th) and p99 latency.
//! * [`Histogram`] — log-bucketed latency histogram for cheap distribution
//!   summaries in long simulations.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable for long streams; merging two accumulators is exact
/// (parallel variance formula), which the experiment harness uses to combine
/// per-trial statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation. Non-finite values are ignored (and counted
    /// nowhere): a single NaN latency sample must not poison a whole table.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (exact).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of (finite) observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance, or 0.0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Exact quantiles over retained samples.
///
/// Retains every pushed value; `quantile` sorts lazily on demand. Suitable
/// for the sample sizes in this reproduction (≤ millions), where exactness
/// matters more than memory.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QuantileSketch {
    samples: Vec<f64>,
    sorted: bool,
}

impl QuantileSketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation; non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        if x.is_finite() {
            self.samples.push(x);
            self.sorted = false;
        }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) with linear interpolation between order
    /// statistics, or `None` if empty. `q` outside \[0,1\] clamps.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples compare"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }

    /// Convenience: the median.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Convenience: the 99th percentile (the paper's load-balancing reward).
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Mean of retained samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }
}

/// A log-bucketed histogram for positive measurements (e.g. latencies).
///
/// Buckets are powers of `growth` starting at `first_bound`; values below
/// the first bound land in bucket 0, values above the last in the overflow
/// bucket. Quantile queries return the upper bound of the containing bucket
/// (a conservative estimate).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    first_bound: f64,
    growth: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` log-spaced buckets: the first
    /// bucket ends at `first_bound`, each subsequent at `growth ×` the
    /// previous, plus one overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `first_bound ≤ 0`, `growth ≤ 1`, or `buckets == 0`.
    pub fn new(first_bound: f64, growth: f64, buckets: usize) -> Self {
        assert!(first_bound > 0.0, "first bucket bound must be positive");
        assert!(growth > 1.0, "bucket growth factor must exceed 1");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            first_bound,
            growth,
            counts: vec![0; buckets + 1],
            total: 0,
        }
    }

    /// A reasonable default for request latencies in seconds: 64 buckets
    /// from 100 µs, growing 25% per bucket (covers ~100 µs to ~150 s).
    pub fn for_latency_secs() -> Self {
        Histogram::new(1e-4, 1.25, 64)
    }

    fn bucket_for(&self, x: f64) -> usize {
        if x <= self.first_bound {
            return 0;
        }
        let idx = ((x / self.first_bound).ln() / self.growth.ln()).ceil() as usize;
        idx.min(self.counts.len() - 1)
    }

    /// Records one measurement. Non-finite or negative values are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() || x < 0.0 {
            return;
        }
        let b = self.bucket_for(x);
        self.counts[b] += 1;
        self.total += 1;
    }

    /// Total recorded measurements.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Upper bound of the bucket containing the `q`-quantile, or `None` if
    /// empty.
    ///
    /// The rank convention matches [`QuantileSketch::quantile`]'s linear
    /// interpolation at position `q·(N−1)`: the bound covers the higher of
    /// the two order statistics the sketch would interpolate between, so it
    /// is a true upper bound of the exact quantile.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * (self.total - 1) as f64).ceil() as u64 + 1).min(self.total);
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(self.first_bound * self.growth.powi(i as i32));
            }
        }
        Some(self.first_bound * self.growth.powi((self.counts.len() - 1) as i32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn running_stats_ignore_non_finite() {
        let mut s = RunningStats::new();
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(1.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 1.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_into_empty() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        b.push(3.0);
        b.push(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 4.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut q = QuantileSketch::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            q.push(x);
        }
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.quantile(1.0), Some(4.0));
        assert_eq!(q.median(), Some(2.5));
        assert_eq!(q.quantile(1.5), Some(4.0)); // clamps
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let mut q = QuantileSketch::new();
        assert_eq!(q.median(), None);
        assert_eq!(q.mean(), None);
    }

    #[test]
    fn quantile_after_interleaved_pushes() {
        let mut q = QuantileSketch::new();
        q.push(10.0);
        assert_eq!(q.median(), Some(10.0));
        q.push(0.0);
        assert_eq!(q.median(), Some(5.0));
    }

    #[test]
    fn histogram_quantiles_bound_true_values() {
        let mut h = Histogram::for_latency_secs();
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0); // 1ms..1s uniform
        }
        let p50 = h.quantile_upper_bound(0.5).unwrap();
        assert!((0.5..=0.8).contains(&p50), "p50 bound {p50}");
        let p99 = h.quantile_upper_bound(0.99).unwrap();
        assert!((0.99..=1.6).contains(&p99), "p99 bound {p99}");
    }

    #[test]
    fn histogram_ignores_garbage() {
        let mut h = Histogram::for_latency_secs();
        h.record(-1.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_upper_bound(0.5), None);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::new(1.0, 2.0, 4);
        h.record(1e12);
        assert_eq!(h.count(), 1);
        // Overflow bucket upper bound is first_bound * growth^buckets.
        assert_eq!(h.quantile_upper_bound(1.0), Some(16.0));
    }

    #[test]
    #[should_panic(expected = "growth factor")]
    fn histogram_rejects_bad_growth() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}

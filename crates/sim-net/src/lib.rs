//! Discrete-event simulation substrate for the `harvest` workspace.
//!
//! This crate is the foundation every simulator in the reproduction is built
//! on. It deliberately follows the design philosophy of event-driven network
//! stacks such as smoltcp: simplicity and robustness over cleverness, no
//! macro or type tricks, deterministic behaviour, and extensive
//! documentation.
//!
//! The pieces:
//!
//! * [`time`] — a nanosecond-resolution simulated clock ([`SimTime`],
//!   [`SimDuration`]) that is totally ordered and hashable, so it can key
//!   event queues without floating-point comparison hazards.
//! * [`event`] — a generic, FIFO-stable [`event::EventQueue`] plus the
//!   [`event::Simulator`] driver loop.
//! * [`rng`] — deterministic random-number plumbing. Every simulator takes a
//!   single master seed; component RNGs are forked from it by label so that
//!   adding a component never perturbs the random stream of another.
//! * [`workload`] — request/arrival generators (Poisson, deterministic rate,
//!   on/off bursts) and popularity distributions (uniform, Zipf, the paper's
//!   big/small item mix).
//! * [`fault`] — Chaos-Monkey-style fault injection: time-keyed component
//!   faults (crashes, slowdowns, latency spikes) used to widen exploration
//!   coverage per §5 of the paper, and operation-indexed [`fault::ChaosPlan`]
//!   schedules that drive the serve loop's chaos-hardening tests.
//! * [`stats`] — online statistics (Welford mean/variance, exact quantiles,
//!   log-bucketed histograms) used to report latency distributions.
//! * [`trace`] — request-trace serialization, so recorded workloads replay
//!   identically across policy comparisons and tool versions.
//!
//! Everything is synchronous and single-threaded by design: the workloads in
//! this reproduction are CPU-bound simulations, where an async runtime would
//! add overhead and nondeterminism without benefit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod fault;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;
pub mod workload;

pub use event::{EventQueue, ScheduledEvent, Simulator};
pub use fault::{
    AtRestFault, ChaosHorizon, ChaosPlan, ChaosPlanConfig, CheckpointFault, RewardFault,
    WriterFault,
};
pub use rng::{fork_rng, rng_from_state, rng_state, DetRng};
pub use time::{SimDuration, SimTime};

//! Workload generation: arrival processes and key-popularity distributions.
//!
//! The simulators consume a stream of [`Request`]s. Arrival times come from
//! an [`ArrivalProcess`]; which key a request touches comes from a
//! [`KeyDistribution`]. Both are deterministic given an RNG, so workloads
//! replay exactly across policy comparisons — the same access sequence is
//! presented to every eviction policy in Table 3, for instance, so hit-rate
//! differences are attributable to the policy alone.

use rand::Rng;
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// One generated request: an arrival instant plus the key it touches and the
/// payload size in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// When the request arrives.
    pub at: SimTime,
    /// The key (item, machine, endpoint…) the request addresses.
    pub key: u64,
    /// Payload size in bytes.
    pub size_bytes: u64,
}

/// A process generating successive interarrival gaps.
pub trait ArrivalProcess {
    /// The gap until the next arrival.
    fn next_gap(&mut self, rng: &mut DetRng) -> SimDuration;
}

/// Poisson arrivals: exponential interarrival gaps at `rate` requests/second.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    exp: Exp<f64>,
}

impl PoissonArrivals {
    /// Creates a Poisson process with the given mean rate (requests/second).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive, got {rate}"
        );
        PoissonArrivals {
            exp: Exp::new(rate).expect("validated rate"),
        }
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_gap(&mut self, rng: &mut DetRng) -> SimDuration {
        SimDuration::from_secs_f64(self.exp.sample(rng))
    }
}

/// Deterministic arrivals: a fixed gap between requests. Useful in tests
/// where exact timing matters.
#[derive(Debug, Clone, Copy)]
pub struct UniformArrivals {
    gap: SimDuration,
}

impl UniformArrivals {
    /// Creates a process with a constant `gap` between arrivals.
    pub fn new(gap: SimDuration) -> Self {
        UniformArrivals { gap }
    }

    /// Creates a process with the given rate (requests/second).
    pub fn from_rate(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        UniformArrivals {
            gap: SimDuration::from_secs_f64(1.0 / rate),
        }
    }
}

impl ArrivalProcess for UniformArrivals {
    fn next_gap(&mut self, _rng: &mut DetRng) -> SimDuration {
        self.gap
    }
}

/// On/off bursty arrivals: alternates between a high-rate "on" phase and a
/// low-rate "off" phase, each with exponentially distributed dwell time.
/// Models diurnal or flash-crowd traffic that breaks the i.i.d. context
/// assumption (paper §5, violation of A2).
#[derive(Debug, Clone)]
pub struct BurstyArrivals {
    on: PoissonArrivals,
    off: PoissonArrivals,
    dwell: Exp<f64>,
    in_on_phase: bool,
    phase_left: SimDuration,
}

impl BurstyArrivals {
    /// Creates a bursty process alternating `on_rate` and `off_rate`
    /// requests/second with mean phase length `mean_dwell`.
    pub fn new(on_rate: f64, off_rate: f64, mean_dwell: SimDuration) -> Self {
        assert!(mean_dwell > SimDuration::ZERO, "dwell must be positive");
        BurstyArrivals {
            on: PoissonArrivals::new(on_rate),
            off: PoissonArrivals::new(off_rate),
            dwell: Exp::new(1.0 / mean_dwell.as_secs_f64()).expect("positive dwell"),
            in_on_phase: true,
            phase_left: mean_dwell,
        }
    }
}

impl ArrivalProcess for BurstyArrivals {
    fn next_gap(&mut self, rng: &mut DetRng) -> SimDuration {
        let gap = if self.in_on_phase {
            self.on.next_gap(rng)
        } else {
            self.off.next_gap(rng)
        };
        if gap >= self.phase_left {
            self.in_on_phase = !self.in_on_phase;
            self.phase_left = SimDuration::from_secs_f64(self.dwell.sample(rng));
        } else {
            self.phase_left = self.phase_left - gap;
        }
        gap
    }
}

/// A distribution over keys (and their payload sizes).
pub trait KeyDistribution {
    /// Samples a key.
    fn sample_key(&mut self, rng: &mut DetRng) -> u64;

    /// Payload size in bytes for `key`.
    fn size_of(&self, key: u64) -> u64;

    /// Number of distinct keys, if finite.
    fn key_count(&self) -> Option<u64>;
}

/// Uniform popularity over `n` keys of constant size.
#[derive(Debug, Clone, Copy)]
pub struct UniformKeys {
    n: u64,
    size: u64,
}

impl UniformKeys {
    /// Creates a uniform distribution over keys `0..n`, each of `size` bytes.
    pub fn new(n: u64, size: u64) -> Self {
        assert!(n > 0, "need at least one key");
        UniformKeys { n, size }
    }
}

impl KeyDistribution for UniformKeys {
    fn sample_key(&mut self, rng: &mut DetRng) -> u64 {
        rng.gen_range(0..self.n)
    }

    fn size_of(&self, _key: u64) -> u64 {
        self.size
    }

    fn key_count(&self) -> Option<u64> {
        Some(self.n)
    }
}

/// Zipf popularity over `n` keys: key `k` has weight `1/(k+1)^s`.
///
/// Sampling uses the precomputed cumulative distribution with binary search;
/// O(log n) per sample, exact (no rejection), deterministic.
#[derive(Debug, Clone)]
pub struct ZipfKeys {
    cdf: Vec<f64>,
    size: u64,
}

impl ZipfKeys {
    /// Creates a Zipf(`s`) distribution over keys `0..n` of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: u64, s: f64, size: u64) -> Self {
        assert!(n > 0, "need at least one key");
        assert!(s.is_finite() && s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfKeys { cdf, size }
    }
}

impl KeyDistribution for ZipfKeys {
    fn sample_key(&mut self, rng: &mut DetRng) -> u64 {
        let u: f64 = rng.gen();
        // First index with cdf >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) as u64
    }

    fn size_of(&self, _key: u64) -> u64 {
        self.size
    }

    fn key_count(&self) -> Option<u64> {
        Some(self.cdf.len() as u64)
    }
}

/// The paper's Table 3 workload: a few frequently-queried large items and
/// many less-frequently-queried small items.
///
/// "The large items are queried twice as frequently but are four times as
/// big: it is thus more efficient to cache the small items." Large keys are
/// `0..n_large`; small keys are `n_large..n_large+n_small`.
#[derive(Debug, Clone)]
pub struct BigSmallKeys {
    n_large: u64,
    n_small: u64,
    large_size: u64,
    small_size: u64,
    /// Probability that a request hits the large-item class.
    p_large: f64,
}

impl BigSmallKeys {
    /// Creates the big/small mix.
    ///
    /// Each *individual* large item is `freq_ratio` times as popular as each
    /// individual small item, and `size_ratio` times as big. Within a class,
    /// popularity is uniform.
    pub fn new(
        n_large: u64,
        n_small: u64,
        small_size: u64,
        size_ratio: u64,
        freq_ratio: f64,
    ) -> Self {
        assert!(n_large > 0 && n_small > 0, "both classes need keys");
        assert!(freq_ratio > 0.0, "frequency ratio must be positive");
        let w_large = n_large as f64 * freq_ratio;
        let w_small = n_small as f64;
        BigSmallKeys {
            n_large,
            n_small,
            large_size: small_size * size_ratio,
            small_size,
            p_large: w_large / (w_large + w_small),
        }
    }

    /// The paper's configuration: large items 2× as frequent and 4× as big.
    pub fn paper_default(n_large: u64, n_small: u64, small_size: u64) -> Self {
        BigSmallKeys::new(n_large, n_small, small_size, 4, 2.0)
    }

    /// Whether `key` belongs to the large-item class.
    pub fn is_large(&self, key: u64) -> bool {
        key < self.n_large
    }

    /// Probability a single request addresses the large class.
    pub fn p_large(&self) -> f64 {
        self.p_large
    }
}

impl KeyDistribution for BigSmallKeys {
    fn sample_key(&mut self, rng: &mut DetRng) -> u64 {
        if rng.gen_bool(self.p_large) {
            rng.gen_range(0..self.n_large)
        } else {
            self.n_large + rng.gen_range(0..self.n_small)
        }
    }

    fn size_of(&self, key: u64) -> u64 {
        if self.is_large(key) {
            self.large_size
        } else {
            self.small_size
        }
    }

    fn key_count(&self) -> Option<u64> {
        Some(self.n_large + self.n_small)
    }
}

/// Combines an arrival process and a key distribution into a finite request
/// trace.
pub struct WorkloadGenerator<A, K> {
    arrivals: A,
    keys: K,
    clock: SimTime,
}

impl<A: ArrivalProcess, K: KeyDistribution> WorkloadGenerator<A, K> {
    /// Creates a generator starting at t = 0.
    pub fn new(arrivals: A, keys: K) -> Self {
        WorkloadGenerator {
            arrivals,
            keys,
            clock: SimTime::ZERO,
        }
    }

    /// Generates the next request.
    pub fn next_request(&mut self, rng: &mut DetRng) -> Request {
        self.clock += self.arrivals.next_gap(rng);
        let key = self.keys.sample_key(rng);
        Request {
            at: self.clock,
            key,
            size_bytes: self.keys.size_of(key),
        }
    }

    /// Generates a trace of `n` requests.
    pub fn take(&mut self, n: usize, rng: &mut DetRng) -> Vec<Request> {
        (0..n).map(|_| self.next_request(rng)).collect()
    }

    /// Read access to the key distribution (e.g. for size lookups).
    pub fn keys(&self) -> &K {
        &self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fork_rng;

    #[test]
    fn poisson_mean_rate_is_respected() {
        let mut rng = fork_rng(1, "poisson");
        let mut p = PoissonArrivals::new(100.0);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| p.next_gap(&mut rng).as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 0.01).abs() < 0.001, "mean gap {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn poisson_rejects_zero_rate() {
        let _ = PoissonArrivals::new(0.0);
    }

    #[test]
    fn uniform_arrivals_are_exact() {
        let mut rng = fork_rng(1, "uniform");
        let mut u = UniformArrivals::from_rate(10.0);
        assert_eq!(u.next_gap(&mut rng), SimDuration::from_millis(100));
    }

    #[test]
    fn bursty_switches_phases() {
        let mut rng = fork_rng(3, "bursty");
        let mut b = BurstyArrivals::new(1000.0, 1.0, SimDuration::from_secs(1));
        // Collect gaps; must see both very small (on) and large (off) gaps.
        let gaps: Vec<f64> = (0..5000)
            .map(|_| b.next_gap(&mut rng).as_secs_f64())
            .collect();
        let small = gaps.iter().filter(|&&g| g < 0.01).count();
        let large = gaps.iter().filter(|&&g| g > 0.2).count();
        assert!(small > 0, "no on-phase gaps observed");
        assert!(large > 0, "no off-phase gaps observed");
    }

    #[test]
    fn zipf_head_is_more_popular() {
        let mut rng = fork_rng(5, "zipf");
        let mut z = ZipfKeys::new(100, 1.0, 1);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample_key(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10], "rank-0 must beat rank-10");
        assert!(counts[10] > counts[90], "rank-10 must beat rank-90");
        // Rank-0 to rank-1 ratio should be near 2 for s=1.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 2.0).abs() < 0.5, "head ratio {ratio}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let mut rng = fork_rng(6, "zipf0");
        let mut z = ZipfKeys::new(10, 0.0, 1);
        let mut counts = vec![0u32; 10];
        for _ in 0..50_000 {
            counts[z.sample_key(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5_000.0).abs() < 400.0, "non-uniform count {c}");
        }
    }

    #[test]
    fn big_small_matches_paper_ratios() {
        let w = BigSmallKeys::paper_default(5, 100, 1000);
        assert_eq!(w.size_of(0), 4000); // large = 4× small
        assert_eq!(w.size_of(50), 1000);
        assert!(w.is_large(4));
        assert!(!w.is_large(5));
        // p_large = 5*2 / (5*2 + 100) = 10/110.
        assert!((w.p_large() - 10.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn big_small_empirical_frequency() {
        let mut rng = fork_rng(7, "bigsmall");
        let mut w = BigSmallKeys::paper_default(5, 100, 1000);
        let n = 100_000;
        let mut large_hits = 0u64;
        let mut per_large = [0u64; 5];
        let mut per_small_total = 0u64;
        for _ in 0..n {
            let k = w.sample_key(&mut rng);
            if w.is_large(k) {
                large_hits += 1;
                per_large[k as usize] += 1;
            } else {
                per_small_total += 1;
            }
        }
        let p = large_hits as f64 / n as f64;
        assert!((p - 10.0 / 110.0).abs() < 0.01, "large share {p}");
        // Each large item should be ~2x each small item.
        let mean_large = per_large.iter().sum::<u64>() as f64 / 5.0;
        let mean_small = per_small_total as f64 / 100.0;
        let ratio = mean_large / mean_small;
        assert!((ratio - 2.0).abs() < 0.3, "freq ratio {ratio}");
    }

    #[test]
    fn generator_times_are_monotone() {
        let mut rng = fork_rng(8, "gen");
        let mut g = WorkloadGenerator::new(PoissonArrivals::new(50.0), UniformKeys::new(10, 64));
        let trace = g.take(1000, &mut rng);
        assert_eq!(trace.len(), 1000);
        for w in trace.windows(2) {
            assert!(w[0].at <= w[1].at, "arrivals must be monotone");
        }
        assert!(trace.iter().all(|r| r.key < 10));
        assert!(trace.iter().all(|r| r.size_bytes == 64));
    }

    #[test]
    fn same_seed_same_trace() {
        let make = || {
            let mut rng = fork_rng(9, "trace");
            let mut g =
                WorkloadGenerator::new(PoissonArrivals::new(50.0), ZipfKeys::new(100, 0.8, 128));
            g.take(100, &mut rng)
        };
        assert_eq!(make(), make());
    }
}

//! Property tests for the load-balancer simulator.

use proptest::prelude::*;

use harvest_core::Context;
use harvest_sim_lb::config::{ClusterConfig, ServerConfig};
use harvest_sim_lb::context::LbContext;
use harvest_sim_lb::policy::{
    EpisodeWeightedRouting, LeastLoadedRouting, RandomRouting, RoundRobinRouting, RoutingPolicy,
    SendToRouting, WeightedRouting,
};
use harvest_sim_lb::sim::{run_simulation, SimConfig};
use harvest_sim_net::rng::fork_rng;

fn arb_cluster() -> impl Strategy<Value = ClusterConfig> {
    (
        proptest::collection::vec((0.05f64..0.5, 0.0f64..0.005), 1..5),
        10.0f64..150.0,
        0.0f64..0.2,
    )
        .prop_map(|(servers, rate, noise)| ClusterConfig {
            servers: servers
                .into_iter()
                .map(|(b, s)| ServerConfig::single_class(b, s))
                .collect(),
            class_probs: vec![1.0],
            arrival_rate: rate,
            latency_noise: noise,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn simulation_invariants_hold_for_any_cluster_and_policy(
        cluster in arb_cluster(),
        seed in 0u64..100,
        policy_pick in 0usize..5
    ) {
        let k = cluster.num_servers();
        let cfg = SimConfig::table2(cluster, 600, seed);
        let mut policies: Vec<Box<dyn RoutingPolicy>> = vec![
            Box::new(RandomRouting),
            Box::new(RoundRobinRouting::default()),
            Box::new(LeastLoadedRouting),
            Box::new(SendToRouting(policy_pick)),
            Box::new(EpisodeWeightedRouting::new(50, 0.5)),
        ];
        let policy = &mut policies[policy_pick];
        let run = run_simulation(&cfg, policy.as_mut());
        prop_assert_eq!(run.requests.len(), 600);
        for r in &run.requests {
            prop_assert!(r.server < k);
            prop_assert!(r.latency_s > 0.0 && r.latency_s.is_finite());
            prop_assert_eq!(r.connections.len(), k);
            if let Some(p) = r.propensity {
                prop_assert!(p > 0.0 && p <= 1.0);
            }
        }
        // Arrival times are monotone.
        for w in run.requests.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
        prop_assert!(run.mean_latency_s > 0.0);
        prop_assert!(run.p99_latency_s >= run.mean_latency_s * 0.5);
    }

    #[test]
    fn access_log_round_trips_for_any_run(
        cluster in arb_cluster(), seed in 0u64..50
    ) {
        let cfg = SimConfig::table2(cluster, 300, seed);
        let run = run_simulation(&cfg, &mut RandomRouting);
        let text = run.nginx_access_log();
        let (lines, errors) = harvest_log::nginx::parse_log(&text);
        prop_assert!(errors.is_empty(), "{errors:?}");
        prop_assert_eq!(lines.len(), run.requests.len());
        for (line, req) in lines.iter().zip(&run.requests) {
            prop_assert_eq!(line.upstream, req.server);
            prop_assert_eq!(line.request_id, req.request_id);
            prop_assert!((line.request_time - req.latency_s).abs() < 1e-5);
        }
    }

    #[test]
    fn weighted_routing_empirical_shares_match(
        w0 in 1.0f64..10.0, w1 in 1.0f64..10.0, seed in 0u64..30
    ) {
        let mut pol = WeightedRouting::new(vec![w0, w1]);
        let ctx = LbContext::single_class(vec![0, 0]);
        let mut rng = fork_rng(seed, "prop-weighted");
        let n = 4000;
        let mut hits0 = 0;
        for _ in 0..n {
            let d = pol.route(&ctx, &mut rng);
            if d.server == 0 {
                hits0 += 1;
            }
        }
        let expect = w0 / (w0 + w1);
        let got = hits0 as f64 / n as f64;
        prop_assert!((got - expect).abs() < 0.05, "share {got} vs {expect}");
    }

    #[test]
    fn cb_context_encoding_is_well_formed(
        conns in proptest::collection::vec(0u32..200, 1..6),
        class in 0usize..3
    ) {
        let num_classes = 3;
        let ctx = LbContext {
            connections: conns.clone(),
            request_class: class,
            num_classes,
        };
        let cb = ctx.to_cb_context();
        let k = conns.len();
        prop_assert_eq!(cb.num_actions(), k);
        prop_assert_eq!(cb.shared_features().len(), k + num_classes);
        for a in 0..k {
            let f = cb.action_features(a);
            prop_assert_eq!(f.len(), 1 + k + k * num_classes);
            // Identity one-hot is at positions 1..=k.
            for j in 0..k {
                prop_assert_eq!(f[1 + j], if j == a { 1.0 } else { 0.0 });
            }
            // Exactly one interaction bit set.
            let set: f64 = f[1 + k..].iter().sum();
            prop_assert_eq!(set, 1.0);
        }
    }
}

//! Cluster and server configuration.

use serde::{Deserialize, Serialize};

/// One backend server's latency model (Fig 5): for a request of class `k`
/// admitted with `c` open connections,
///
/// ```text
/// latency(k, c) = bases[k] + slope · c
/// ```
///
/// Per-class bases model server heterogeneity (a server with a fast path
/// for one request type), which is the "request type" context of Table 1;
/// a single-entry `bases` gives the homogeneous Fig 5 cartoon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Base latency per request class, in seconds.
    pub bases: Vec<f64>,
    /// Additional latency per open connection, in seconds.
    pub per_conn_latency_s: f64,
}

impl ServerConfig {
    /// A server with one request class.
    pub fn single_class(base_latency_s: f64, per_conn_latency_s: f64) -> Self {
        ServerConfig {
            bases: vec![base_latency_s],
            per_conn_latency_s,
        }
    }

    /// The deterministic service latency for a class-`class` request with
    /// `conns` open connections.
    pub fn latency(&self, class: usize, conns: u32) -> f64 {
        let base = self.bases[class.min(self.bases.len() - 1)];
        base + self.per_conn_latency_s * conns as f64
    }

    /// The base latency averaged over a class distribution.
    pub fn mean_base(&self, class_probs: &[f64]) -> f64 {
        class_probs
            .iter()
            .enumerate()
            .map(|(k, &p)| p * self.bases[k.min(self.bases.len() - 1)])
            .sum()
    }
}

/// A cluster of backend servers plus workload parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// The backend servers.
    pub servers: Vec<ServerConfig>,
    /// Probability of each request class (sums to 1).
    pub class_probs: Vec<f64>,
    /// Total arrival rate in requests/second (Poisson).
    pub arrival_rate: f64,
    /// Multiplicative latency noise: each service time is scaled by a
    /// uniform factor in `[1 − noise, 1 + noise]`. Zero for a purely
    /// deterministic system.
    pub latency_noise: f64,
}

impl ClusterConfig {
    /// The Fig 5 / Table 2 two-server system, calibrated so the paper's
    /// shape holds:
    ///
    /// * server 1: base 0.20 s for both request classes;
    /// * server 2: base 0.12 s for class-A requests (30 % of traffic — it
    ///   has a fast path for them) but 0.52 s for class-B, i.e. **0.40 s on
    ///   average: slower than server 1 by an additive constant**, as in
    ///   Fig 5;
    /// * both have slope 0.0072 s per open connection; 100 req/s Poisson.
    ///
    /// Consequences (matching Table 2): random routing settles near 0.45 s;
    /// "send to 1" looks like ≈ 0.31 s in randomly-logged data but
    /// overloads server 1 to ≈ 0.7 s when deployed; least-loaded improves
    /// on random but ignores request class; a CB policy that learns the
    /// class × server interaction beats least-loaded.
    pub fn fig5() -> Self {
        ClusterConfig {
            servers: vec![
                ServerConfig {
                    bases: vec![0.20, 0.20],
                    per_conn_latency_s: 0.0072,
                },
                ServerConfig {
                    bases: vec![0.12, 0.52],
                    per_conn_latency_s: 0.0072,
                },
            ],
            class_probs: vec![0.3, 0.7],
            arrival_rate: 100.0,
            latency_noise: 0.05,
        }
    }

    /// A uniform single-class cluster of `n` identical servers (used by the
    /// hierarchy experiments).
    pub fn uniform(n: usize, base_latency_s: f64, per_conn_latency_s: f64, rate: f64) -> Self {
        assert!(n > 0, "need at least one server");
        ClusterConfig {
            servers: vec![ServerConfig::single_class(base_latency_s, per_conn_latency_s); n],
            class_probs: vec![1.0],
            arrival_rate: rate,
            latency_noise: 0.05,
        }
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Number of request classes.
    pub fn num_classes(&self) -> usize {
        self.class_probs.len()
    }

    /// Validates the configuration, panicking with a clear message on
    /// nonsense values.
    pub fn validate(&self) {
        assert!(!self.servers.is_empty(), "cluster needs servers");
        assert!(
            self.arrival_rate.is_finite() && self.arrival_rate > 0.0,
            "arrival rate must be positive"
        );
        assert!(
            (0.0..1.0).contains(&self.latency_noise),
            "latency noise must be in [0, 1)"
        );
        assert!(!self.class_probs.is_empty(), "need at least one class");
        let psum: f64 = self.class_probs.iter().sum();
        assert!(
            (psum - 1.0).abs() < 1e-9 && self.class_probs.iter().all(|&p| p >= 0.0),
            "class probabilities must form a distribution"
        );
        for (i, s) in self.servers.iter().enumerate() {
            assert!(!s.bases.is_empty(), "server {i}: needs a base latency");
            for &b in &s.bases {
                assert!(
                    b > 0.0 && b.is_finite(),
                    "server {i}: base latency must be positive"
                );
            }
            assert!(
                s.per_conn_latency_s >= 0.0 && s.per_conn_latency_s.is_finite(),
                "server {i}: per-connection latency must be non-negative"
            );
        }
    }

    /// The steady-state latency of routing a fraction `share` of total
    /// traffic (class mix unchanged) to server `i`, from Little's-law
    /// self-consistency: `L = b̄ / (1 − slope · λ · share)` (unstable
    /// shares return ∞).
    ///
    /// Analytic cross-check for the simulator's equilibria.
    pub fn steady_state_latency(&self, i: usize, share: f64) -> f64 {
        let s = &self.servers[i];
        let util = s.per_conn_latency_s * self.arrival_rate * share;
        if util >= 1.0 {
            f64::INFINITY
        } else {
            s.mean_base(&self.class_probs) / (1.0 - util)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_linear_in_connections() {
        let s = ServerConfig::single_class(0.2, 0.01);
        assert_eq!(s.latency(0, 0), 0.2);
        assert!((s.latency(0, 10) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn per_class_bases_select_by_class() {
        let s = ServerConfig {
            bases: vec![0.1, 0.5],
            per_conn_latency_s: 0.0,
        };
        assert_eq!(s.latency(0, 0), 0.1);
        assert_eq!(s.latency(1, 0), 0.5);
        // Out-of-range class clamps to the last base.
        assert_eq!(s.latency(9, 0), 0.5);
        assert!((s.mean_base(&[0.5, 0.5]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn fig5_has_the_paper_structure() {
        let c = ClusterConfig::fig5();
        c.validate();
        assert_eq!(c.num_servers(), 2);
        assert_eq!(c.num_classes(), 2);
        // Server 2 slower by an additive constant *on average*, same slope.
        let b1 = c.servers[0].mean_base(&c.class_probs);
        let b2 = c.servers[1].mean_base(&c.class_probs);
        assert!((b2 - b1 - 0.2).abs() < 1e-9, "Δ = {}", b2 - b1);
        assert_eq!(
            c.servers[0].per_conn_latency_s,
            c.servers[1].per_conn_latency_s
        );
        // But server 2 has the fast path for class A.
        assert!(c.servers[1].bases[0] < c.servers[0].bases[0]);
    }

    #[test]
    fn fig5_steady_state_predicts_table2_shape() {
        let c = ClusterConfig::fig5();
        // Random routing: each server gets half the traffic.
        let random_mean = (c.steady_state_latency(0, 0.5) + c.steady_state_latency(1, 0.5)) / 2.0;
        assert!((0.40..0.52).contains(&random_mean), "random {random_mean}");
        // Server 1 under random routing looks fast (the OPE estimate).
        let s1_under_random = c.steady_state_latency(0, 0.5);
        assert!((0.28..0.36).contains(&s1_under_random), "{s1_under_random}");
        // But sending everything to it is catastrophic.
        let s1_overloaded = c.steady_state_latency(0, 1.0);
        assert!(
            (0.6..0.9).contains(&s1_overloaded),
            "send-to-1 {s1_overloaded}"
        );
    }

    #[test]
    fn unstable_share_is_infinite() {
        let c = ClusterConfig::uniform(1, 0.1, 0.02, 100.0);
        assert!(c.steady_state_latency(0, 1.0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn validate_rejects_zero_rate() {
        let mut c = ClusterConfig::fig5();
        c.arrival_rate = 0.0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "base latency")]
    fn validate_rejects_negative_latency() {
        let mut c = ClusterConfig::fig5();
        c.servers[0].bases[0] = -1.0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "distribution")]
    fn validate_rejects_bad_class_probs() {
        let mut c = ClusterConfig::fig5();
        c.class_probs = vec![0.5, 0.2];
        c.validate();
    }
}

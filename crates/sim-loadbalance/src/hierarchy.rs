//! Two-level (Front Door) load balancing — Fig 6.
//!
//! "Azure's edge proxy (Front Door) load balances over tens of service
//! endpoints, while standard load balancers distribute requests within the
//! local clusters. This reduces the action space at each level, allowing us
//! to apply our methodology to both levels if desired" (paper §5).
//!
//! A flat balancer over `E × S` servers explores each action with
//! propensity `1/(E·S)`; the hierarchy explores with `1/E` at the edge and
//! `1/S` locally. Since Eq. 1 accuracy scales as `1/√(εN)`, each level of
//! the hierarchy needs far less data — the comparison the Fig 6 bench
//! quantifies.

use rand::Rng;

use harvest_core::sample::{Dataset, LoggedDecision};
use harvest_core::SimpleContext;
use harvest_sim_net::event::{Control, Simulator};
use harvest_sim_net::rng::fork_rng;
use harvest_sim_net::stats::RunningStats;
use harvest_sim_net::time::{SimDuration, SimTime};

/// Configuration of the hierarchical system.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// Number of service endpoints (clusters) the edge balances over.
    pub endpoints: usize,
    /// Servers inside each endpoint's local cluster.
    pub servers_per_endpoint: usize,
    /// Base latency of endpoint 0's servers; endpoint `i` is
    /// `(1 + 0.08·i)×` slower (so the edge has something to learn).
    pub base_latency_s: f64,
    /// Per-connection latency slope (uniform across servers).
    pub per_conn_latency_s: f64,
    /// Total Poisson arrival rate, requests/second.
    pub arrival_rate: f64,
    /// Requests to simulate.
    pub requests: usize,
    /// Warmup requests excluded from stats.
    pub warmup: usize,
    /// Master seed.
    pub seed: u64,
}

impl HierarchyConfig {
    /// A Front-Door-like default: 5 endpoints × 5 servers.
    pub fn front_door(requests: usize, seed: u64) -> Self {
        HierarchyConfig {
            endpoints: 5,
            servers_per_endpoint: 5,
            base_latency_s: 0.15,
            per_conn_latency_s: 0.004,
            arrival_rate: 120.0,
            requests,
            warmup: (requests / 10).min(2_000),
            seed,
        }
    }

    /// Exploration floor of a *flat* uniform policy over all servers.
    pub fn flat_epsilon(&self) -> f64 {
        1.0 / (self.endpoints * self.servers_per_endpoint) as f64
    }

    /// Exploration floor of the uniform edge decision.
    pub fn edge_epsilon(&self) -> f64 {
        1.0 / self.endpoints as f64
    }

    /// Exploration floor of the uniform local decision.
    pub fn local_epsilon(&self) -> f64 {
        1.0 / self.servers_per_endpoint as f64
    }
}

/// The result of a hierarchical exploration run: one harvested dataset per
/// decision level.
#[derive(Debug, Clone)]
pub struct HierarchicalRunResult {
    /// Mean post-warmup latency, seconds.
    pub mean_latency_s: f64,
    /// Edge-level exploration data: context = per-endpoint total open
    /// connections, action = endpoint, propensity = 1/E.
    pub edge_dataset: Dataset<SimpleContext>,
    /// Local-level exploration data: context = per-server connections
    /// within the chosen endpoint, action = server, propensity = 1/S.
    pub local_dataset: Dataset<SimpleContext>,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival,
    Completion { endpoint: usize, server: usize },
}

/// Runs uniform-random two-level routing and harvests both decision levels.
pub fn run_hierarchical(cfg: &HierarchyConfig) -> HierarchicalRunResult {
    assert!(cfg.endpoints > 0 && cfg.servers_per_endpoint > 0);
    assert!(cfg.requests > cfg.warmup);
    let mut arrival_rng = fork_rng(cfg.seed, "fd-arrivals");
    let mut route_rng = fork_rng(cfg.seed, "fd-routing");

    let e = cfg.endpoints;
    let s = cfg.servers_per_endpoint;
    let mut conns = vec![vec![0u32; s]; e];
    let mut mean = RunningStats::new();
    let mut edge_data = Dataset::new();
    let mut local_data = Dataset::new();
    let mut issued = 0usize;

    let mut sim: Simulator<Event> = Simulator::new();
    sim.schedule(SimTime::ZERO, Event::Arrival);
    sim.run(|sim, ev| {
        match ev.event {
            Event::Completion { endpoint, server } => {
                conns[endpoint][server] = conns[endpoint][server].saturating_sub(1);
            }
            Event::Arrival => {
                // Edge decision: pick an endpoint uniformly.
                let endpoint_loads: Vec<f64> = conns
                    .iter()
                    .map(|c| c.iter().map(|&x| x as f64).sum::<f64>() / 10.0)
                    .collect();
                let endpoint = route_rng.gen_range(0..e);
                // Local decision: pick a server uniformly.
                let server_loads: Vec<f64> =
                    conns[endpoint].iter().map(|&x| x as f64 / 10.0).collect();
                let server = route_rng.gen_range(0..s);

                let base = cfg.base_latency_s * (1.0 + 0.08 * endpoint as f64);
                let latency = base + cfg.per_conn_latency_s * conns[endpoint][server] as f64;
                conns[endpoint][server] += 1;
                sim.schedule(
                    sim.now() + SimDuration::from_secs_f64(latency),
                    Event::Completion { endpoint, server },
                );

                if issued >= cfg.warmup {
                    mean.push(latency);
                    edge_data
                        .push(LoggedDecision {
                            context: SimpleContext::new(endpoint_loads, e),
                            action: endpoint,
                            reward: -latency,
                            propensity: 1.0 / e as f64,
                        })
                        .expect("valid edge sample");
                    local_data
                        .push(LoggedDecision {
                            context: SimpleContext::new(server_loads, s),
                            action: server,
                            reward: -latency,
                            propensity: 1.0 / s as f64,
                        })
                        .expect("valid local sample");
                }

                issued += 1;
                if issued < cfg.requests {
                    let u: f64 = arrival_rng.gen_range(f64::EPSILON..1.0);
                    let next = sim.now() + SimDuration::from_secs_f64(-u.ln() / cfg.arrival_rate);
                    sim.schedule(next, Event::Arrival);
                }
            }
        }
        Control::Continue
    });

    HierarchicalRunResult {
        mean_latency_s: mean.mean(),
        edge_dataset: edge_data,
        local_dataset: local_data,
    }
}

/// A per-level decision rule for the two-level system: picks among
/// `num_choices` given the per-choice load features, reporting a propensity
/// when randomized.
pub trait LevelPolicy {
    /// Chooses an index in `0..loads.len()` given scaled load features.
    fn choose(
        &mut self,
        loads: &[f64],
        rng: &mut harvest_sim_net::rng::DetRng,
    ) -> (usize, Option<f64>);

    /// Display name.
    fn name(&self) -> String;
}

/// Uniform random at a level (the exploration deployment).
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformLevel;

impl LevelPolicy for UniformLevel {
    fn choose(
        &mut self,
        loads: &[f64],
        rng: &mut harvest_sim_net::rng::DetRng,
    ) -> (usize, Option<f64>) {
        use rand::Rng;
        let k = loads.len();
        (rng.gen_range(0..k), Some(1.0 / k as f64))
    }

    fn name(&self) -> String {
        "uniform".to_string()
    }
}

/// Greedy on a learned per-slot linear model over the level's load vector —
/// deploys a `harvest-core` per-action scorer at one level of the
/// hierarchy.
#[derive(Debug, Clone)]
pub struct CbLevel {
    scorer: harvest_core::scorer::LinearScorer,
}

impl CbLevel {
    /// Wraps a per-action scorer trained on this level's harvested data.
    pub fn new(scorer: harvest_core::scorer::LinearScorer) -> Self {
        CbLevel { scorer }
    }

    /// Trains a level model from that level's harvested dataset.
    pub fn fit(
        data: &harvest_core::Dataset<SimpleContext>,
        lambda: f64,
    ) -> Result<Self, harvest_core::HarvestError> {
        use harvest_core::learner::{ModelingMode, RegressionCbLearner, SampleWeighting};
        let scorer =
            RegressionCbLearner::new(ModelingMode::PerAction, SampleWeighting::Uniform, lambda)?
                .fit(data)?;
        Ok(CbLevel { scorer })
    }
}

impl LevelPolicy for CbLevel {
    fn choose(
        &mut self,
        loads: &[f64],
        _rng: &mut harvest_sim_net::rng::DetRng,
    ) -> (usize, Option<f64>) {
        use harvest_core::policy::{GreedyPolicy, Policy};
        let ctx = SimpleContext::new(loads.to_vec(), loads.len());
        (GreedyPolicy::new(&self.scorer).choose(&ctx), None)
    }

    fn name(&self) -> String {
        "cb-level".to_string()
    }
}

/// Runs the two-level system under arbitrary per-level policies and returns
/// the mean post-warmup latency — the *online* evaluation of a hierarchical
/// deployment (Fig 6 made actionable: harvest per level with
/// [`run_hierarchical`], train a [`CbLevel`] per level, deploy here).
pub fn run_hierarchical_with_policies<E, L>(
    cfg: &HierarchyConfig,
    edge: &mut E,
    local: &mut L,
) -> f64
where
    E: LevelPolicy + ?Sized,
    L: LevelPolicy + ?Sized,
{
    use rand::Rng;
    assert!(cfg.endpoints > 0 && cfg.servers_per_endpoint > 0);
    assert!(cfg.requests > cfg.warmup);
    let mut arrival_rng = fork_rng(cfg.seed, "fd-arrivals");
    let mut route_rng = fork_rng(cfg.seed, "fd-routing");

    let e = cfg.endpoints;
    let s = cfg.servers_per_endpoint;
    let mut conns = vec![vec![0u32; s]; e];
    let mut mean = RunningStats::new();
    let mut issued = 0usize;

    let mut sim: Simulator<Event> = Simulator::new();
    sim.schedule(SimTime::ZERO, Event::Arrival);
    sim.run(|sim, ev| {
        match ev.event {
            Event::Completion { endpoint, server } => {
                conns[endpoint][server] = conns[endpoint][server].saturating_sub(1);
            }
            Event::Arrival => {
                let endpoint_loads: Vec<f64> = conns
                    .iter()
                    .map(|c| c.iter().map(|&x| x as f64).sum::<f64>() / 10.0)
                    .collect();
                let (endpoint, _pe) = edge.choose(&endpoint_loads, &mut route_rng);
                let endpoint = endpoint.min(e - 1);
                let server_loads: Vec<f64> =
                    conns[endpoint].iter().map(|&x| x as f64 / 10.0).collect();
                let (server, _ps) = local.choose(&server_loads, &mut route_rng);
                let server = server.min(s - 1);

                let base = cfg.base_latency_s * (1.0 + 0.08 * endpoint as f64);
                let latency = base + cfg.per_conn_latency_s * conns[endpoint][server] as f64;
                conns[endpoint][server] += 1;
                sim.schedule(
                    sim.now() + SimDuration::from_secs_f64(latency),
                    Event::Completion { endpoint, server },
                );
                if issued >= cfg.warmup {
                    mean.push(latency);
                }
                issued += 1;
                if issued < cfg.requests {
                    let u: f64 = arrival_rng.gen_range(f64::EPSILON..1.0);
                    let next = sim.now() + SimDuration::from_secs_f64(-u.ln() / cfg.arrival_rate);
                    sim.schedule(next, Event::Arrival);
                }
            }
        }
        Control::Continue
    });
    mean.mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_core::policy::ConstantPolicy;
    use harvest_estimators::{EstimatorKind, OffPolicyEvaluator};

    #[test]
    fn epsilons_compose() {
        let cfg = HierarchyConfig::front_door(100, 1);
        assert!((cfg.flat_epsilon() - 1.0 / 25.0).abs() < 1e-12);
        assert!((cfg.edge_epsilon() - 0.2).abs() < 1e-12);
        assert!((cfg.local_epsilon() - 0.2).abs() < 1e-12);
        assert!(cfg.edge_epsilon() > cfg.flat_epsilon());
    }

    #[test]
    fn run_harvests_both_levels() {
        let cfg = HierarchyConfig::front_door(5_000, 2);
        let r = run_hierarchical(&cfg);
        let n = cfg.requests - cfg.warmup;
        assert_eq!(r.edge_dataset.len(), n);
        assert_eq!(r.local_dataset.len(), n);
        assert_eq!(r.edge_dataset.min_propensity(), Some(0.2));
        assert_eq!(r.local_dataset.min_propensity(), Some(0.2));
        assert!(r.mean_latency_s > 0.1 && r.mean_latency_s < 1.0);
    }

    #[test]
    fn edge_ope_prefers_the_fast_endpoint() {
        // Endpoint 0 is intrinsically fastest; IPS on edge data must rank
        // it above the slowest endpoint.
        let cfg = HierarchyConfig::front_door(30_000, 3);
        let r = run_hierarchical(&cfg);
        let ev = OffPolicyEvaluator::new(EstimatorKind::Ips);
        let v_fast = ev.evaluate(&r.edge_dataset, &ConstantPolicy::new(0)).value;
        let v_slow = ev.evaluate(&r.edge_dataset, &ConstantPolicy::new(4)).value;
        assert!(
            v_fast > v_slow,
            "fast endpoint {v_fast} vs slow {v_slow} (rewards are negated latency)"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = HierarchyConfig::front_door(2_000, 4);
        let a = run_hierarchical(&cfg);
        let b = run_hierarchical(&cfg);
        assert_eq!(a.edge_dataset, b.edge_dataset);
        assert_eq!(a.mean_latency_s, b.mean_latency_s);
    }

    #[test]
    fn hierarchical_cb_deployment_beats_uniform_online() {
        // Harvest both levels under uniform exploration, train a CB model
        // per level, deploy the pair, and measure: the learned hierarchy
        // must reduce mean latency (it steers toward the intrinsically
        // faster endpoints while balancing within clusters).
        let cfg = HierarchyConfig::front_door(25_000, 21);
        let harvest = run_hierarchical(&cfg);
        let mut edge = CbLevel::fit(&harvest.edge_dataset, 1e-3).unwrap();
        let mut local = CbLevel::fit(&harvest.local_dataset, 1e-3).unwrap();
        let cb_latency = run_hierarchical_with_policies(&cfg, &mut edge, &mut local);
        let mut ue = UniformLevel;
        let mut ul = UniformLevel;
        let uniform_latency = run_hierarchical_with_policies(&cfg, &mut ue, &mut ul);
        assert!(
            (uniform_latency - harvest.mean_latency_s).abs() < 0.01,
            "uniform-policy rerun must match the harvest run"
        );
        assert!(
            cb_latency < uniform_latency - 0.005,
            "cb {cb_latency} vs uniform {uniform_latency}"
        );
    }
}

//! Routing policies.
//!
//! Routing policies differ from `harvest_core` policies in two ways that
//! reflect real balancers: they may be *stateful* (round-robin counters,
//! episode-randomized weights), and they report the propensity of their
//! choice only when they actually know it (a deterministic heuristic logs
//! no propensity — inference has to fill it in).

use rand::Rng;

use harvest_core::policy::Policy;
use harvest_core::scorer::{LinearScorer, Scorer};
use harvest_sim_net::rng::DetRng;

use crate::context::LbContext;

/// The outcome of one routing decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingDecision {
    /// The chosen server.
    pub server: usize,
    /// The decision probability, when the policy knows it (randomized
    /// policies). `None` for deterministic heuristics.
    pub propensity: Option<f64>,
}

/// A (possibly stateful, possibly randomized) routing policy.
pub trait RoutingPolicy {
    /// Routes one request.
    fn route(&mut self, ctx: &LbContext, rng: &mut DetRng) -> RoutingDecision;

    /// Display name for tables.
    fn name(&self) -> String;
}

/// Uniform random routing — Nginx's `random` directive; the canonical
/// harvestable logging policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomRouting;

impl RoutingPolicy for RandomRouting {
    fn route(&mut self, ctx: &LbContext, rng: &mut DetRng) -> RoutingDecision {
        let k = ctx.num_servers();
        RoutingDecision {
            server: rng.gen_range(0..k),
            propensity: Some(1.0 / k as f64),
        }
    }

    fn name(&self) -> String {
        "random".to_string()
    }
}

/// Round-robin routing — deterministic given arrival order, so its *logged
/// action is independent of the context*; the paper (§2, citing exploration
/// scavenging) notes such policies can still be treated as random.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinRouting {
    next: usize,
}

impl RoutingPolicy for RoundRobinRouting {
    fn route(&mut self, ctx: &LbContext, _rng: &mut DetRng) -> RoutingDecision {
        let server = self.next % ctx.num_servers();
        self.next = self.next.wrapping_add(1);
        RoutingDecision {
            server,
            // Over any window, each server receives exactly 1/k of
            // decisions independent of context.
            propensity: Some(1.0 / ctx.num_servers() as f64),
        }
    }

    fn name(&self) -> String {
        "round-robin".to_string()
    }
}

/// Least-loaded routing — Nginx `least_conn`; the production heuristic the
/// CB policy must beat in Table 2.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoadedRouting;

impl RoutingPolicy for LeastLoadedRouting {
    fn route(&mut self, ctx: &LbContext, _rng: &mut DetRng) -> RoutingDecision {
        RoutingDecision {
            server: ctx.least_loaded(),
            propensity: None,
        }
    }

    fn name(&self) -> String {
        "least-loaded".to_string()
    }
}

/// Sends every request to one fixed server — the policy whose off-policy
/// estimate Table 2 shows is catastrophically wrong.
#[derive(Debug, Clone, Copy)]
pub struct SendToRouting(pub usize);

impl RoutingPolicy for SendToRouting {
    fn route(&mut self, ctx: &LbContext, _rng: &mut DetRng) -> RoutingDecision {
        RoutingDecision {
            server: self.0.min(ctx.num_servers() - 1),
            propensity: None,
        }
    }

    fn name(&self) -> String {
        format!("send-to-{}", self.0)
    }
}

/// Static weighted-random routing — Nginx `weight=` directives.
#[derive(Debug, Clone)]
pub struct WeightedRouting {
    probs: Vec<f64>,
}

impl WeightedRouting {
    /// Creates weighted routing from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if weights are empty, negative, or all zero.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "need weights");
        let sum: f64 = weights.iter().sum();
        assert!(
            sum > 0.0 && weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be non-negative with positive sum"
        );
        WeightedRouting {
            probs: weights.into_iter().map(|w| w / sum).collect(),
        }
    }
}

impl RoutingPolicy for WeightedRouting {
    fn route(&mut self, ctx: &LbContext, rng: &mut DetRng) -> RoutingDecision {
        let k = ctx.num_servers().min(self.probs.len());
        let u: f64 = rng.gen();
        let mut cum = 0.0;
        for a in 0..k {
            cum += self.probs[a];
            if u < cum {
                return RoutingDecision {
                    server: a,
                    propensity: Some(self.probs[a]),
                };
            }
        }
        RoutingDecision {
            server: k - 1,
            propensity: Some(self.probs[k - 1]),
        }
    }

    fn name(&self) -> String {
        "weighted".to_string()
    }
}

/// Episode-randomized weights: resamples the traffic split every `episode`
/// requests — the paper's §5 proposal ("instead of randomizing each
/// request, a load balancer could randomize the share of traffic sent to
/// each server during the next N requests"), which yields exploration data
/// with coverage of *sustained* skewed loads.
#[derive(Debug, Clone)]
pub struct EpisodeWeightedRouting {
    episode: usize,
    remaining: usize,
    current: Vec<f64>,
    alpha: f64,
}

impl EpisodeWeightedRouting {
    /// Creates episode-randomized routing with episodes of `episode`
    /// requests and Dirichlet-ish concentration `alpha` (lower = more
    /// extreme splits).
    pub fn new(episode: usize, alpha: f64) -> Self {
        assert!(episode > 0, "episode length must be positive");
        assert!(alpha > 0.0, "alpha must be positive");
        EpisodeWeightedRouting {
            episode,
            remaining: 0,
            current: Vec::new(),
            alpha,
        }
    }

    fn resample(&mut self, k: usize, rng: &mut DetRng) {
        // Sample a point on the simplex by normalizing Gamma(alpha)
        // variates, approximated via inverse-power transforms of uniforms
        // (alpha ≤ 1 territory favours extreme splits, which is the point).
        let mut w: Vec<f64> = (0..k)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                u.powf(1.0 / self.alpha)
            })
            .collect();
        let sum: f64 = w.iter().sum();
        for v in &mut w {
            *v /= sum;
            // Keep a propensity floor so harvested data stays usable.
            *v = v.max(0.02);
        }
        let sum: f64 = w.iter().sum();
        for v in &mut w {
            *v /= sum;
        }
        self.current = w;
        self.remaining = self.episode;
    }

    /// The current traffic split (for logging).
    pub fn current_weights(&self) -> &[f64] {
        &self.current
    }
}

impl RoutingPolicy for EpisodeWeightedRouting {
    fn route(&mut self, ctx: &LbContext, rng: &mut DetRng) -> RoutingDecision {
        let k = ctx.num_servers();
        if self.remaining == 0 || self.current.len() != k {
            self.resample(k, rng);
        }
        self.remaining -= 1;
        let u: f64 = rng.gen();
        let mut cum = 0.0;
        for a in 0..k {
            cum += self.current[a];
            if u < cum {
                return RoutingDecision {
                    server: a,
                    propensity: Some(self.current[a]),
                };
            }
        }
        RoutingDecision {
            server: k - 1,
            propensity: Some(self.current[k - 1]),
        }
    }

    fn name(&self) -> String {
        format!("episode-weighted({})", self.episode)
    }
}

/// Routes with a learned CB model: picks the server whose predicted reward
/// (negated latency) is highest, with an optional ε exploration floor so
/// its own traffic stays harvestable.
#[derive(Debug, Clone)]
pub struct CbRouting {
    scorer: LinearScorer,
    epsilon: f64,
}

impl CbRouting {
    /// Greedy routing on a learned model.
    pub fn greedy(scorer: LinearScorer) -> Self {
        CbRouting {
            scorer,
            epsilon: 0.0,
        }
    }

    /// ε-greedy routing on a learned model.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is outside `[0, 1]`.
    pub fn epsilon_greedy(scorer: LinearScorer, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon in [0,1]");
        CbRouting { scorer, epsilon }
    }
}

impl RoutingPolicy for CbRouting {
    fn route(&mut self, ctx: &LbContext, rng: &mut DetRng) -> RoutingDecision {
        let cb_ctx = ctx.to_cb_context();
        let greedy = harvest_core::policy::GreedyPolicy::new(&self.scorer).choose(&cb_ctx);
        let k = ctx.num_servers();
        if self.epsilon == 0.0 {
            return RoutingDecision {
                server: greedy,
                propensity: None,
            };
        }
        let floor = self.epsilon / k as f64;
        let explore = rng.gen_bool(self.epsilon);
        let server = if explore { rng.gen_range(0..k) } else { greedy };
        let p = if server == greedy {
            1.0 - self.epsilon + floor
        } else {
            floor
        };
        RoutingDecision {
            server,
            propensity: Some(p),
        }
    }

    fn name(&self) -> String {
        if self.epsilon == 0.0 {
            "cb-policy".to_string()
        } else {
            format!("cb-policy(eps={})", self.epsilon)
        }
    }
}

/// Access to the scorer for diagnostics.
impl CbRouting {
    /// The underlying reward model.
    pub fn scorer(&self) -> &impl Scorer<harvest_core::SimpleContext> {
        &self.scorer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_sim_net::fork_rng;

    fn ctx(conns: Vec<u32>) -> LbContext {
        LbContext::single_class(conns)
    }

    #[test]
    fn random_routes_uniformly_with_propensity() {
        let mut p = RandomRouting;
        let mut rng = fork_rng(1, "r");
        let mut counts = [0u32; 4];
        for _ in 0..8000 {
            let d = p.route(&ctx(vec![0; 4]), &mut rng);
            assert_eq!(d.propensity, Some(0.25));
            counts[d.server] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 2000.0).abs() < 200.0, "count {c}");
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut p = RoundRobinRouting::default();
        let mut rng = fork_rng(2, "rr");
        let order: Vec<usize> = (0..6)
            .map(|_| p.route(&ctx(vec![0; 3]), &mut rng).server)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_loaded_follows_connections() {
        let mut p = LeastLoadedRouting;
        let mut rng = fork_rng(3, "ll");
        let d = p.route(&ctx(vec![5, 2, 9]), &mut rng);
        assert_eq!(d.server, 1);
        assert_eq!(d.propensity, None, "deterministic heuristics log no p");
    }

    #[test]
    fn send_to_clamps() {
        let mut p = SendToRouting(7);
        let mut rng = fork_rng(4, "st");
        assert_eq!(p.route(&ctx(vec![0, 0]), &mut rng).server, 1);
        let mut p = SendToRouting(0);
        assert_eq!(p.route(&ctx(vec![0, 0]), &mut rng).server, 0);
    }

    #[test]
    fn weighted_respects_weights() {
        let mut p = WeightedRouting::new(vec![1.0, 3.0]);
        let mut rng = fork_rng(5, "w");
        let mut hits = [0u32; 2];
        for _ in 0..10_000 {
            let d = p.route(&ctx(vec![0, 0]), &mut rng);
            hits[d.server] += 1;
            assert_eq!(d.propensity, Some([0.25, 0.75][d.server]));
        }
        assert!((hits[1] as f64 / 10_000.0 - 0.75).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn weighted_rejects_zero_weights() {
        let _ = WeightedRouting::new(vec![0.0, 0.0]);
    }

    #[test]
    fn episode_weighted_holds_split_within_episode() {
        let mut p = EpisodeWeightedRouting::new(100, 0.5);
        let mut rng = fork_rng(6, "ep");
        let _ = p.route(&ctx(vec![0, 0]), &mut rng);
        let w1 = p.current_weights().to_vec();
        for _ in 0..98 {
            let _ = p.route(&ctx(vec![0, 0]), &mut rng);
        }
        assert_eq!(p.current_weights(), &w1[..], "stable within episode");
        let _ = p.route(&ctx(vec![0, 0]), &mut rng);
        let _ = p.route(&ctx(vec![0, 0]), &mut rng);
        assert_ne!(p.current_weights(), &w1[..], "resampled across episodes");
    }

    #[test]
    fn episode_weights_form_floored_distribution() {
        let mut p = EpisodeWeightedRouting::new(10, 0.3);
        let mut rng = fork_rng(7, "ep2");
        for _ in 0..200 {
            let d = p.route(&ctx(vec![0, 0, 0]), &mut rng);
            let w = p.current_weights();
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(w.iter().all(|&x| x >= 0.019), "floor violated: {w:?}");
            assert!(d.propensity.unwrap() > 0.0);
        }
    }

    #[test]
    fn cb_routing_prefers_higher_scores() {
        // Pooled scorer: reward = -own_conns (fewer connections better).
        // phi layout for a 2-server single-class context:
        // [shared conns (2), class one-hot (1), own conn, id (2),
        //  interactions (2), bias] = 9 dims.
        let scorer = LinearScorer::Pooled {
            weights: vec![0.0, 0.0, 0.0, -1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        };
        let mut p = CbRouting::greedy(scorer);
        let mut rng = fork_rng(8, "cb");
        let d = p.route(&ctx(vec![9, 2]), &mut rng);
        assert_eq!(d.server, 1);
        assert_eq!(d.propensity, None);
    }

    #[test]
    fn cb_epsilon_greedy_reports_propensity() {
        let scorer = LinearScorer::Pooled {
            weights: vec![0.0, 0.0, 0.0, -1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        };
        let mut p = CbRouting::epsilon_greedy(scorer, 0.2);
        let mut rng = fork_rng(9, "cbe");
        let mut greedy_hits = 0;
        let n = 5000;
        for _ in 0..n {
            let d = p.route(&ctx(vec![9, 2]), &mut rng);
            let p_expected = if d.server == 1 { 0.9 } else { 0.1 };
            assert!((d.propensity.unwrap() - p_expected).abs() < 1e-12);
            if d.server == 1 {
                greedy_hits += 1;
            }
        }
        assert!((greedy_hits as f64 / n as f64 - 0.9).abs() < 0.02);
    }
}

//! The discrete-event load-balancer simulation.
//!
//! Arrivals are Poisson; each request is routed by a [`RoutingPolicy`],
//! occupies one connection on its server for its service time, and
//! completes. Service time is the Fig 5 linear function of the server's
//! open connections at admission, times fault effects and multiplicative
//! noise. Because routing raises connection counts which raises future
//! latencies, deployed policies *change the context distribution* — the A1
//! violation at the heart of Table 2.

use rand::Rng;

use harvest_core::learner::RegressionCbLearner;
use harvest_core::sample::{Dataset, LoggedDecision};
use harvest_core::scorer::LinearScorer;
use harvest_core::SimpleContext;
use harvest_log::nginx::NginxLogLine;
use harvest_log::record::{DecisionRecord, LogRecord};
use harvest_sim_net::event::{Control, Simulator};
use harvest_sim_net::fault::FaultPlan;
use harvest_sim_net::rng::{fork_rng, DetRng};
use harvest_sim_net::stats::{QuantileSketch, RunningStats};
use harvest_sim_net::time::{SimDuration, SimTime};

use crate::config::ClusterConfig;
use crate::context::LbContext;
use crate::policy::RoutingPolicy;

/// Latency charged to a request that hits a crashed server (a client
/// timeout).
pub const CRASH_TIMEOUT_S: f64 = 1.0;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The cluster being balanced.
    pub cluster: ClusterConfig,
    /// Requests to simulate (including warmup).
    pub requests: usize,
    /// Leading requests excluded from the summary statistics, letting the
    /// connection counts reach steady state.
    pub warmup: usize,
    /// Master seed.
    pub seed: u64,
    /// Fault plan (empty for the Table 2 runs).
    pub faults: FaultPlan,
    /// Context staleness: policies see connection counts refreshed only
    /// every this long (zero = live counts). Models the paper's §5
    /// observation that distributed state "will inevitably result in stale
    /// or incomplete contexts" — e.g. backends reporting load on a gossip
    /// period.
    pub context_staleness: SimDuration,
}

impl SimConfig {
    /// The standard Table 2 configuration on a cluster.
    pub fn table2(cluster: ClusterConfig, requests: usize, seed: u64) -> Self {
        SimConfig {
            cluster,
            requests,
            warmup: (requests / 10).min(2_000),
            seed,
            faults: FaultPlan::none(),
            context_staleness: SimDuration::ZERO,
        }
    }

    /// The same configuration with stale contexts.
    pub fn with_staleness(mut self, staleness: SimDuration) -> Self {
        self.context_staleness = staleness;
        self
    }
}

/// One request's record, as the simulator observed it.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestLog {
    /// Sequence number (also the `req_id` in the access log).
    pub request_id: u64,
    /// Arrival time.
    pub at: SimTime,
    /// The request's class (recoverable from the URI in the access log).
    pub request_class: usize,
    /// Connection counts per server at decision time (the context).
    pub connections: Vec<u32>,
    /// The chosen server (the action).
    pub server: usize,
    /// Propensity if the policy reported one.
    pub propensity: Option<f64>,
    /// Observed latency in seconds (the cost).
    pub latency_s: f64,
    /// Whether the request failed (crashed server).
    pub failed: bool,
}

/// The outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct LbRunResult {
    /// Name of the routing policy that ran.
    pub policy_name: String,
    /// Mean latency over post-warmup requests, seconds.
    pub mean_latency_s: f64,
    /// 99th-percentile latency over post-warmup requests, seconds.
    pub p99_latency_s: f64,
    /// Per-request logs (all requests, including warmup).
    pub requests: Vec<RequestLog>,
    /// Number of requests excluded as warmup.
    pub warmup: usize,
    /// Requests that failed on crashed servers.
    pub failed: usize,
    /// Number of request classes in the workload.
    pub num_classes: usize,
}

/// The events of the simulation.
#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival,
    Completion { server: usize },
}

/// Runs one simulation of `policy` on the configured cluster.
pub fn run_simulation<P: RoutingPolicy + ?Sized>(cfg: &SimConfig, policy: &mut P) -> LbRunResult {
    cfg.cluster.validate();
    assert!(cfg.requests > 0, "need at least one request");
    assert!(cfg.warmup < cfg.requests, "warmup must leave requests");

    let mut arrival_rng = fork_rng(cfg.seed, "lb-arrivals");
    let mut policy_rng = fork_rng(cfg.seed, "lb-policy");
    let mut service_rng = fork_rng(cfg.seed, "lb-service");

    let k = cfg.cluster.num_servers();
    let mut conns = vec![0u32; k];
    // Stale view of the connection counts shown to policies. Refreshed at
    // most once per `context_staleness` period; identical to `conns` when
    // staleness is zero.
    let mut stale_conns = vec![0u32; k];
    let mut next_refresh = SimTime::ZERO;
    let mut logs: Vec<RequestLog> = Vec::with_capacity(cfg.requests);
    let mut mean = RunningStats::new();
    let mut q = QuantileSketch::new();
    let mut failed = 0usize;
    let mut issued = 0usize;

    let mut sim: Simulator<Event> = Simulator::new();
    sim.schedule(SimTime::ZERO, Event::Arrival);
    let gap = |rng: &mut DetRng| {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        SimDuration::from_secs_f64(-u.ln() / cfg.cluster.arrival_rate)
    };

    sim.run(|sim, ev| {
        match ev.event {
            Event::Completion { server } => {
                conns[server] = conns[server].saturating_sub(1);
            }
            Event::Arrival => {
                // The request's class, drawn from the workload mix.
                let u: f64 = service_rng.gen();
                let mut request_class = 0;
                let mut cum = 0.0;
                for (i, &p) in cfg.cluster.class_probs.iter().enumerate() {
                    cum += p;
                    if u < cum {
                        request_class = i;
                        break;
                    }
                }
                let visible_conns = if cfg.context_staleness == SimDuration::ZERO {
                    conns.clone()
                } else {
                    if sim.now() >= next_refresh {
                        stale_conns.clone_from(&conns);
                        next_refresh = sim.now() + cfg.context_staleness;
                    }
                    stale_conns.clone()
                };
                let ctx = LbContext {
                    connections: visible_conns,
                    request_class,
                    num_classes: cfg.cluster.num_classes(),
                };
                let decision = policy.route(&ctx, &mut policy_rng);
                let server = decision.server.min(k - 1);

                let (latency_s, is_failure) = match cfg.faults.effect(server, sim.now()) {
                    None => (CRASH_TIMEOUT_S, true),
                    Some(eff) => {
                        let base =
                            cfg.cluster.servers[server].latency(request_class, conns[server]);
                        let noise = if cfg.cluster.latency_noise > 0.0 {
                            service_rng.gen_range(
                                1.0 - cfg.cluster.latency_noise..1.0 + cfg.cluster.latency_noise,
                            )
                        } else {
                            1.0
                        };
                        (
                            eff.apply(SimDuration::from_secs_f64(base * noise))
                                .as_secs_f64(),
                            false,
                        )
                    }
                };

                if !is_failure {
                    conns[server] += 1;
                    sim.schedule(
                        sim.now() + SimDuration::from_secs_f64(latency_s),
                        Event::Completion { server },
                    );
                } else {
                    failed += 1;
                }

                let request_id = issued as u64;
                if issued >= cfg.warmup {
                    mean.push(latency_s);
                    q.push(latency_s);
                }
                logs.push(RequestLog {
                    request_id,
                    at: sim.now(),
                    request_class,
                    connections: ctx.connections,
                    server,
                    propensity: decision.propensity,
                    latency_s,
                    failed: is_failure,
                });

                issued += 1;
                if issued < cfg.requests {
                    let next = sim.now() + gap(&mut arrival_rng);
                    sim.schedule(next, Event::Arrival);
                }
            }
        }
        Control::Continue
    });

    LbRunResult {
        policy_name: policy.name(),
        mean_latency_s: mean.mean(),
        p99_latency_s: q.p99().unwrap_or(0.0),
        requests: logs,
        warmup: cfg.warmup,
        failed,
        num_classes: cfg.cluster.num_classes(),
    }
}

impl LbRunResult {
    /// Post-warmup request logs.
    pub fn measured_requests(&self) -> &[RequestLog] {
        &self.requests[self.warmup.min(self.requests.len())..]
    }

    /// Renders the run as an Nginx-style access log (one line per
    /// request), exactly what a real deployment would scavenge. The request
    /// class is recoverable from the URI, as it would be in practice.
    pub fn nginx_access_log(&self) -> String {
        let mut out = String::new();
        for r in &self.requests {
            let line = NginxLogLine {
                remote_addr: "10.0.0.1".to_string(),
                msec: r.at.as_secs_f64(),
                method: "GET".to_string(),
                uri: format!("/api/v1/class{}", r.request_class),
                protocol: "HTTP/1.1".to_string(),
                status: if r.failed { 502 } else { 200 },
                body_bytes: 512,
                upstream: r.server,
                request_time: r.latency_s,
                connections: r.connections.clone(),
                request_id: r.request_id,
            };
            out.push_str(&line.format_line());
            out.push('\n');
        }
        out
    }

    /// Emits structured decision records (reward = −latency inline, since
    /// the proxy measures request time itself).
    pub fn decision_records(&self) -> Vec<LogRecord> {
        self.requests
            .iter()
            .map(|r| {
                let cb = LbContext {
                    connections: r.connections.clone(),
                    request_class: r.request_class,
                    num_classes: self.num_classes,
                }
                .to_cb_context();
                use harvest_core::Context;
                let num_actions = cb.num_actions();
                let action_features = (0..num_actions)
                    .map(|a| cb.action_features(a).to_vec())
                    .collect();
                LogRecord::Decision(DecisionRecord {
                    request_id: r.request_id,
                    timestamp_ns: r.at.as_nanos(),
                    component: "nginx-lb".to_string(),
                    shared_features: cb.shared_features().to_vec(),
                    action_features: Some(action_features),
                    num_actions,
                    action: r.server,
                    propensity: r.propensity,
                    reward: Some(-r.latency_s),
                })
            })
            .collect()
    }

    /// Builds an exploration dataset directly from post-warmup requests
    /// whose propensities were logged (reward = −latency).
    pub fn to_dataset(&self) -> Dataset<SimpleContext> {
        let mut data = Dataset::new();
        for r in self.measured_requests() {
            let Some(p) = r.propensity else { continue };
            let ctx = LbContext {
                connections: r.connections.clone(),
                request_class: r.request_class,
                num_classes: self.num_classes,
            }
            .to_cb_context();
            data.push(LoggedDecision {
                context: ctx,
                action: r.server,
                reward: -r.latency_s,
                propensity: p,
            })
            .expect("simulator produces valid samples");
        }
        data
    }

    /// Trains a pooled CB reward model from this run's exploration data —
    /// the "CB policy" row of Table 2 is `CbRouting::greedy` on this
    /// scorer.
    pub fn fit_cb_scorer(&self, lambda: f64) -> Result<LinearScorer, harvest_core::HarvestError> {
        let data = self.to_dataset();
        RegressionCbLearner::new(
            harvest_core::learner::ModelingMode::Pooled,
            harvest_core::learner::SampleWeighting::Uniform,
            lambda,
        )?
        .fit(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CbRouting, LeastLoadedRouting, RandomRouting, SendToRouting};
    use harvest_sim_net::fault::{Fault, FaultKind};

    fn fig5_cfg(requests: usize, seed: u64) -> SimConfig {
        SimConfig::table2(ClusterConfig::fig5(), requests, seed)
    }

    #[test]
    fn random_routing_matches_steady_state_theory() {
        let cfg = fig5_cfg(30_000, 1);
        let result = run_simulation(&cfg, &mut RandomRouting);
        let theory = {
            let c = &cfg.cluster;
            (c.steady_state_latency(0, 0.5) + c.steady_state_latency(1, 0.5)) / 2.0
        };
        assert!(
            (result.mean_latency_s - theory).abs() < 0.05,
            "sim {} vs theory {theory}",
            result.mean_latency_s
        );
    }

    #[test]
    fn send_to_one_overloads_online() {
        let cfg = fig5_cfg(30_000, 2);
        let random = run_simulation(&cfg, &mut RandomRouting);
        let send0 = run_simulation(&cfg, &mut SendToRouting(0));
        // Table 2: send-to-1 online (~0.70) is much worse than random
        // (~0.44), despite server 1 being the "fast" server.
        assert!(
            send0.mean_latency_s > random.mean_latency_s + 0.15,
            "send-to-0 {} vs random {}",
            send0.mean_latency_s,
            random.mean_latency_s
        );
    }

    #[test]
    fn least_loaded_beats_random() {
        let cfg = fig5_cfg(30_000, 3);
        let random = run_simulation(&cfg, &mut RandomRouting);
        let ll = run_simulation(&cfg, &mut LeastLoadedRouting);
        assert!(
            ll.mean_latency_s < random.mean_latency_s - 0.02,
            "least-loaded {} vs random {}",
            ll.mean_latency_s,
            random.mean_latency_s
        );
    }

    #[test]
    fn cb_policy_beats_least_loaded() {
        // The Table 2 punchline: train CB on random exploration, deploy it,
        // and it outperforms least-loaded because it knows server 2 is
        // intrinsically slower.
        let cfg = fig5_cfg(40_000, 4);
        let explore = run_simulation(&cfg, &mut RandomRouting);
        let scorer = explore.fit_cb_scorer(1e-3).unwrap();
        let mut cb = CbRouting::greedy(scorer);
        let cb_run = run_simulation(&cfg, &mut cb);
        let ll = run_simulation(&cfg, &mut LeastLoadedRouting);
        assert!(
            cb_run.mean_latency_s < ll.mean_latency_s,
            "cb {} vs least-loaded {}",
            cb_run.mean_latency_s,
            ll.mean_latency_s
        );
    }

    #[test]
    fn dataset_has_known_propensities_only() {
        let cfg = fig5_cfg(2_000, 5);
        let random = run_simulation(&cfg, &mut RandomRouting);
        let data = random.to_dataset();
        assert_eq!(data.len(), random.measured_requests().len());
        assert!(data.iter().all(|s| (s.propensity - 0.5).abs() < 1e-12));
        // Deterministic policies yield no usable samples directly.
        let ll = run_simulation(&cfg, &mut LeastLoadedRouting);
        assert!(ll.to_dataset().is_empty());
    }

    #[test]
    fn nginx_log_round_trips_through_parser() {
        let cfg = fig5_cfg(500, 6);
        let run = run_simulation(&cfg, &mut RandomRouting);
        let text = run.nginx_access_log();
        let (lines, errors) = harvest_log::nginx::parse_log(&text);
        assert!(errors.is_empty(), "parse errors: {errors:?}");
        assert_eq!(lines.len(), 500);
        assert_eq!(lines[3].request_id, 3);
        assert_eq!(lines[3].upstream, run.requests[3].server);
    }

    #[test]
    fn decision_records_scavenge_cleanly() {
        let cfg = fig5_cfg(300, 7);
        let run = run_simulation(&cfg, &mut RandomRouting);
        let records = run.decision_records();
        let (samples, stats) = harvest_log::scavenge::scavenge(&records);
        assert_eq!(stats.joined, 300);
        assert_eq!(samples.len(), 300);
        assert!(samples.iter().all(|s| s.propensity == Some(0.5)));
    }

    #[test]
    fn crash_fault_fails_requests() {
        let mut cfg = fig5_cfg(5_000, 8);
        cfg.faults = FaultPlan::from_faults(vec![Fault {
            target: 0,
            start: SimTime::ZERO,
            end: SimTime::MAX,
            kind: FaultKind::Crash,
        }]);
        let run = run_simulation(&cfg, &mut SendToRouting(0));
        assert_eq!(run.failed, 5_000);
        assert!((run.mean_latency_s - CRASH_TIMEOUT_S).abs() < 1e-9);
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = fig5_cfg(1_000, 9);
        let a = run_simulation(&cfg, &mut RandomRouting);
        let b = run_simulation(&cfg, &mut RandomRouting);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.mean_latency_s, b.mean_latency_s);
    }

    #[test]
    #[should_panic(expected = "warmup")]
    fn warmup_must_leave_requests() {
        let mut cfg = fig5_cfg(100, 10);
        cfg.warmup = 100;
        let _ = run_simulation(&cfg, &mut RandomRouting);
    }

    #[test]
    fn stale_contexts_hurt_least_loaded() {
        // With a long refresh period, least-loaded herds: it keeps sending
        // to the server that *looked* empty at the last refresh, overloads
        // it, then stampedes to the other one. Fresh counts avoid that.
        let fresh = fig5_cfg(30_000, 11);
        let stale = fig5_cfg(30_000, 11).with_staleness(harvest_sim_net::SimDuration::from_secs(2));
        let fresh_ll = run_simulation(&fresh, &mut LeastLoadedRouting).mean_latency_s;
        let stale_ll = run_simulation(&stale, &mut LeastLoadedRouting).mean_latency_s;
        assert!(
            stale_ll > fresh_ll + 0.05,
            "stale {stale_ll} vs fresh {fresh_ll}"
        );
    }

    #[test]
    fn staleness_does_not_affect_random_routing() {
        // Random ignores the context entirely; staleness must not change
        // its measured latency distribution materially.
        let fresh = fig5_cfg(20_000, 12);
        let stale = fig5_cfg(20_000, 12).with_staleness(harvest_sim_net::SimDuration::from_secs(5));
        let a = run_simulation(&fresh, &mut RandomRouting).mean_latency_s;
        let b = run_simulation(&stale, &mut RandomRouting).mean_latency_s;
        assert!((a - b).abs() < 0.02, "fresh {a} vs stale {b}");
    }
}

//! The routing context: what the balancer sees when it picks a server.

use harvest_core::SimpleContext;
use serde::{Deserialize, Serialize};

/// The decision context at request-arrival time.
///
/// Matches what Nginx can know without touching the backends: the active
/// connection count it maintains per upstream (paper §5: "Nginx and Azure
/// Front Door may know the load of each endpoint because all requests are
/// routed back through them") plus request-intrinsic attributes like the
/// URI class (Table 1: context is "request type, server load").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LbContext {
    /// Open connections per server at decision time.
    pub connections: Vec<u32>,
    /// The request's class (derived from its URI), `< num_classes`.
    pub request_class: usize,
    /// Total number of request classes in the workload.
    pub num_classes: usize,
}

impl LbContext {
    /// A single-class context (the homogeneous Fig 5 cartoon).
    pub fn single_class(connections: Vec<u32>) -> Self {
        LbContext {
            connections,
            request_class: 0,
            num_classes: 1,
        }
    }

    /// Number of routable servers.
    pub fn num_servers(&self) -> usize {
        self.connections.len()
    }

    /// The index of a least-loaded server (lowest connection count, ties to
    /// the lowest index — Nginx's `least_conn` behaviour is equivalent up
    /// to tie-breaking). Ignores the request class, which is exactly why a
    /// class-aware CB policy can beat it.
    pub fn least_loaded(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.connections.iter().enumerate() {
            if c < self.connections[best] {
                best = i;
            }
        }
        best
    }

    /// Converts to the CB context.
    ///
    /// Shared features: per-server connection counts (scaled) and the
    /// request-class one-hot. Per-action features: the candidate server's
    /// own connection count, a server-identity one-hot (so a pooled model
    /// can learn per-server base latencies), and the server-one-hot ×
    /// class-one-hot interaction terms (so it can learn per-server fast
    /// paths for specific classes).
    pub fn to_cb_context(&self) -> SimpleContext {
        let k = self.connections.len();
        let mut shared: Vec<f64> = self.connections.iter().map(|&c| c as f64 / 10.0).collect();
        for cl in 0..self.num_classes {
            shared.push(if cl == self.request_class { 1.0 } else { 0.0 });
        }
        let per_action: Vec<Vec<f64>> = self
            .connections
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let mut f = Vec::with_capacity(1 + k + k * self.num_classes);
                f.push(c as f64 / 10.0);
                for j in 0..k {
                    f.push(if i == j { 1.0 } else { 0.0 });
                }
                // Interaction block: server i × class of this request.
                for j in 0..k {
                    for cl in 0..self.num_classes {
                        f.push(if i == j && cl == self.request_class {
                            1.0
                        } else {
                            0.0
                        });
                    }
                }
                f
            })
            .collect();
        SimpleContext::with_action_features(shared, per_action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_core::Context;

    #[test]
    fn least_loaded_breaks_ties_low() {
        let ctx = LbContext::single_class(vec![3, 1, 1, 5]);
        assert_eq!(ctx.least_loaded(), 1);
        let ctx = LbContext::single_class(vec![0, 0]);
        assert_eq!(ctx.least_loaded(), 0);
    }

    #[test]
    fn cb_context_shape_single_class() {
        let ctx = LbContext::single_class(vec![10, 20]);
        let cb = ctx.to_cb_context();
        assert_eq!(cb.num_actions(), 2);
        // Shared: conns/10 then class one-hot (single class -> [1.0]).
        assert_eq!(cb.shared_features(), &[1.0, 2.0, 1.0]);
        // Action 1: own conns, identity one-hot, interaction block.
        assert_eq!(cb.action_features(1), &[2.0, 0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn cb_context_encodes_class_interactions() {
        let ctx = LbContext {
            connections: vec![0, 0],
            request_class: 1,
            num_classes: 2,
        };
        let cb = ctx.to_cb_context();
        // Shared: conns (2) + class one-hot (2).
        assert_eq!(cb.shared_features(), &[0.0, 0.0, 0.0, 1.0]);
        // Action 0 features: conn, id one-hot (2), interactions (2×2).
        // Interactions for action 0: (srv0,cl0)=0, (srv0,cl1)=1, (srv1,*)=0.
        assert_eq!(cb.action_features(0), &[0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        assert_eq!(cb.action_features(1), &[0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
    }
}

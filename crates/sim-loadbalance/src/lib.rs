//! Load-balancer simulator — the Nginx scenario.
//!
//! Reproduces the paper's Fig 5 setup and Table 2 experiment: a front-end
//! balancer routes requests over backend servers whose latency is a linear
//! function of their open connections, with server 2 slower than server 1
//! by an additive constant. Routing decisions feed back into future
//! contexts (more traffic → more open connections → higher latency), which
//! is precisely the violation of the contextual-bandit assumption **A1**
//! that makes single-decision off-policy evaluation produce the
//! catastrophic "send to 1" estimate of Table 2.
//!
//! The simulator is a discrete-event system on the `harvest-sim-net`
//! substrate. Every request emits an Nginx-style access-log line (parsed
//! back by `harvest-log`) and a structured decision record, so the harvest
//! pipeline runs end-to-end exactly as it would against a real proxy's
//! logs.
//!
//! * [`config`] — cluster shapes, including [`config::ClusterConfig::fig5`].
//! * [`policy`] — routing policies: random, round-robin, least-loaded,
//!   send-to-i, static weighted, episode-randomized weights (the paper's §5
//!   richer-exploration proposal), and CB-model-driven.
//! * [`sim`] — the event loop, logging, and online (ground-truth)
//!   measurement.
//! * [`hierarchy`] — the two-level Front Door architecture of Fig 6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod context;
pub mod hierarchy;
pub mod policy;
pub mod sim;

pub use config::{ClusterConfig, ServerConfig};
pub use context::LbContext;
pub use policy::{RoutingDecision, RoutingPolicy};
pub use sim::{run_simulation, LbRunResult, SimConfig};

//! Load balancing, end to end: the Nginx scenario of paper §3 and §5,
//! including the Table 2 off-policy-evaluation failure.
//!
//! ```text
//! cargo run --release --example load_balancing
//! ```
//!
//! This example goes through the *textual* log pipeline a real deployment
//! would use: the simulator emits Nginx-style access-log lines; we parse
//! them back, infer propensities (uniform-random routing is known from
//! "code inspection" of the upstream block), assemble the exploration
//! dataset, evaluate candidate policies offline, and then deploy each to
//! measure ground truth.

use harvest::core::policy::{ConstantPolicy, GreedyPolicy, UniformPolicy};
use harvest::core::{Context, Dataset, LoggedDecision, SimpleContext};
use harvest::estimators::{EstimatorKind, OffPolicyEvaluator};
use harvest::lb::policy::{CbRouting, LeastLoadedRouting, RandomRouting, SendToRouting};
use harvest::lb::sim::{run_simulation, SimConfig};
use harvest::lb::ClusterConfig;
use harvest::logs::nginx;
use harvest::logs::propensity::{KnownPropensity, PropensityModel};

fn main() {
    let cluster = ClusterConfig::fig5();
    let cfg = SimConfig::table2(cluster, 40_000, 21);

    // Deploy uniform-random routing (the harvestable logging policy) and
    // keep only its access log — exactly what ops would hand us.
    let exploration_run = run_simulation(&cfg, &mut RandomRouting);
    let access_log = exploration_run.nginx_access_log();
    println!(
        "harvested access log: {} lines, first line:\n  {}",
        access_log.lines().count(),
        access_log.lines().next().unwrap()
    );

    // Step 1 — scavenge: parse the text log back into ⟨x, a, r⟩.
    let (lines, errors) = nginx::parse_log(&access_log);
    assert!(errors.is_empty(), "parse errors: {errors:?}");

    // Step 2 — infer propensities: the upstream block is `random`, so each
    // of the two servers has probability 1/2 (code inspection).
    let known = KnownPropensity::new(UniformPolicy::new());
    let mut data = Dataset::new();
    for line in lines.iter().skip(cfg.warmup) {
        let context = SimpleContext::new(
            line.connections.iter().map(|&c| c as f64 / 10.0).collect(),
            line.connections.len(),
        );
        let propensity = known.propensity(&context, line.upstream);
        data.push(LoggedDecision {
            context,
            action: line.upstream,
            reward: -line.request_time,
            propensity,
        })
        .unwrap();
    }
    println!(
        "assembled {} exploration samples from the text log\n",
        data.len()
    );

    // Step 3 — evaluate candidates offline (rewards are negated latency).
    let least_loaded =
        harvest::core::policy::FnPolicy::new("least-loaded", |ctx: &SimpleContext| {
            let conns = ctx.shared_features();
            if conns[0] <= conns[1] {
                0
            } else {
                1
            }
        });
    let send_to_1 = ConstantPolicy::new(0);
    println!("{:<16} {:>12} {:>12}", "policy", "OPE latency", "online");
    let evaluator = OffPolicyEvaluator::new(EstimatorKind::Ips);
    let ope_ll = -evaluator.evaluate(&data, &least_loaded).value;
    let ope_s1 = -evaluator.evaluate(&data, &send_to_1).value;
    let online_ll = run_simulation(&cfg, &mut LeastLoadedRouting).mean_latency_s;
    let online_s1 = run_simulation(&cfg, &mut SendToRouting(0)).mean_latency_s;
    let online_rand = exploration_run.mean_latency_s;
    println!(
        "{:<16} {:>11.2}s {:>11.2}s",
        "random", online_rand, online_rand
    );
    println!(
        "{:<16} {:>11.2}s {:>11.2}s",
        "least-loaded", ope_ll, online_ll
    );
    println!("{:<16} {:>11.2}s {:>11.2}s", "send-to-1", ope_s1, online_s1);

    // CB optimization still works where evaluation fails (paper §5).
    let scorer = exploration_run.fit_cb_scorer(1e-3).unwrap();
    let cb_core = GreedyPolicy::new(scorer.clone());
    let ope_cb = -evaluator
        .evaluate(&exploration_run.to_dataset(), &cb_core)
        .value;
    let online_cb = run_simulation(&cfg, &mut CbRouting::greedy(scorer)).mean_latency_s;
    println!("{:<16} {:>11.2}s {:>11.2}s", "cb-policy", ope_cb, online_cb);

    println!(
        "\nOff-policy evaluation is misled by the feedback loop: send-to-1 looks like\n\
         {ope_s1:.2}s offline but measures {online_s1:.2}s deployed — routing decisions change\n\
         the very contexts (connection counts) the estimate conditions on (violates A1).\n\
         Yet CB *optimization* from the same data produced a policy at {online_cb:.2}s,\n\
         beating least-loaded at {online_ll:.2}s."
    );
}

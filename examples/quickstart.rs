//! Quickstart: harvest randomness from a system's logs and evaluate a new
//! policy offline — in about fifty lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The scenario is machine health (paper §3–4): when a machine goes
//! unresponsive, how long should the controller wait before rebooting?
//! The deployed "policy" waits a uniformly random number of minutes and
//! logs `⟨context, action, reward, propensity⟩`. We use that exploration
//! data to score candidate policies *without deploying any of them*, then
//! check the estimates against ground truth.

use harvest::core::learner::RegressionCbLearner;
use harvest::core::policy::{ConstantPolicy, Policy, UniformPolicy};
use harvest::core::simulate::simulate_exploration;
use harvest::estimators::evaluator::diagnose;
use harvest::estimators::{EstimatorKind, OffPolicyEvaluator};
use harvest::mh::{generate_dataset, MachineHealthConfig};
use rand::SeedableRng;

fn main() {
    // A synthetic fleet of incidents with full feedback: the reward of
    // every wait time is known, so we can grade our estimates.
    let full = generate_dataset(&MachineHealthConfig {
        incidents: 20_000,
        seed: 42,
    });

    // Step 1+2 of the methodology, compressed: deploy a randomized policy
    // (uniform over 10 wait times) and collect ⟨x, a, r, p⟩.
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let exploration = simulate_exploration(&full, &UniformPolicy::new(), &mut rng);
    println!(
        "harvested {} exploration samples (min propensity {:.2})",
        exploration.len(),
        exploration.min_propensity().unwrap()
    );

    // Step 3a: evaluate candidate policies offline with IPS.
    println!(
        "\n{:<24} {:>10} {:>10} {:>8}",
        "policy", "IPS est.", "truth", "match%"
    );
    for wait in [0usize, 2, 4, 9] {
        let candidate = ConstantPolicy::new(wait);
        let est = OffPolicyEvaluator::new(EstimatorKind::Ips).evaluate(&exploration, &candidate);
        let truth = full.value_of_policy(&candidate).unwrap();
        let diag = diagnose(&exploration, &candidate);
        println!(
            "{:<24} {:>10.4} {:>10.4} {:>7.1}%",
            format!("wait {} min", wait + 1),
            est.value,
            truth,
            100.0 * diag.match_rate
        );
    }

    // Step 3b: *optimize* — train a contextual policy from the same data.
    let learner = RegressionCbLearner::default_per_action();
    let cb_policy = learner.fit_policy(&exploration).expect("training succeeds");
    let cb_est = OffPolicyEvaluator::new(EstimatorKind::Ips).evaluate(&exploration, &cb_policy);
    let cb_truth = full.value_of_policy(&cb_policy).unwrap();
    println!(
        "{:<24} {:>10.4} {:>10.4}",
        "learned CB policy", cb_est.value, cb_truth
    );

    let (_, best_fixed) = full.best_fixed_action().unwrap();
    let name = Policy::<harvest::core::SimpleContext>::name(&cb_policy);
    println!(
        "\nThe learned policy ({name}) beats the best fixed wait ({best_fixed:.4}) without a single deployment.",
    );
    assert!(cb_truth > best_fixed, "contextual policy should win");
}

//! Chaos-Monkey exploration: using reliability testing as a randomness
//! source (paper §5, "Exploration coverage").
//!
//! ```text
//! cargo run --release --example chaos_exploration
//! ```
//!
//! Normal production traffic under a balanced policy never shows you what a
//! server looks like under extreme skew or partial failure — so off-policy
//! estimates of those regimes have no support. Randomized fault injection
//! (à la Netflix's Chaos Monkey) pushes the system into those corners and
//! the logged responses become valuable exploration data.
//!
//! We run the Fig 5 cluster twice — once clean, once under a generated
//! fault plan — and compare (a) the spread of contexts (connection-count
//! skew) observed and (b) how far each dataset's support stretches for
//! evaluating a "send everything to server 2" policy.

use harvest::core::policy::ConstantPolicy;
use harvest::estimators::evaluator::diagnose;
use harvest::lb::policy::RandomRouting;
use harvest::lb::sim::{run_simulation, SimConfig};
use harvest::lb::ClusterConfig;
use harvest::simnet::fault::{FaultPlan, FaultPlanConfig};
use harvest::simnet::rng::fork_rng;
use harvest::simnet::SimDuration;

fn main() {
    let requests = 40_000;
    let base_cfg = SimConfig::table2(ClusterConfig::fig5(), requests, 77);

    // A chaos plan: occasional crashes and slowdowns on both servers.
    let mut rng = fork_rng(77, "chaos-plan");
    let plan = FaultPlan::generate(
        2,
        SimDuration::from_secs(600),
        &FaultPlanConfig {
            rate_per_component: 0.02,
            mean_duration: SimDuration::from_secs(10),
            crash_fraction: 0.4,
            slowdown_range: (2.0, 6.0),
        },
        &mut rng,
    );
    println!(
        "generated chaos plan: {} faults over 600 s ({} crashes)",
        plan.faults().len(),
        plan.faults()
            .iter()
            .filter(|f| matches!(f.kind, harvest::simnet::fault::FaultKind::Crash))
            .count()
    );

    let clean = run_simulation(&base_cfg, &mut RandomRouting);
    let mut chaos_cfg = base_cfg.clone();
    chaos_cfg.faults = plan;
    let chaotic = run_simulation(&chaos_cfg, &mut RandomRouting);

    // (a) Context coverage: how skewed do the observed connection counts
    // get? Chaos drives one server's backlog far beyond anything a healthy
    // balanced system shows.
    let max_skew = |run: &harvest::lb::sim::LbRunResult| {
        run.measured_requests()
            .iter()
            .map(|r| {
                let a = r.connections[0] as i64;
                let b = r.connections[1] as i64;
                (a - b).unsigned_abs()
            })
            .max()
            .unwrap_or(0)
    };
    println!("\ncontext coverage (max |conns₁ − conns₂| observed):");
    println!("  clean run: {:>4}", max_skew(&clean));
    println!("  chaos run: {:>4}", max_skew(&chaotic));

    // (b) Support diagnostics for an extreme candidate policy.
    let target = ConstantPolicy::new(1);
    let d_clean = diagnose(&clean.to_dataset(), &target);
    let d_chaos = diagnose(&chaotic.to_dataset(), &target);
    println!("\nevaluating 'send-to-2' on each dataset:");
    println!(
        "  clean: match rate {:.2}, effective sample size {:.0}",
        d_clean.match_rate, d_clean.effective_sample_size
    );
    println!(
        "  chaos: match rate {:.2}, effective sample size {:.0}, failures logged: {}",
        d_chaos.match_rate, d_chaos.effective_sample_size, chaotic.failed
    );

    println!(
        "\nmean latency: clean {:.3}s vs chaos {:.3}s (p99 {:.3}s vs {:.3}s)\n\
         The chaos run pays a latency tax but captures regimes — crashes, sustained\n\
         overload — that the clean logs simply do not contain. That breadth is what\n\
         long-horizon off-policy estimators need (paper §5).",
        clean.mean_latency_s, chaotic.mean_latency_s, clean.p99_latency_s, chaotic.p99_latency_s
    );
    assert!(max_skew(&chaotic) > max_skew(&clean));
}

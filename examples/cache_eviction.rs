//! Cache eviction, end to end: the Redis scenario of paper §3 and §5,
//! including the Table 3 long-term-reward failure.
//!
//! ```text
//! cargo run --release --example cache_eviction
//! ```
//!
//! A byte-budget cache runs the big/small workload under Redis-style
//! random candidate sampling. We harvest the eviction decisions,
//! reconstruct rewards by looking ahead in the access log (time to next
//! access of the evicted item), train a CB policy on them, and compare all
//! policies on the same trace.

use harvest::cache::policy::{
    CbEviction, FreqSizeEviction, LfuEviction, LruEviction, RandomEviction,
};
use harvest::cache::runner::{
    big_small_trace, run_cache_workload, table3_cache_config, CacheRunConfig,
};
use harvest::cache::EvictionPolicy;

fn main() {
    let trace = big_small_trace(100_000, 33);
    let cfg = CacheRunConfig {
        cache: table3_cache_config(),
        warmup: 10_000,
        seed: 33,
    };
    println!(
        "big/small workload: {} requests, {} KiB budget, {} eviction samples",
        trace.len(),
        cfg.cache.capacity_bytes / 1024,
        cfg.cache.eviction_samples
    );

    // Exploration: random eviction. Its decisions carry propensity 1/K.
    let explore = run_cache_workload(&cfg, &mut RandomEviction, &trace);
    println!(
        "harvested {} eviction decisions; reconstructing rewards by log look-ahead…",
        explore.evictions.len()
    );
    let dataset = explore.to_dataset(60.0);
    println!(
        "  -> {} usable ⟨x,a,r,p⟩ samples, mean normalized time-to-next-access {:.4}\n",
        dataset.len(),
        dataset.mean_logged_reward().unwrap()
    );

    // Train the CB eviction policy from the harvested data.
    let scorer = explore.fit_cb_scorer(60.0, 1e-2).unwrap();

    println!("{:<12} {:>10}", "policy", "hit rate");
    println!("{:<12} {:>9.1}%", "random", 100.0 * explore.hit_rate());
    let mut policies: Vec<(&str, Box<dyn EvictionPolicy>)> = vec![
        ("lru", Box::new(LruEviction)),
        ("lfu", Box::new(LfuEviction)),
        ("cb-policy", Box::new(CbEviction::greedy(scorer))),
        ("freq-size", Box::new(FreqSizeEviction)),
    ];
    let mut rates = vec![("random", explore.hit_rate())];
    for (name, policy) in policies.iter_mut() {
        let rate = run_cache_workload(&cfg, policy.as_mut(), &trace).hit_rate();
        println!("{:<12} {:>9.1}%", name, 100.0 * rate);
        rates.push((name, rate));
    }

    let fs = rates.iter().find(|(n, _)| *n == "freq-size").unwrap().1;
    let cb = rates.iter().find(|(n, _)| *n == "cb-policy").unwrap().1;
    println!(
        "\nThe CB policy optimizes a *short-term* reward (time to the evicted item's\n\
         next access) and lands at {:.1}% — no better than random — because it keeps\n\
         the hot large items without pricing the space they occupy. Only the manual\n\
         frequency/size rule, which encodes that opportunity cost, wins: {:.1}%.",
        100.0 * cb,
        100.0 * fs
    );
}

//! The harvest loop under a seeded fault schedule: chaos-hardening demo.
//!
//! A two-shard service serves a synthetic contextual workload while a
//! [`ChaosPlan`] generated from the seed kills the log writer, tears frames
//! mid-append, drops and delays rewards, wedges shard cells, and crashes
//! the trainer mid-fit. After shutdown the same plan's at-rest faults
//! damage the persisted segments before recovery replays them.
//!
//! The run prints the conservation ledger the CI chaos job greps for:
//! every record offered to the log is written, dropped, or quarantined —
//! never silently lost — and the circuit breaker's trips and re-arms are
//! reported. Everything is a deterministic function of the seed.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example chaos_harvest -- [seed]
//! ```

use harvest::core::SimpleContext;
use harvest::logs::segment::{MemorySegments, SegmentConfig};
use harvest::serve::{
    apply_at_rest_faults, Backpressure, ChaosHorizon, ChaosPlan, ChaosPlanConfig, DecisionService,
    LoggerConfig, ServeConfig, ServeError, SupervisorConfig, TrainerConfig,
};
use harvest::simnet::rng::fork_rng;
use rand::Rng;

const EPSILON: f64 = 0.2;
const ACTIONS: usize = 3;
const REQUESTS: usize = 2000;
const TRAIN_ROUNDS: usize = 2;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(42);

    let horizon = ChaosHorizon {
        writer_records: (REQUESTS * 2) as u64,
        rewards: REQUESTS as u64,
        decisions: REQUESTS as u64,
        rounds: TRAIN_ROUNDS as u64,
        checkpoints: 0,
    };
    let mut plan_rng = fork_rng(seed, "chaos-plan");
    let plan = ChaosPlan::generate(&ChaosPlanConfig::default(), &horizon, &mut plan_rng);
    println!("chaos-harvest: seed {seed}, schedule [{}]", plan.summary());

    let store = MemorySegments::new();
    let cfg = ServeConfig::builder()
        .shards(2)
        .epsilon(EPSILON)
        .master_seed(seed)
        .component("chaos-demo")
        .logger(
            LoggerConfig::builder()
                .capacity(256)
                .backpressure(Backpressure::Block)
                .segment(SegmentConfig {
                    max_records: 128,
                    max_bytes: 64 * 1024,
                    max_span_ns: u64::MAX,
                })
                .build(),
        )
        .supervisor(
            SupervisorConfig::builder()
                .max_restarts(8)
                .backoff_base_ms(1)
                .backoff_cap_ms(4)
                .build(),
        )
        .trainer(
            TrainerConfig::builder()
                .lambda(1e-3)
                .epsilon(EPSILON)
                .build(),
        )
        .build()
        .expect("valid demo config");
    let svc = DecisionService::with_chaos(cfg, store.clone(), plan.clone());

    // Training rounds are interleaved with serving so a mid-fit trainer
    // crash has live traffic after it: the breaker's safe-arm fallback and
    // its eventual re-arm both show up in the served stream.
    let train_at: Vec<usize> = (1..=TRAIN_ROUNDS)
        .map(|r| REQUESTS * r / (TRAIN_ROUNDS + 1))
        .collect();

    let mut traffic = fork_rng(seed, "chaos-traffic");
    let mut now_ns = 0u64;
    let mut degraded_served = 0u64;
    let mut round = 0usize;
    for i in 0..REQUESTS {
        if train_at.contains(&i) {
            while svc.metrics().log_backlog > 0 {
                std::thread::yield_now();
            }
            let (records, _) = store.recover();
            match svc.train_and_maybe_promote(&records) {
                Ok(report) => println!(
                    "train round {round} (at request {i}): gate {} -> serving gen {} ({})",
                    if report.gate.promoted {
                        "PROMOTED"
                    } else {
                        "kept incumbent"
                    },
                    report.serving_generation,
                    report.serving_name
                ),
                Err(ServeError::TrainerCrashed { round }) => println!(
                    "train round {round} (at request {i}): trainer CRASHED mid-fit (injected); \
                     incumbent kept, breaker open"
                ),
                Err(other) => panic!("unexpected training error: {other:?}"),
            }
            round += 1;
        }
        now_ns += 1_000_000;
        let x: f64 = traffic.gen_range(0.0..1.0);
        let ctx = SimpleContext::new(vec![x], ACTIONS);
        let d = svc
            .decide(i % svc.num_shards(), now_ns, &ctx)
            .expect("service must keep serving under chaos");
        assert!(d.propensity > 0.0 && d.propensity <= 1.0);
        if d.degraded {
            degraded_served += 1;
        }
        let reward = if d.action == 0 { x } else { 1.0 - x };
        svc.reward(d.request_id, now_ns + 500_000, reward);
    }

    while svc.metrics().log_backlog > 0 {
        std::thread::yield_now();
    }
    let snap = svc.metrics();
    svc.shutdown().unwrap();

    println!(
        "\nserved {REQUESTS} requests ({degraded_served} degraded by the safe arm), \
         writer restarts {}, lock recoveries {}, rewards lost {}",
        snap.writer_restarts, snap.lock_recoveries, snap.rewards_lost
    );
    println!(
        "breaker: trips={} rearms={}",
        snap.breaker_trips, snap.breaker_rearms
    );

    let balanced = snap.log_enqueued == snap.log_written + snap.log_dropped + snap.log_quarantined;
    println!(
        "zero silent data loss: enqueued({}) == written({}) + dropped({}) + quarantined({}) -> {}",
        snap.log_enqueued,
        snap.log_written,
        snap.log_dropped,
        snap.log_quarantined,
        if balanced { "OK" } else { "VIOLATED" }
    );
    assert!(balanced, "conservation ledger violated");

    // At-rest damage, then recovery: the longest valid prefix of every
    // segment replays; damaged frames are quarantined and counted.
    let landed = apply_at_rest_faults(&plan, &store);
    let (records, stats) = store.recover();
    println!(
        "at-rest: {landed} fault(s) landed; recovery replayed {} records across {} segments \
         ({} corrupt), quarantined {} records / {} bytes",
        stats.recovered,
        stats.segments,
        stats.corrupt_segments,
        stats.quarantined_records,
        stats.quarantined_bytes
    );
    let cross_crash = (stats.recovered + stats.quarantined_records) as u64 + snap.log_dropped
        == snap.log_enqueued;
    println!(
        "cross-crash ledger: recovered({}) + quarantined({}) + dropped({}) == enqueued({}) -> {}",
        stats.recovered,
        stats.quarantined_records,
        snap.log_dropped,
        snap.log_enqueued,
        if cross_crash { "OK" } else { "VIOLATED" }
    );
    assert!(cross_crash, "cross-crash ledger violated");
    assert!(!records.is_empty());
}

//! harvest-portfolio: score a 128-policy portfolio in **one pass** over
//! crash-recovered segment logs.
//!
//! The paper's Fig 1 promise is that one exploration log evaluates an
//! entire policy class at once. This demo makes that concrete end to end:
//!
//! 1. a seeded workload writes decision/outcome records through the
//!    segmented log (outcomes often land one segment after their
//!    decisions, so the scavenger's cross-segment join is on the path);
//! 2. a [`PortfolioEvaluator`] recovers the segments and scores 128
//!    candidate policies — IPS, SNIPS, and DR with empirical-Bernstein
//!    intervals each — in a single streaming pass;
//! 3. the same evaluation fans out across 8 workers and must merge to a
//!    **byte-identical** leaderboard (fixed per-segment partition, fixed
//!    merge order), clean *and* after at-rest log damage;
//! 4. the trainer's shadow gate scores its own tilted portfolio on
//!    harvested data and reports the LCB-winner.
//!
//! Every line is a deterministic function of the seed; the `-> OK`
//! assertions are what CI greps.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example harvest_portfolio -- [seed]
//! ```

use harvest::core::scorer::LinearScorer;
use harvest::estimators::{Candidate, EvaluatorConfig, PortfolioEvaluator};
use harvest::logs::record::{DecisionRecord, LogRecord, OutcomeRecord};
use harvest::logs::segment::{MemorySegments, SegmentConfig, SegmentedLogWriter};
use harvest::prelude::GreedyScorerCandidate;
use harvest::serve::{apply_at_rest_faults, AtRestFault, ChaosPlan, ServePolicy, Trainer};
use harvest::serve::{GateConfig, TrainerConfig};
use harvest::simnet::rng::fork_rng;
use rand::Rng;

const K: usize = 128;
const REQUESTS: u64 = 4_000;
const ACTIONS: usize = 2;
const EPSILON: f64 = 0.1;

/// Candidate j is the threshold policy "action 0 iff x > θⱼ", as a
/// per-action scorer over φ = [x, 1]: action 0 scores x, action 1 scores
/// 2θⱼ − x. The thresholds are spread low-discrepancy across (0.2, 0.8) —
/// deterministic in j, no RNG — so the portfolio brackets the true optimum
/// θ = 0.5 and the leaderboard has a real ranking to show.
fn tilted_scorer(j: usize) -> LinearScorer {
    let theta = 0.2 + 0.6 * ((j as f64) * 0.618_033_988_749_895).fract();
    LinearScorer::PerAction {
        weights: vec![vec![1.0, 0.0], vec![-1.0, 2.0 * theta]],
    }
}

/// Writes the seeded crossing-reward workload through the segmented log.
/// Roughly half the rewards arrive as separate outcome records a little
/// later, so many joins cross a segment boundary.
fn build_segments(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = fork_rng(seed, "portfolio-workload");
    let mut w = SegmentedLogWriter::new(
        MemorySegments::new(),
        SegmentConfig {
            max_records: 256,
            max_bytes: 64 * 1024,
            max_span_ns: u64::MAX,
        },
    );
    let mut pending: Vec<(u64, f64)> = Vec::new();
    for id in 0..REQUESTS {
        let x: f64 = rng.gen_range(0.0..1.0);
        let explore: f64 = rng.gen_range(0.0..1.0);
        // ε-greedy logging over the crossing-reward truth (action 0 pays x,
        // action 1 pays 1 − x), with the exact propensity recorded.
        let greedy = usize::from(x < 0.5);
        let action = if explore < EPSILON {
            usize::from(rng.gen_range(0.0..1.0) < 0.5)
        } else {
            greedy
        };
        let p_floor = EPSILON / ACTIONS as f64;
        let propensity = if action == greedy {
            1.0 - EPSILON + p_floor
        } else {
            p_floor
        };
        let reward = if action == 0 { x } else { 1.0 - x };
        let deferred = id % 2 == 1;
        w.write(&LogRecord::Decision(DecisionRecord {
            request_id: id,
            timestamp_ns: id * 1_000,
            component: "harvest-portfolio".to_string(),
            shared_features: vec![x],
            action_features: None,
            num_actions: ACTIONS,
            action,
            propensity: Some(propensity),
            reward: (!deferred).then_some(reward),
        }))
        .expect("write decision");
        if deferred {
            pending.push((id, reward));
        }
        // Flush deferred outcomes in bursts so they trail their decisions,
        // frequently into the next segment.
        if pending.len() >= 96 {
            for (rid, r) in pending.drain(..) {
                w.write(&LogRecord::Outcome(OutcomeRecord {
                    request_id: rid,
                    timestamp_ns: rid * 1_000 + 500,
                    reward: r,
                }))
                .expect("write outcome");
            }
        }
    }
    for (rid, r) in pending.drain(..) {
        w.write(&LogRecord::Outcome(OutcomeRecord {
            request_id: rid,
            timestamp_ns: rid * 1_000 + 500,
            reward: r,
        }))
        .expect("write outcome");
    }
    w.into_sink().expect("flush").snapshot()
}

fn evaluator(parallelism: usize) -> PortfolioEvaluator {
    PortfolioEvaluator::builder()
        .config(
            EvaluatorConfig::builder()
                .clip(10.0)
                .delta(0.05)
                .parallelism(parallelism)
                .build(),
        )
        .candidates((0..K).map(|j| {
            Candidate::new(
                format!("cand-{j:03}"),
                GreedyScorerCandidate::new(tilted_scorer(j), EPSILON),
            )
        }))
        .model(LinearScorer::PerAction {
            weights: vec![vec![1.0, 0.0], vec![-1.0, 1.0]],
        })
        .build()
        .expect("non-empty portfolio")
}

fn check(label: &str, ok: bool) {
    println!("{label} -> {}", if ok { "OK" } else { "VIOLATED" });
    assert!(ok, "{label}");
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("seed must be a u64"))
        .unwrap_or(42);
    println!("harvest-portfolio: seed {seed}, k={K}, {REQUESTS} requests");

    let segments = build_segments(seed);
    println!("workload: {} log segments written", segments.len());

    // One pass, k = 128: every candidate scored from the same recovery.
    let (sequential, recovery) = evaluator(1).evaluate_segments(&segments);
    println!(
        "recovery: {} records from {} segments ({} corrupt, {} quarantined)",
        recovery.recovered,
        recovery.segments,
        recovery.corrupt_segments,
        recovery.quarantined_records
    );
    check(
        &format!(
            "one pass scored all {} candidates on n={} joined samples",
            sequential.entries.len(),
            sequential.n
        ),
        sequential.entries.len() == K && sequential.n > 0,
    );

    // The leaderboard, ranked by SNIPS lower confidence bound.
    println!("\nleaderboard (top 8 of {K} by SNIPS LCB):");
    println!(
        "  {:<5} {:<10} {:>9} {:>19} {:>9} {:>9} {:>8}",
        "rank", "name", "snips", "[lcb, ucb]", "ips", "dr", "ess"
    );
    for e in sequential.entries.iter().take(8) {
        println!(
            "  #{:<4} {:<10} {:>+9.4} [{:>+8.4}, {:>+8.4}] {:>+9.4} {:>+9.4} {:>8.0}",
            e.rank, e.name, e.snips.point, e.snips.lcb, e.snips.ucb, e.ips.point, e.dr.point, e.ess
        );
    }

    // Parallel scavenge + merge must be byte-identical to the sequential
    // pass: same per-segment partition, same merge order, any thread.
    let (parallel, par_recovery) = evaluator(8).evaluate_segments(&segments);
    check(
        "parallel (8 workers) == sequential scavenge+merge, byte-identical",
        parallel == sequential
            && par_recovery == recovery
            && parallel.to_json() == sequential.to_json(),
    );

    // Same-seed determinism of the exported JSON leaderboard.
    let (again, _) = evaluator(8).evaluate_segments(&build_segments(seed));
    check(
        "same-seed rerun reproduces the leaderboard JSON",
        again.to_json() == sequential.to_json(),
    );

    // The invariant must also hold on a damaged log: corrupt a payload and
    // tear a tail, then compare the two schedules again.
    let store = MemorySegments::new();
    store.replace_all(segments.clone());
    let plan = ChaosPlan::none()
        .damage_at_rest(AtRestFault::CorruptPayload {
            segment_frac: 0.3,
            frame_frac: 0.5,
            xor: 0x20,
        })
        .damage_at_rest(AtRestFault::TearTail {
            segment_frac: 0.8,
            keep_frac: 0.4,
        });
    let applied = apply_at_rest_faults(&plan, &store);
    let damaged = store.snapshot();
    let (seq_damaged, seq_rec) = evaluator(1).evaluate_segments(&damaged);
    let (par_damaged, par_rec) = evaluator(8).evaluate_segments(&damaged);
    println!(
        "\nat-rest damage: {applied} faults applied, {} records quarantined, {} joins lost",
        seq_rec.quarantined_records,
        sequential.n - seq_damaged.n
    );
    check(
        "quarantined suffixes drop out of the score, identically in parallel",
        seq_rec.quarantined_records > 0
            && seq_damaged.n < sequential.n
            && par_damaged == seq_damaged
            && par_rec == seq_rec,
    );

    // Shadow gate: the trainer scores its own tilted portfolio on the
    // harvested dataset and gates the LCB-winner against the incumbent.
    let trainer = Trainer::new(
        TrainerConfig::builder()
            .epsilon(EPSILON)
            .lambda(1e-3)
            .gate(GateConfig::builder().portfolio(32).min_samples(500).build())
            .build(),
    );
    let store = MemorySegments::new();
    store.replace_all(segments);
    let (records, _) = store.recover();
    let round = trainer
        .run_round(&records, &ServePolicy::Uniform)
        .expect("training succeeds");
    let board = &round.leaderboard;
    println!(
        "\nshadow gate: {} candidates, winner {} (lcb {:+.4}, ess {:.0}) vs incumbent {:+.4} \
         => {}",
        round.gate.portfolio,
        round.gate.winner,
        round.gate.candidate_lcb,
        round.gate.winner_ess,
        round.gate.incumbent_value,
        round.gate.reason
    );
    check(
        "shadow gate scored the full portfolio and picked a live winner",
        round.gate.portfolio == 32
            && board.entries.len() == 32
            && board.entries.iter().any(|e| e.name == round.gate.winner),
    );
    check(
        "gate winner beats the uniform incumbent",
        round.gate.promoted && round.gate.candidate_lcb > round.gate.incumbent_value,
    );

    println!("\nharvest-portfolio: all invariants hold");
}

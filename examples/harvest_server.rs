//! The decision service behind a real socket: `harvest-wire` over loopback
//! TCP, with admission control doing its job under a deliberate burst.
//!
//! A four-shard service is wrapped in a [`WireCore`] (per-connection token
//! buckets, a pending-work budget, deadline propagation) and bound to an
//! ephemeral loopback port. Four client threads then run two phases each:
//!
//! 1. **Closed loop**: decide → reward, one request in flight, logical
//!    stamps pacing well inside the rate limit — everything is served.
//! 2. **Burst**: a pile of decides fired back-to-back at one logical
//!    instant — the token bucket sheds the overflow with an explicit
//!    `Shed { rate_limited }` response. No client ever sees a protocol
//!    error; overload is an answer.
//!
//! After shutdown the example reconciles both ledgers and prints one `OK`
//! line per ledger — CI runs this binary on several seeds and greps for
//! them:
//!
//! ```text
//! wire ledger: requested=560 served=… shed=… errors=0 -> OK
//! conservation: enqueued=… written=… dropped=0 quarantined=0 -> OK
//! ```
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example harvest_server -- 42
//! ```

use std::sync::Arc;
use std::thread;

use harvest::prelude::*;
use harvest::wire::ShedReason;

const CLIENTS: usize = 4;
const CLOSED_LOOP: usize = 100;
const BURST: usize = 40;
const ACTIONS: usize = 3;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(42);

    let store = MemorySegments::new();
    let cfg = ServeConfig::builder()
        .shards(4)
        .epsilon(0.2)
        .master_seed(seed)
        .component("wire-demo")
        .logger(
            LoggerConfig::builder()
                .capacity(4096)
                .backpressure(Backpressure::Block)
                .build(),
        )
        .join_ttl_ns(60_000_000_000)
        .build()
        .expect("valid demo config");
    let svc = Arc::new(DecisionService::new(cfg, store));

    // Rate limit: 500 decisions per logical second with a burst of 8 —
    // generous for the paced phase, tight for the burst phase.
    let wire_cfg = WireConfig::builder()
        .rate_per_sec(500)
        .burst(8)
        .pending_capacity(1024)
        .build();
    let core = Arc::new(WireCore::new(Arc::clone(&svc), wire_cfg));
    let server =
        harvest::wire::TcpServer::bind(Arc::clone(&core), "127.0.0.1:0", 4).expect("bind loopback");
    let addr = server.local_addr();
    println!("harvest-server: seed {seed}, {CLIENTS} clients against {addr}");

    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        handles.push(thread::spawn(move || run_client(c, addr)));
    }
    let mut served = 0u64;
    let mut shed = 0u64;
    let mut rewarded = 0u64;
    for handle in handles {
        let (s, sh, r) = handle.join().expect("client thread");
        served += s;
        shed += sh;
        rewarded += r;
    }
    println!(
        "clients done: {served} decisions served, {shed} shed with an explicit reason, \
         {rewarded} rewards acknowledged"
    );

    server.shutdown();
    let wire = core.metrics().snapshot();
    drop(core);
    let svc = Arc::try_unwrap(svc)
        .ok()
        .expect("all wire handles released");
    let metrics = svc.metrics();
    svc.shutdown().expect("clean shutdown");

    let wire_ok = wire.ledger_ok && wire.protocol_errors == 0 && wire.decisions_errored == 0;
    println!(
        "wire ledger: requested={} served={} shed={} (rate_limited={} queue_full={} deadline={}) \
         degraded={} errors={} -> {}",
        wire.decisions_requested,
        wire.decisions_served,
        wire.shed_total,
        wire.shed_rate_limited,
        wire.shed_queue_full,
        wire.shed_deadline,
        wire.decisions_degraded,
        wire.decisions_errored,
        if wire_ok { "OK" } else { "VIOLATED" }
    );
    let conservation_ok =
        metrics.log_enqueued == metrics.log_written + metrics.log_dropped + metrics.log_quarantined;
    println!(
        "conservation: enqueued={} written={} dropped={} quarantined={} -> {}",
        metrics.log_enqueued,
        metrics.log_written,
        metrics.log_dropped,
        metrics.log_quarantined,
        if conservation_ok { "OK" } else { "VIOLATED" }
    );
    assert!(wire_ok, "wire ledger must reconcile");
    assert!(conservation_ok, "log conservation must hold");
}

/// One client: paced closed-loop traffic, then a same-instant burst that
/// the rate limiter sheds. Returns (served, shed, rewards acknowledged).
fn run_client(c: usize, addr: std::net::SocketAddr) -> (u64, u64, u64) {
    let mut client = harvest::wire::TcpClient::connect(addr).expect("connect");
    let shard = (c % 4) as u32;
    // Per-client logical stamps: spaced 10 ms apart (well inside the 500/s
    // rate), offset per client so the server clock interleaves.
    let mut now_ns = (c as u64 + 1) * 1_000_000;
    let mut served = 0u64;
    let mut shed = 0u64;
    let mut rewarded = 0u64;

    for i in 0..CLOSED_LOOP {
        now_ns += 10_000_000;
        let x = ((c * CLOSED_LOOP + i) % 16) as f64 / 16.0;
        let resp = client
            .call(&Request::Decide {
                shard,
                now_ns,
                budget_ns: 0,
                context: SimpleContext::new(vec![x], ACTIONS),
            })
            .expect("decide");
        match resp {
            Response::Decision(d) => {
                served += 1;
                // Close the loop: reward the decision we just received.
                let reward = if d.action == 0 { x } else { 1.0 - x };
                now_ns += 1_000_000;
                match client
                    .call(&Request::Reward {
                        request_id: d.request_id,
                        now_ns,
                        reward,
                    })
                    .expect("reward")
                {
                    Response::RewardAck { .. } => rewarded += 1,
                    other => panic!("reward must ack, got {other:?}"),
                }
            }
            Response::Shed { .. } => shed += 1,
            other => panic!("decide must serve or shed, got {other:?}"),
        }
    }

    // The burst: everything stamped at one logical instant, fired without
    // waiting for responses. Only the bucket's burst allowance is served.
    let burst_ns = now_ns + 10_000_000;
    let mut seqs = Vec::with_capacity(BURST);
    for i in 0..BURST {
        let x = (i % 16) as f64 / 16.0;
        seqs.push(
            client
                .send(&Request::Decide {
                    shard,
                    now_ns: burst_ns,
                    budget_ns: 0,
                    context: SimpleContext::new(vec![x], ACTIONS),
                })
                .expect("send burst"),
        );
    }
    for _ in 0..BURST {
        let (_, resp) = client.recv().expect("recv burst");
        match resp {
            Response::Decision(_) => served += 1,
            Response::Shed {
                reason: ShedReason::RateLimited,
            } => shed += 1,
            Response::Shed { .. } => shed += 1,
            other => panic!("burst must serve or shed, got {other:?}"),
        }
    }
    (served, shed, rewarded)
}

//! Machine health, end to end: the Azure Compute scenario of paper §3–§4.
//!
//! ```text
//! cargo run --release --example machine_health
//! ```
//!
//! Walks the full workflow behind Figs. 3 and 4:
//!
//! 1. generate the full-feedback incident dataset (the safe 10-minute
//!    default reveals every shorter wait's downtime);
//! 2. simulate a randomized deployment to get partial-feedback exploration
//!    data;
//! 3. train a CB policy and compare its learning curve against the
//!    supervised full-feedback skyline;
//! 4. quantify off-policy-evaluation accuracy against ground truth, with
//!    bootstrap confidence intervals.

use harvest::core::learner::{
    ModelingMode, RegressionCbLearner, SampleWeighting, SupervisedLearner,
};
use harvest::core::policy::{ConstantPolicy, UniformPolicy};
use harvest::core::simulate::{simulate_exploration, simulate_exploration_n};
use harvest::estimators::evaluator::{EstimatorKind, OffPolicyEvaluator};
use harvest::mh::failure::{wait_minutes, DEFAULT_ACTION};
use harvest::mh::{generate_dataset, MachineHealthConfig};
use rand::SeedableRng;

fn main() {
    let full = generate_dataset(&MachineHealthConfig {
        incidents: 30_000,
        seed: 7,
    });
    let (train, test) = full.split_at(15_000);
    println!(
        "machine-health incidents: {} train / {} test, {} wait actions",
        train.len(),
        test.len(),
        10
    );

    // The operating point Azure ran during data collection.
    let default_policy = ConstantPolicy::new(DEFAULT_ACTION);
    let default_value = test.value_of_policy(&default_policy).unwrap();
    println!(
        "safe default (wait {} min): test value {:.4}",
        wait_minutes(DEFAULT_ACTION),
        default_value
    );

    // Supervised skyline: trains on the counterfactual reward of *every*
    // action — only possible because of the full-feedback quirk.
    let skyline = SupervisedLearner::new(1e-2)
        .unwrap()
        .fit_policy(&train)
        .unwrap();
    let skyline_value = test.value_of_policy(&skyline).unwrap();
    println!(
        "supervised skyline:         test value {:.4}",
        skyline_value
    );

    // CB learning curve from simulated exploration (Fig 4).
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let exploration = simulate_exploration(&train, &UniformPolicy::new(), &mut rng);
    let learner =
        RegressionCbLearner::new(ModelingMode::PerAction, SampleWeighting::Uniform, 1e-2).unwrap();
    println!("\nCB learning curve (partial feedback only):");
    println!("{:>8} {:>12} {:>18}", "N", "test value", "gap to skyline");
    for n in [500, 1_000, 2_000, 5_000, 10_000, 15_000] {
        let policy = learner.fit_policy(&exploration.truncated(n)).unwrap();
        let v = test.value_of_policy(&policy).unwrap();
        println!(
            "{:>8} {:>12.4} {:>17.1}%",
            n,
            v,
            100.0 * (skyline_value - v) / (skyline_value - default_value).max(1e-9)
        );
    }

    // Off-policy evaluation accuracy (Fig 3): estimate the final policy's
    // value from partial feedback on the *test* set and compare to truth.
    let policy = learner.fit_policy(&exploration).unwrap();
    let truth = test.value_of_policy(&policy).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    println!("\nIPS estimation of the learned policy (truth {truth:.4}):");
    println!(
        "{:>8} {:>12} {:>12} {:>20}",
        "N", "estimate", "|rel err|", "bootstrap 90% CI"
    );
    let eval = OffPolicyEvaluator::new(EstimatorKind::Ips);
    for n in [500, 2_000, 3_500, 10_000] {
        let expl = simulate_exploration_n(&test, &UniformPolicy::new(), n, &mut rng);
        let est = eval.evaluate(&expl, &policy);
        let (lo, hi) = eval.bootstrap_ci(&expl, &policy, 200, 0.05, 0.95, &mut rng);
        println!(
            "{:>8} {:>12.4} {:>11.1}% {:>9.4}..{:<9.4}",
            n,
            est.value,
            100.0 * (est.value - truth).abs() / truth,
            lo,
            hi
        );
    }
    println!(
        "\nWith ~3500 points the estimate is reliable enough to conclude the learned\n\
         policy beats the default ({default_value:.4}) — without deploying it."
    );
}

//! The decision service end to end: serve → log → harvest → train → gate →
//! hot-swap, on load-balancer traffic.
//!
//! A four-shard service routes Fig 5-style requests (two servers, one with
//! a fast path for 30 % of traffic, latency rising with load). Generation 0
//! explores uniformly; after each wave of traffic the trainer harvests the
//! service's own decision log, fits a candidate scorer, and asks the gate
//! for promotion. The run then demonstrates the gate's other half: a
//! sabotaged candidate (the learned scorer inverted) is refused.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example harvest_serve
//! ```

use harvest::lb::{ClusterConfig, LbContext};
use harvest::prelude::*;
use harvest::serve::{GateEstimator, Trainer};
use harvest::simnet::rng::fork_rng;
use harvest_estimators::bounds::BoundConfig;
use rand::Rng;

const SEED: u64 = 42;
const WAVES: usize = 3;
const REQUESTS_PER_WAVE: usize = 4000;
const BATCH: usize = 16;
const EPSILON: f64 = 0.15;

fn trainer_config() -> TrainerConfig {
    TrainerConfig::builder()
        .epsilon(EPSILON)
        .lambda(1e-3)
        .modeling(harvest::core::learner::ModelingMode::Pooled)
        .gate(
            GateConfig::builder()
                .bound(BoundConfig {
                    c: 2.0,
                    delta: 0.05,
                })
                .estimator(GateEstimator::Snips)
                .min_samples(500)
                .build(),
        )
        .build()
}

fn main() {
    let cluster = ClusterConfig::fig5();
    let store = MemorySegments::new();
    let cfg = ServeConfig::builder()
        .shards(4)
        .epsilon(EPSILON)
        .master_seed(SEED)
        .component("nginx-lb")
        .logger(
            LoggerConfig::builder()
                .capacity(4096)
                .backpressure(Backpressure::Block)
                .build(),
        )
        .join_ttl_ns(5_000_000_000)
        .trainer(trainer_config())
        .build()
        .expect("valid demo config");
    let svc = DecisionService::new(cfg, store.clone());

    println!("harvest-serve: online decision service on the Fig 5 cluster");
    println!(
        "{} shards, eps = {EPSILON}, seed = {SEED}, {REQUESTS_PER_WAVE} requests/wave, batch {BATCH}\n",
        svc.num_shards()
    );

    let mut traffic = fork_rng(SEED, "lb-traffic");
    let mut now_ns = 0u64;
    // Requests arrive in batches of BATCH (think: one poll of an accept
    // queue); the whole batch shares a logical arrival instant and is served
    // by one decide_batch call into this reused buffer.
    let mut batch = DecisionBatch::with_capacity(BATCH);
    let mut contexts: Vec<SimpleContext> = Vec::with_capacity(BATCH);
    let mut loads: Vec<(usize, Vec<u32>)> = Vec::with_capacity(BATCH);
    for wave in 0..WAVES {
        let serving = svc.registry().current();
        let mut latency_sum = 0.0;
        for batch_no in 0..REQUESTS_PER_WAVE / BATCH {
            now_ns += 1_000_000; // one batch per logical millisecond
            contexts.clear();
            loads.clear();
            for _ in 0..BATCH {
                // Request class from the workload mix, load snapshot per
                // server.
                let u: f64 = traffic.gen();
                let class = if u < cluster.class_probs[0] { 0 } else { 1 };
                let connections: Vec<u32> = (0..cluster.num_servers())
                    .map(|_| traffic.gen_range(0..15u32))
                    .collect();
                contexts.push(
                    LbContext {
                        connections: connections.clone(),
                        request_class: class,
                        num_classes: cluster.num_classes(),
                    }
                    .to_cb_context(),
                );
                loads.push((class, connections));
            }
            svc.decide_batch(batch_no % svc.num_shards(), now_ns, &contexts, &mut batch)
                .unwrap();
            for (d, (class, connections)) in batch.iter().zip(&loads) {
                let noise: f64 = 1.0 + cluster.latency_noise * traffic.gen_range(-1.0..1.0);
                let latency =
                    cluster.servers[d.action].latency(*class, connections[d.action]) * noise;
                latency_sum += latency;
                // ~2% of rewards never arrive (lost telemetry): those
                // decisions time out of the joiner instead of joining.
                if traffic.gen_bool(0.98) {
                    svc.reward(d.request_id, now_ns + 500_000, -latency);
                }
            }
        }
        let mean_latency = latency_sum / REQUESTS_PER_WAVE as f64;
        println!(
            "wave {wave}: served by gen {} ({}), mean latency {:.3} s",
            serving.generation, serving.name, mean_latency
        );

        // Harvest the service's own log and run one train → gate round.
        while svc.metrics().log_backlog > 0 {
            std::thread::yield_now();
        }
        let (records, stats) = store.recover();
        let report = svc.train_and_maybe_promote(&records).unwrap();
        println!(
            "  harvested {} records ({} quarantined), gate: candidate lcb {:.4} vs incumbent {:.4} -> {}",
            records.len(),
            stats.quarantined_records,
            report.gate.candidate_lcb,
            report.gate.incumbent_value,
            if report.gate.promoted {
                "PROMOTED"
            } else {
                "kept incumbent"
            }
        );
        println!(
            "  now serving gen {} ({})\n",
            report.serving_generation, report.serving_name
        );
    }

    // The gate's other half: a degraded candidate must be refused. Invert
    // the incumbent's learned scorer so it prefers the *worst* server.
    let incumbent = svc.registry().current();
    if let ServePolicy::Greedy(scorer) = &incumbent.policy {
        let sabotaged = negate(scorer);
        let trainer = Trainer::new(trainer_config());
        let (records, _) = store.recover();
        let (data, _) = trainer.harvest(&records).unwrap();
        let verdict = trainer.gate(
            &data,
            &incumbent.policy,
            &ServePolicy::Greedy(sabotaged.clone()),
            &sabotaged,
        );
        println!(
            "sabotage check: inverted scorer value {:.4} (lcb {:.4}) vs incumbent {:.4} -> {}",
            verdict.candidate_value,
            verdict.candidate_lcb,
            verdict.incumbent_value,
            if verdict.promoted {
                "PROMOTED (bug!)"
            } else {
                "refused, as it must be"
            }
        );
    }

    let snapshot = svc.metrics();
    println!(
        "\nrobustness: dropped={} quarantined_records={} writer_restarts={} breaker_trips={} \
         join_duplicates={} lock_recoveries={} degraded_decisions={}",
        snapshot.log_dropped,
        snapshot.log_quarantined,
        snapshot.writer_restarts,
        snapshot.breaker_trips,
        snapshot.join_duplicates,
        snapshot.lock_recoveries,
        snapshot.degraded_decisions,
    );
    println!(
        "conservation: enqueued({}) == written({}) + dropped({}) + quarantined({})",
        snapshot.log_enqueued, snapshot.log_written, snapshot.log_dropped, snapshot.log_quarantined
    );
    println!(
        "final metrics: {}",
        serde_json::to_string(&snapshot).unwrap()
    );
    svc.shutdown().unwrap();
}

/// The scorer with every weight negated: prefers whatever the original
/// avoids. The canonical "degraded candidate" for gate demonstrations.
fn negate(s: &harvest::core::scorer::LinearScorer) -> harvest::core::scorer::LinearScorer {
    use harvest::core::scorer::LinearScorer;
    match s {
        LinearScorer::PerAction { weights } => LinearScorer::PerAction {
            weights: weights
                .iter()
                .map(|w| w.iter().map(|x| -x).collect())
                .collect(),
        },
        LinearScorer::Pooled { weights } => LinearScorer::Pooled {
            weights: weights.iter().map(|x| -x).collect(),
        },
    }
}

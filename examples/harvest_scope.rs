//! harvest-scope: the windowed ops plane driven end to end.
//!
//! A two-shard service runs a seeded workload with the scope enabled:
//! every logical window the example drains the log pipeline and ticks the
//! scope, which slices the counters into window frames, folds the stage
//! journal into decide→terminal latency histograms, and evaluates the
//! watchdogs. Mid-run an injected overload burst floods the admission
//! door with sheds for four windows — the SLO burn-rate watchdog fires
//! after its hysteresis (two breaching windows), holds while the burn
//! lasts, and clears two healthy windows after the burst ends. A gate
//! round midway publishes harvest-quality gauges so the quality watchdog
//! has evidence to stay silent on.
//!
//! Everything is a pure function of the seed, so the example runs the
//! whole workload twice and asserts the window series, alert states,
//! alert event log, and Prometheus page come back byte-identical. CI runs
//! this on several seeds and greps for the `-> OK` lines:
//!
//! ```text
//! alert lifecycle: slo_burn_rate fired@w9 cleared@w13 -> OK
//! byte-identical exports across same-seed runs -> OK
//! ```
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example harvest_scope -- [seed]
//! ```

use harvest::core::SimpleContext;
use harvest::logs::segment::{MemorySegments, SegmentConfig};
use harvest::obs::{validate_exposition, AlertEvent, AlertPhase};
use harvest::serve::{
    Backpressure, DecisionService, LoggerConfig, ScopeConfig, ServeConfig, TrainerConfig,
};
use harvest::simnet::rng::fork_rng;
use rand::Rng;

const EPSILON: f64 = 0.2;
const ACTIONS: usize = 2;
/// Logical window width: 100 ms.
const WINDOW_NS: u64 = 100_000_000;
/// Windows driven per run.
const WINDOWS: u64 = 20;
/// Decisions served inside each window.
const PER_WINDOW: u64 = 50;
/// The overload burst occupies windows 8..=11.
const BURST_FIRST: u64 = 8;
const BURST_LAST: u64 = 11;
/// Door sheds injected per burst window (burn = 200 / 250 = 0.8).
const BURST_SHEDS: u64 = 200;
/// Gate round runs at the end of this window, publishing quality gauges.
const TRAIN_WINDOW: u64 = 5;

struct RunOutput {
    series_json: String,
    alerts_json: String,
    events_jsonl: String,
    prometheus: String,
    events: Vec<AlertEvent>,
}

fn drain(svc: &DecisionService<MemorySegments>) {
    while svc.metrics().log_backlog > 0 {
        std::thread::yield_now();
    }
}

fn run(seed: u64, verbose: bool) -> RunOutput {
    let store = MemorySegments::new();
    let cfg = ServeConfig::builder()
        .shards(2)
        .epsilon(EPSILON)
        .master_seed(seed)
        .component("harvest-scope")
        .logger(
            LoggerConfig::builder()
                .capacity(1024)
                .backpressure(Backpressure::Block)
                .segment(SegmentConfig {
                    max_records: 256,
                    max_bytes: 64 * 1024,
                    max_span_ns: u64::MAX,
                })
                .build(),
        )
        .trainer(
            TrainerConfig::builder()
                .lambda(1e-3)
                .epsilon(EPSILON)
                .build(),
        )
        .scope(
            ScopeConfig::builder()
                .window_ns(WINDOW_NS)
                .windows(64)
                .slo_threshold(0.3)
                .slo_hysteresis(2, 2)
                .quality_threshold(0.05)
                .quality_hysteresis(2, 2)
                .build(),
        )
        .build()
        .expect("valid demo config");
    let svc = DecisionService::new(cfg, store.clone());
    let metrics = svc.metrics_handle();

    let mut traffic = fork_rng(seed, "harvest-scope-traffic");
    let step = WINDOW_NS / (PER_WINDOW + 1);
    let mut events = Vec::new();
    for w in 1..=WINDOWS {
        let window_start = (w - 1) * WINDOW_NS;
        for i in 0..PER_WINDOW {
            let now_ns = window_start + (i + 1) * step;
            let x: f64 = traffic.gen_range(0.0..1.0);
            let ctx = SimpleContext::new(vec![x], ACTIONS);
            let d = svc
                .decide((i % 2) as usize, now_ns, &ctx)
                .expect("service must serve");
            let reward = if d.action == 0 { x } else { 1.0 - x };
            svc.reward(d.request_id, now_ns + step / 2, reward);
        }
        if (BURST_FIRST..=BURST_LAST).contains(&w) {
            // The injected chaos burst: an overload flood refused at the
            // admission door, ledgered exactly as the wire front-end
            // ledgers its sheds. The SLO burn for these windows is
            // 200 / (50 + 200) = 0.8, far past the 0.3 threshold.
            metrics.record_admission_shed_n(BURST_SHEDS);
        }
        if w == TRAIN_WINDOW {
            // A gate round publishes the harvest-quality gauges the
            // quality watchdog evaluates (healthy here, so it stays
            // silent — no evidence, no verdict before this point).
            drain(&svc);
            let (records, _) = store.recover();
            let report = svc
                .train_and_maybe_promote(&records)
                .expect("training must not crash without chaos");
            if verbose {
                println!(
                    "gate round at window {w}: {} -> serving gen {}",
                    report.gate.reason, report.serving_generation
                );
            }
        }
        // Tick at the window boundary, after the pipeline drains: the
        // journal and counters are then pure functions of the seed, and
        // this tick seals window `w`.
        drain(&svc);
        for ev in svc.scope_tick(w * WINDOW_NS) {
            if verbose {
                println!(
                    "window {:>2}: alert {} {} (value {:.3}, threshold {:.3})",
                    ev.window,
                    ev.alert,
                    match ev.phase {
                        AlertPhase::Fired => "FIRED",
                        AlertPhase::Cleared => "cleared",
                    },
                    ev.value,
                    ev.threshold
                );
            }
            events.push(ev);
        }
    }

    drain(&svc);
    let out = RunOutput {
        series_json: svc.export_series_json().expect("scope enabled"),
        alerts_json: svc.export_alerts_json().expect("scope enabled"),
        events_jsonl: svc.export_alert_events_jsonl().expect("scope enabled"),
        prometheus: svc.export_prometheus(),
        events,
    };
    let s = svc.metrics();
    let balanced = s.log_enqueued == s.log_written + s.log_dropped + s.log_quarantined;
    assert!(balanced, "conservation ledger violated");
    svc.shutdown().expect("clean shutdown");
    out
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(42);
    println!(
        "harvest-scope: seed {seed}, {WINDOWS} windows x {PER_WINDOW} decisions, \
         overload burst in windows {BURST_FIRST}..={BURST_LAST}"
    );

    let first = run(seed, true);

    // The watchdog lifecycle is fixed by the injected burst, independent
    // of the seed: breaches in windows 8..=11, fire on the second breach,
    // clear after two healthy windows.
    let slo: Vec<&AlertEvent> = first
        .events
        .iter()
        .filter(|e| e.alert == "slo_burn_rate")
        .collect();
    let lifecycle_ok = slo.len() == 2
        && slo[0].phase == AlertPhase::Fired
        && slo[0].window == BURST_FIRST + 1
        && slo[1].phase == AlertPhase::Cleared
        && slo[1].window == BURST_LAST + 2;
    println!(
        "alert lifecycle: slo_burn_rate fired@w{} cleared@w{} -> {}",
        slo.first().map(|e| e.window).unwrap_or(0),
        slo.get(1).map(|e| e.window).unwrap_or(0),
        if lifecycle_ok { "OK" } else { "VIOLATED" }
    );
    assert!(lifecycle_ok, "alert lifecycle violated: {:?}", first.events);
    let quality_silent = first.events.iter().all(|e| e.alert != "harvest_quality");
    assert!(quality_silent, "healthy run must not page on quality");

    validate_exposition(&first.prometheus).expect("exposition conformance");
    println!(
        "prometheus exposition: {} bytes, conformance -> OK",
        first.prometheus.len()
    );

    // Same seed, second run: every export must come back byte-identical.
    let second = run(seed, false);
    let identical = first.series_json == second.series_json
        && first.alerts_json == second.alerts_json
        && first.events_jsonl == second.events_jsonl
        && first.prometheus == second.prometheus;
    println!(
        "byte-identical exports across same-seed runs -> {}",
        if identical { "OK" } else { "VIOLATED" }
    );
    assert!(identical, "same-seed exports must be byte-identical");
}

//! harvest-top: an observability console for the decision service.
//!
//! Drives a seeded crossing-reward workload through a two-shard
//! [`DecisionService`] with tracing enabled, runs a promotion round
//! mid-stream, and renders what the new telemetry layer can see: the
//! conservation ledger, the decision-trace audit, logical-time histogram
//! percentiles, harvest-quality gauges from the gate, and the full
//! Prometheus text exposition.
//!
//! Three modes:
//!
//! * default — a `top`-style console: one dashboard frame per workload
//!   phase, then the final exposition;
//! * `--once` — batch mode for CI: run the whole workload, print the
//!   conservation/trace ledgers and the exposition page once, and assert
//!   both ledgers balance;
//! * `--remote` — after the workload, bind a live `harvest-wire` TCP
//!   server over the same service and scrape the dashboard through the
//!   OPS frame kind (Prometheus page, JSON snapshot, window series,
//!   alerts), asserting every remote body is byte-identical to the
//!   in-process export.
//!
//! Everything is a deterministic function of the seed: logical clocks,
//! forked RNGs, `Block` backpressure, and a drain before every render mean
//! two same-seed runs print byte-identical pages.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example harvest_top -- [seed] [--once] [--remote]
//! ```

use std::sync::Arc;

use harvest::core::SimpleContext;
use harvest::logs::segment::{MemorySegments, SegmentConfig};
use harvest::obs::HistogramSummary;
use harvest::serve::{Backpressure, DecisionService, LoggerConfig, ServeConfig, TrainerConfig};
use harvest::simnet::rng::fork_rng;
use harvest::wire::{OpsQuery, OpsResponse, TcpClient, TcpServer, WireConfig, WireCore};
use rand::Rng;

const EPSILON: f64 = 0.2;
const ACTIONS: usize = 2;
const REQUESTS: usize = 4000;
const FRAMES: usize = 4;

fn percentile_line(name: &str, h: &HistogramSummary) -> String {
    format!(
        "  {name:<28} n={:<6} p50={:<8} p90={:<8} p99={:<8} max={}",
        h.count, h.p50, h.p90, h.p99, h.max
    )
}

/// Waits for the writer to drain the queue, so every offered record has
/// reached its terminal state before anything is rendered.
fn drain(svc: &DecisionService<MemorySegments>) {
    while svc.metrics().log_backlog > 0 {
        std::thread::yield_now();
    }
}

fn frame(svc: &DecisionService<MemorySegments>, label: &str) {
    drain(svc);
    let s = svc.metrics();
    let obs = svc.obs().expect("tracing is enabled");
    let audit = obs.tracer().audit();
    println!("── harvest-top {label} ──");
    println!(
        "  decisions={} explored={:.1}% degraded={} dps(logical)={:.0} join-hit={:.1}%",
        s.decisions,
        100.0 * s.exploration_rate,
        s.degraded_decisions,
        s.decisions_per_sec,
        100.0 * s.join_hit_rate
    );
    println!(
        "  ledger: enqueued={} written={} dropped={} quarantined={} backlog={}",
        s.log_enqueued, s.log_written, s.log_dropped, s.log_quarantined, s.log_backlog
    );
    println!(
        "  trace:  decided={} written={} dropped={} quarantined={} unterminated={} trained={}",
        audit.decided,
        audit.written,
        audit.dropped,
        audit.quarantined,
        audit.unterminated,
        audit.trained
    );
    println!(
        "  breaker: {} (trips={} rearms={} last={})",
        if svc.breaker_open() { "OPEN" } else { "closed" },
        s.breaker_trips,
        s.breaker_rearms,
        svc.breaker_last_trip()
            .map(|r| r.to_string())
            .unwrap_or_else(|| "never".to_string())
    );
    println!(
        "{}",
        percentile_line("interarrival_ns", &obs.interarrival_histogram().summary())
    );
    println!(
        "{}",
        percentile_line("join_delay_ns", &obs.join_delay_histogram().summary())
    );
    println!(
        "{}",
        percentile_line(
            "join_queue_depth",
            &obs.join_queue_depth_histogram().summary()
        )
    );
    println!(
        "{}",
        percentile_line(
            "segment_records",
            &obs.segment_records_histogram().summary()
        )
    );
    if let Some(q) = obs.quality() {
        println!(
            "  quality: n={} ess={:.0} ({:.0}%) max_w={:.2} clipped={:.3} floor_hits={:.3} \
             drift={}",
            q.n,
            q.effective_sample_size,
            100.0 * q.ess_fraction,
            q.max_weight,
            q.clipped_weight_mass,
            q.floor_hit_rate,
            if q.drift_suspected {
                "SUSPECTED"
            } else {
                "none"
            }
        );
    } else {
        println!("  quality: (no gate round yet)");
    }
    if let Some(board) = obs.leaderboard() {
        let w = board.winner().expect("non-empty leaderboard");
        println!(
            "  portfolio: k={} n={} winner={} snips={:+.4} lcb={:+.4} ess={:.0}",
            board.entries.len(),
            board.n,
            w.name,
            w.snips.point,
            w.snips.lcb,
            w.ess
        );
    } else {
        println!("  portfolio: (no gate round yet)");
    }
}

fn main() {
    let mut seed: u64 = 42;
    let mut once = false;
    let mut remote = false;
    for arg in std::env::args().skip(1) {
        if arg == "--once" {
            once = true;
        } else if arg == "--remote" {
            remote = true;
        } else {
            seed = arg.parse().expect("seed must be a u64");
        }
    }
    println!(
        "harvest-top: seed {seed}{}{}",
        if once { " (--once)" } else { "" },
        if remote { " (--remote)" } else { "" }
    );

    let store = MemorySegments::new();
    let cfg = ServeConfig::builder()
        .shards(2)
        .epsilon(EPSILON)
        .master_seed(seed)
        .component("harvest-top")
        .logger(
            LoggerConfig::builder()
                .capacity(512)
                .backpressure(Backpressure::Block)
                .segment(SegmentConfig {
                    max_records: 256,
                    max_bytes: 64 * 1024,
                    max_span_ns: u64::MAX,
                })
                .build(),
        )
        .trainer(
            TrainerConfig::builder()
                .lambda(1e-3)
                .epsilon(EPSILON)
                .build(),
        )
        .build()
        .expect("valid demo config");
    let svc = Arc::new(DecisionService::new(cfg, store.clone()));

    // Crossing rewards (action 0 pays x, action 1 pays 1 − x), one gate
    // round after the second phase so the quality gauges have something to
    // say in the later frames.
    let train_at = REQUESTS / 2;
    let mut traffic = fork_rng(seed, "harvest-top-traffic");
    let mut now_ns = 0u64;
    for i in 0..REQUESTS {
        if i == train_at {
            drain(&svc);
            let (records, _) = store.recover();
            let report = svc
                .train_and_maybe_promote(&records)
                .expect("training must not crash without chaos");
            println!(
                "gate round at request {i}: {} (n={}, lcb={:.4} vs incumbent={:.4}) -> gen {}",
                report.gate.reason,
                report.gate.n,
                report.gate.candidate_lcb,
                report.gate.incumbent_value,
                report.serving_generation
            );
            let board = svc
                .obs()
                .expect("tracing is enabled")
                .leaderboard()
                .expect("gate round published a leaderboard");
            println!(
                "shadow portfolio: {} candidates in one pass, winner {}",
                board.entries.len(),
                report.gate.winner
            );
            for e in board.entries.iter().take(5) {
                println!(
                    "  #{:<3} {:<12} snips={:+.4} [{:+.4}, {:+.4}] ess={:.0} clipped={:.3}",
                    e.rank, e.name, e.snips.point, e.snips.lcb, e.snips.ucb, e.ess, e.clipped_mass
                );
            }
        }
        now_ns += 1_000_000;
        let x: f64 = traffic.gen_range(0.0..1.0);
        let ctx = SimpleContext::new(vec![x], ACTIONS);
        let d = svc
            .decide(i % svc.num_shards(), now_ns, &ctx)
            .expect("service must serve");
        let reward = if d.action == 0 { x } else { 1.0 - x };
        svc.reward(d.request_id, now_ns + 500_000, reward);
        if (i + 1) % (REQUESTS / FRAMES) == 0 {
            // A scope tick per phase, at a deterministic stamp, so the
            // window series and watchdogs have frames to show in every
            // mode.
            drain(&svc);
            svc.scope_tick(now_ns);
            if !once {
                frame(
                    &svc,
                    &format!("[{}/{FRAMES}]", (i + 1) / (REQUESTS / FRAMES)),
                );
            }
        }
    }

    drain(&svc);
    let s = svc.metrics();
    let audit = svc.trace_audit().expect("tracing is enabled");

    let balanced = s.log_enqueued == s.log_written + s.log_dropped + s.log_quarantined;
    println!(
        "conservation: enqueued({}) == written({}) + dropped({}) + quarantined({}) -> {}",
        s.log_enqueued,
        s.log_written,
        s.log_dropped,
        s.log_quarantined,
        if balanced { "OK" } else { "VIOLATED" }
    );
    assert!(balanced, "conservation ledger violated");

    let accounted = audit.written + audit.dropped + audit.quarantined + audit.evictions;
    let traced = audit.decided == accounted && audit.unterminated == 0;
    println!(
        "trace: decided({}) == written({}) + dropped({}) + quarantined({}) + evicted({}), \
         unterminated({}) -> {}",
        audit.decided,
        audit.written,
        audit.dropped,
        audit.quarantined,
        audit.evictions,
        audit.unterminated,
        if traced { "OK" } else { "VIOLATED" }
    );
    assert!(traced, "trace audit violated");

    println!("\n# Prometheus exposition");
    print!("{}", svc.export_prometheus());

    let snapshot = svc.obs_snapshot();
    println!(
        "\n# JSON snapshot\n{}",
        serde_json::to_string(&snapshot).expect("snapshot serializes")
    );

    if remote {
        scrape_remote(&svc);
    }

    let svc = Arc::try_unwrap(svc).ok().expect("all handles released");
    svc.shutdown().unwrap();
}

/// Binds a live TCP server over the (now quiescent) service and scrapes
/// the dashboard through the wire OPS endpoint, asserting every remote
/// body is byte-identical to the in-process export.
fn scrape_remote(svc: &Arc<DecisionService<MemorySegments>>) {
    let core = Arc::new(WireCore::new(Arc::clone(svc), WireConfig::default()));
    let server = TcpServer::bind(Arc::clone(&core), "127.0.0.1:0", 1).expect("bind loopback");
    let mut client = TcpClient::connect(server.local_addr()).expect("connect");

    let scrape = |client: &mut TcpClient, q: OpsQuery| -> String {
        match client.ops(&q).expect("scrape") {
            OpsResponse::Report { body } => body,
            OpsResponse::Shed { reason } => panic!("scrape shed: {reason}"),
        }
    };
    let checks = [
        (
            "prometheus",
            scrape(&mut client, OpsQuery::Prometheus),
            svc.export_prometheus(),
        ),
        (
            "snapshot",
            scrape(&mut client, OpsQuery::Snapshot),
            serde_json::to_string(&svc.obs_snapshot()).expect("snapshot serializes"),
        ),
        (
            "series",
            scrape(&mut client, OpsQuery::Series),
            svc.export_series_json().expect("scope enabled"),
        ),
        (
            "alerts",
            scrape(&mut client, OpsQuery::Alerts),
            svc.export_alerts_json().expect("scope enabled"),
        ),
    ];
    let ok = checks.iter().all(|(_, remote, local)| remote == local);
    println!(
        "\nremote scrape parity ({}) -> {}",
        checks
            .iter()
            .map(|(name, _, _)| *name)
            .collect::<Vec<_>>()
            .join(", "),
        if ok { "OK" } else { "VIOLATED" }
    );
    for (name, remote, local) in &checks {
        assert_eq!(remote, local, "{name} scrape must match in-process export");
    }
    // The leaderboard travels the same OPS path; compare it separately so
    // the four-family parity line above stays stable for CI.
    let remote_board = scrape(&mut client, OpsQuery::Leaderboard);
    let local_board = svc
        .export_leaderboard_json()
        .unwrap_or_else(|| "null".to_string());
    println!(
        "leaderboard scrape parity -> {}",
        if remote_board == local_board {
            "OK"
        } else {
            "VIOLATED"
        }
    );
    assert_eq!(
        remote_board, local_board,
        "leaderboard scrape must match in-process export"
    );
    server.shutdown();
}

//! Warm restart under checkpoint chaos: the durability demo.
//!
//! A wave-based driver runs the full harvest loop — serve, join rewards,
//! drain, train/promote, checkpoint — once uninterrupted as the reference,
//! then once per [`CheckpointFault`] class with the process killed at a
//! chosen wave: dying before the checkpoint write lands, tearing the blob
//! mid-write, flipping a payload byte at rest, and dying cleanly after the
//! write. Each killed run resumes via [`DecisionService::resume`] — newest
//! valid checkpoint plus deterministic replay of the decision-log suffix —
//! and must converge **byte-identically** with the reference: same durable
//! log, same incumbent weights, same per-shard RNG positions, same
//! conservation ledger, and no decision id reused across incarnations.
//!
//! The run prints one `-> OK` line per fault class; the CI restart job
//! greps for them. Everything is a deterministic function of the seed.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example harvest_restart -- [seed]
//! ```

use std::collections::HashSet;

use harvest::core::SimpleContext;
use harvest::estimators::bounds::BoundConfig;
use harvest::logs::checkpoint::{CheckpointWriter, MemoryCheckpoints};
use harvest::logs::record::LogRecord;
use harvest::logs::segment::{MemorySegments, SegmentConfig};
use harvest::serve::{
    Backpressure, ChaosPlan, CheckpointFault, DecisionService, GateConfig, LoggerConfig,
    MetricsSnapshot, RecoveryReport, ServeConfig, TrainerConfig,
};
use harvest::simnet::rng::fork_rng;
use rand::Rng;

const WAVES: usize = 6;
const DECISIONS_PER_WAVE: usize = 60;
const ACTIONS: usize = 3;
const KILL_WAVE: usize = 3;

fn config(seed: u64) -> ServeConfig {
    ServeConfig::builder()
        .shards(2)
        .epsilon(0.2)
        .master_seed(seed)
        .component("restart-demo")
        .logger(
            LoggerConfig::builder()
                .capacity(256)
                .backpressure(Backpressure::Block)
                .segment(SegmentConfig {
                    max_records: 64,
                    max_bytes: usize::MAX,
                    max_span_ns: u64::MAX,
                })
                .build(),
        )
        // A gate loose enough to promote at demo scale, so the killed runs
        // restore (or re-earn) a real trained incumbent.
        .trainer(
            TrainerConfig::builder()
                .lambda(1e-3)
                .epsilon(0.2)
                .gate(
                    GateConfig::builder()
                        .bound(BoundConfig { c: 2.0, delta: 0.2 })
                        // Single-candidate gate: the demo must promote from
                        // a small per-wave harvest, which the k=16
                        // simultaneous CI would (correctly) refuse.
                        .portfolio(1)
                        .min_samples(50)
                        .build(),
                )
                .build(),
        )
        .build()
        .expect("valid demo config")
}

fn run_wave(svc: &DecisionService<MemorySegments>, seed: u64, wave: usize) {
    let mut traffic = fork_rng(seed, &format!("restart-demo-wave-{wave}"));
    for i in 0..DECISIONS_PER_WAVE {
        let step = (wave * DECISIONS_PER_WAVE + i) as u64;
        let now_ns = (step + 1) * 1_000_000;
        let x: f64 = traffic.gen_range(0.0..1.0);
        let ctx = SimpleContext::new(vec![x], ACTIONS);
        let d = svc
            .decide((step % 2) as usize, now_ns, &ctx)
            .expect("decide");
        let reward = if d.action == 0 { x } else { 1.0 - x };
        svc.reward(d.request_id, now_ns + 500, reward);
    }
    while svc.metrics().log_backlog > 0 {
        std::thread::yield_now();
    }
}

fn train(svc: &DecisionService<MemorySegments>, store: &MemorySegments) {
    let (records, _) = store.recover();
    svc.train_and_maybe_promote(&records).expect("train");
}

fn wave_end_ns(wave: usize) -> u64 {
    ((wave + 1) * DECISIONS_PER_WAVE) as u64 * 1_000_000
}

struct RunResult {
    snap: MetricsSnapshot,
    records: Vec<LogRecord>,
    incumbent: String,
    shards: String,
    recovery: Option<RecoveryReport>,
}

fn finish(svc: DecisionService<MemorySegments>, recovery: Option<RecoveryReport>) -> RunResult {
    let state = svc.checkpoint_state(0);
    let snap = svc.metrics();
    let store = svc.shutdown().expect("shutdown");
    let (records, _) = store.recover();
    RunResult {
        snap,
        records,
        incumbent: serde_json::to_string(&state.incumbent).unwrap(),
        shards: serde_json::to_string(&state.shards).unwrap(),
        recovery,
    }
}

fn uninterrupted(seed: u64) -> RunResult {
    let store = MemorySegments::new();
    let mut writer = CheckpointWriter::new(MemoryCheckpoints::new(), 8).expect("writer");
    let svc = DecisionService::new(config(seed), store.clone());
    for wave in 0..WAVES {
        run_wave(&svc, seed, wave);
        train(&svc, &store);
        svc.write_checkpoint(&mut writer, wave as u64 + 1, wave_end_ns(wave))
            .expect("checkpoint");
    }
    finish(svc, None)
}

fn interrupted(seed: u64, fault: CheckpointFault) -> RunResult {
    let store = MemorySegments::new();
    let ckpts = MemoryCheckpoints::new();
    let mut writer = CheckpointWriter::new(ckpts.clone(), 8).expect("writer");
    let plan = ChaosPlan::none().fault_checkpoint_at(KILL_WAVE as u64, fault);
    let mut svc = DecisionService::with_chaos(config(seed), store.clone(), plan.clone());
    let mut recovery = None;
    let mut wave = 0usize;
    let mut replayed_waves = 0usize;
    let mut killed = false;
    while wave < WAVES {
        if replayed_waves > 0 {
            replayed_waves -= 1; // came back through replay; retrain only
        } else {
            run_wave(&svc, seed, wave);
        }
        train(&svc, &store);
        let dies_here = wave == KILL_WAVE && !killed;
        if !(dies_here && matches!(fault, CheckpointFault::KillBefore)) {
            svc.write_checkpoint(&mut writer, wave as u64 + 1, wave_end_ns(wave))
                .expect("checkpoint");
        }
        if dies_here {
            killed = true;
            let dead = svc.shutdown().expect("kill");
            let segments = dead.snapshot();
            let (resumed, report) =
                DecisionService::resume(config(seed), dead, Some(plan.clone()), &ckpts, &segments)
                    .expect("resume");
            svc = resumed;
            wave = report.cursor as usize;
            replayed_waves = report.replayed_decisions as usize / DECISIONS_PER_WAVE;
            recovery = Some(report);
            continue;
        }
        wave += 1;
    }
    finish(svc, recovery)
}

fn converges(reference: &RunResult, run: &RunResult) -> bool {
    let ids: Vec<u64> = run
        .records
        .iter()
        .filter(|r| r.is_decision())
        .map(|r| r.request_id())
        .collect();
    let unique: HashSet<u64> = ids.iter().copied().collect();
    let (a, b) = (&run.snap, &reference.snap);
    run.records == reference.records
        && unique.len() == ids.len()
        && run.incumbent == reference.incumbent
        && run.shards == reference.shards
        && a.decisions == b.decisions
        && a.explorations == b.explorations
        && a.log_enqueued == b.log_enqueued
        && a.log_written == b.log_written
        && a.log_dropped == b.log_dropped
        && a.log_quarantined == b.log_quarantined
        && a.join_hits == b.join_hits
        && a.swaps == b.swaps
        && a.log_enqueued == a.log_written + a.log_dropped + a.log_quarantined
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(42);

    println!(
        "harvest-restart: seed {seed}, {WAVES} waves x {DECISIONS_PER_WAVE} decisions, \
         kill at wave {KILL_WAVE}"
    );
    let reference = uninterrupted(seed);
    println!(
        "reference run: {} records, {} promotion(s), incumbent {}\n",
        reference.records.len(),
        reference.snap.swaps,
        reference.incumbent.chars().take(60).collect::<String>(),
    );
    assert!(
        reference.snap.swaps >= 1,
        "demo must exercise at least one promotion"
    );

    let faults = [
        (CheckpointFault::KillBefore, "kill-before-checkpoint"),
        (CheckpointFault::Tear { keep_frac: 0.4 }, "torn-checkpoint"),
        (CheckpointFault::Corrupt { xor: 0x10 }, "corrupt-checkpoint"),
        (CheckpointFault::KillAfter, "kill-after-checkpoint"),
    ];
    let mut all_ok = true;
    for (fault, name) in faults {
        let run = interrupted(seed, fault);
        let rec = run.recovery.as_ref().expect("interrupted run resumed");
        let ok = converges(&reference, &run);
        all_ok &= ok;
        println!(
            "restart[{name}]: resumed at cursor {} ({}), replayed {} decisions + {} outcomes, \
             discarded {} checkpoint(s), divergence {} -> {}",
            rec.cursor,
            if rec.cold_start {
                "cold full-log replay"
            } else {
                "warm"
            },
            rec.replayed_decisions,
            rec.replayed_outcomes,
            rec.checkpoints_discarded,
            rec.replay_divergence,
            if ok { "OK" } else { "DIVERGED" }
        );
    }
    assert!(all_ok, "an interrupted run diverged from the reference");

    let s = &reference.snap;
    println!(
        "\ncross-incarnation ledger: enqueued({}) == written({}) + dropped({}) + \
         quarantined({}) -> OK",
        s.log_enqueued, s.log_written, s.log_dropped, s.log_quarantined
    );
    println!("byte-identical convergence across all fault classes -> OK");
}

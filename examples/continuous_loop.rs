//! The continuous optimization loop: repeat harvest → learn → deploy.
//!
//! ```text
//! cargo run --release --example continuous_loop
//! ```
//!
//! Paper §3: "we may want to repeat steps 1-3 to continuously optimize the
//! system" (the Decision Service pattern), and §5: when the environment
//! changes (assumption A2 breaks), "we can address this by using
//! incremental learning algorithms that continuously update the policy."
//!
//! This example runs that loop on the load balancer:
//!
//! * epoch 0 deploys uniform-random routing (pure exploration);
//! * every later epoch retrains the CB model on a sliding window of the
//!   most recent harvested epochs and deploys it ε-greedily (ε = 0.1), so
//!   its own traffic remains harvestable;
//! * halfway through, the environment shifts: the two servers swap their
//!   per-class fast paths (think: a cache warms up on the other replica).
//!
//! Watch the mean latency drop as the loop learns, jump when the world
//! changes, and recover within two epochs — without any operator
//! intervention.

use harvest::core::Dataset;
use harvest::lb::policy::{CbRouting, RandomRouting};
use harvest::lb::sim::{run_simulation, LbRunResult, SimConfig};
use harvest::lb::ClusterConfig;

const EPOCHS: usize = 12;
const REQUESTS_PER_EPOCH: usize = 12_000;
const WINDOW: usize = 2; // train on the last 2 epochs only (adaptivity)
const EPSILON: f64 = 0.1;

fn swapped_cluster() -> ClusterConfig {
    let mut c = ClusterConfig::fig5();
    // The class-A fast path migrates from server 2 to server 1.
    let b0 = c.servers[0].bases.clone();
    c.servers[0].bases = c.servers[1].bases.clone();
    c.servers[1].bases = b0;
    c
}

fn main() {
    let before = ClusterConfig::fig5();
    let after = swapped_cluster();

    let mut window: Vec<Dataset<harvest::core::SimpleContext>> = Vec::new();
    println!(
        "{:>6} {:>12} {:>14} {:>10}",
        "epoch", "policy", "mean latency", "world"
    );

    let mut latencies = Vec::new();
    for epoch in 0..EPOCHS {
        let cluster = if epoch < EPOCHS / 2 {
            before.clone()
        } else {
            after.clone()
        };
        let world = if epoch < EPOCHS / 2 {
            "A"
        } else {
            "B (shifted)"
        };
        let mut cfg = SimConfig::table2(cluster, REQUESTS_PER_EPOCH, 1000 + epoch as u64);
        cfg.warmup = 1_000;

        let (name, run): (&str, LbRunResult) = if window.is_empty() {
            ("explore", run_simulation(&cfg, &mut RandomRouting))
        } else {
            // Retrain on the sliding window of recent harvested epochs.
            let mut merged = Dataset::new();
            for d in &window {
                for s in d {
                    merged.push(s.clone()).unwrap();
                }
            }
            let learner = harvest::core::learner::RegressionCbLearner::new(
                harvest::core::learner::ModelingMode::Pooled,
                harvest::core::learner::SampleWeighting::Uniform,
                1e-3,
            )
            .unwrap();
            let scorer = learner.fit(&merged).unwrap();
            (
                "cb(eps=0.1)",
                run_simulation(&cfg, &mut CbRouting::epsilon_greedy(scorer, EPSILON)),
            )
        };

        println!(
            "{:>6} {:>12} {:>13.3}s {:>10}",
            epoch, name, run.mean_latency_s, world
        );
        latencies.push(run.mean_latency_s);

        // Harvest this epoch's logs for the next round.
        window.push(run.to_dataset());
        if window.len() > WINDOW {
            window.remove(0);
        }
    }

    let explore = latencies[0];
    let settled_a = latencies[EPOCHS / 2 - 1];
    let shock = latencies[EPOCHS / 2];
    let settled_b = latencies[EPOCHS - 1];
    println!(
        "\nexploration cost {explore:.3}s -> optimized {settled_a:.3}s; world shift \
         bumped latency to {shock:.3}s,\nand the loop re-converged to {settled_b:.3}s \
         without intervention."
    );
    assert!(
        settled_a < explore - 0.05,
        "loop must improve on exploration"
    );
    assert!(
        settled_b < shock,
        "loop must recover after the environment change"
    );
}

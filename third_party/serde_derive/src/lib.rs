//! Offline stand-in for `serde_derive`.
//!
//! The real crate depends on `syn`/`quote`, which are unavailable in this
//! build environment, so the two derive macros here parse the item's
//! `TokenStream` by hand and emit the trait impls as source strings parsed
//! back into token streams. Coverage is exactly what the workspace needs:
//!
//! - named structs, including generic ones (`Dataset<C>`) and private fields;
//! - newtype tuple structs (`SimTime(u64)`), serialized transparently;
//! - enums with unit, newtype, and struct variants, externally tagged by
//!   default (`"Ips"`, `{"ClippedIps": 2.0}`, `{"PerAction": {...}}`);
//! - internally tagged enums via `#[serde(tag = "...", rename_all =
//!   "snake_case")]` (the decision-log `LogRecord`);
//! - field attributes `#[serde(default)]` and
//!   `#[serde(skip_serializing_if = "path")]`.
//!
//! Anything outside that set (where-clauses, multi-field tuple structs,
//! lifetimes on derived types) panics at expansion time with a clear
//! message rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree rendering) for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stub: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize` (value-tree reading) for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stub: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    is_option: bool,
    default: bool,
    skip_if: Option<String>,
}

enum Payload {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    payload: Payload,
}

enum Body {
    NamedStruct(Vec<Field>),
    NewtypeStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Generic type params as `(ident, declared-bounds-including-colon)`.
    params: Vec<(String, String)>,
    tag: Option<String>,
    rename_all: Option<String>,
    body: Body,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Extracts `(key, value)` entries from one attribute's bracket content if
/// it is a `serde(...)` attribute; other attributes (docs, derives) yield
/// nothing.
fn parse_serde_attr_entries(stream: TokenStream) -> Vec<(String, Option<String>)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.len() < 2 || ident_of(&tokens[0]).as_deref() != Some("serde") {
        return Vec::new();
    }
    let TokenTree::Group(g) = &tokens[1] else {
        return Vec::new();
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut out = Vec::new();
    let mut j = 0;
    while j < inner.len() {
        let key = ident_of(&inner[j]).expect("serde_derive stub: expected ident in serde attr");
        j += 1;
        let mut val = None;
        if j < inner.len() && is_punct(&inner[j], '=') {
            j += 1;
            val = Some(inner[j].to_string().trim_matches('"').to_string());
            j += 1;
        }
        out.push((key, val));
        if j < inner.len() && is_punct(&inner[j], ',') {
            j += 1;
        }
    }
    out
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut tag = None;
    let mut rename_all = None;

    while i < tokens.len() && is_punct(&tokens[i], '#') {
        if let TokenTree::Group(g) = &tokens[i + 1] {
            for (key, val) in parse_serde_attr_entries(g.stream()) {
                match key.as_str() {
                    "tag" => tag = val,
                    "rename_all" => rename_all = val,
                    other => panic!("serde_derive stub: unsupported container attr `{other}`"),
                }
            }
        }
        i += 2;
    }

    if ident_of(&tokens[i]).as_deref() == Some("pub") {
        i += 1;
        if let TokenTree::Group(g) = &tokens[i] {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }

    let kw = ident_of(&tokens[i]).expect("serde_derive stub: expected `struct` or `enum`");
    i += 1;
    let name = ident_of(&tokens[i]).expect("serde_derive stub: expected item name");
    i += 1;

    let mut params: Vec<(String, String)> = Vec::new();
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        i += 1;
        let mut depth = 1usize;
        let mut current: Vec<TokenTree> = Vec::new();
        let mut groups: Vec<Vec<TokenTree>> = Vec::new();
        while i < tokens.len() {
            let t = tokens[i].clone();
            if is_punct(&t, '<') {
                depth += 1;
            } else if is_punct(&t, '>') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            if is_punct(&t, ',') && depth == 1 {
                groups.push(std::mem::take(&mut current));
            } else {
                current.push(t);
            }
            i += 1;
        }
        if !current.is_empty() {
            groups.push(current);
        }
        for g in groups {
            let first = g.first().expect("serde_derive stub: empty generic param");
            if is_punct(first, '\'') {
                panic!("serde_derive stub: lifetimes on derived types unsupported");
            }
            let pname = ident_of(first).expect("serde_derive stub: expected generic param ident");
            if pname == "const" {
                panic!("serde_derive stub: const generics unsupported");
            }
            let bounds = g[1..]
                .iter()
                .map(TokenTree::to_string)
                .collect::<Vec<_>>()
                .join(" ");
            params.push((pname, bounds));
        }
    }

    if ident_of(&tokens[i]).as_deref() == Some("where") {
        panic!("serde_derive stub: where clauses unsupported");
    }

    let body = match &tokens[i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
            if kw == "struct" {
                Body::NamedStruct(parse_fields(g.stream()))
            } else {
                Body::Enum(parse_variants(g.stream()))
            }
        }
        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut depth = 0i32;
            for t in &inner {
                if is_punct(t, '<') {
                    depth += 1;
                } else if is_punct(t, '>') {
                    depth -= 1;
                } else if is_punct(t, ',') && depth == 0 {
                    panic!("serde_derive stub: only newtype tuple structs supported");
                }
            }
            Body::NewtypeStruct
        }
        other => panic!("serde_derive stub: unexpected item body `{other}`"),
    };

    Item {
        name,
        params,
        tag,
        rename_all,
        body,
    }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let mut default = false;
        let mut skip_if = None;
        while is_punct(&tokens[i], '#') {
            if let TokenTree::Group(g) = &tokens[i + 1] {
                for (key, val) in parse_serde_attr_entries(g.stream()) {
                    match key.as_str() {
                        "default" => default = true,
                        "skip_serializing_if" => skip_if = val,
                        other => panic!("serde_derive stub: unsupported field attr `{other}`"),
                    }
                }
            }
            i += 2;
        }
        if ident_of(&tokens[i]).as_deref() == Some("pub") {
            i += 1;
            if let TokenTree::Group(g) = &tokens[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let name = ident_of(&tokens[i]).expect("serde_derive stub: expected field name");
        i += 1;
        assert!(
            is_punct(&tokens[i], ':'),
            "serde_derive stub: expected `:` after field name"
        );
        i += 1;
        let mut depth = 0i32;
        let mut ty: Vec<TokenTree> = Vec::new();
        while i < tokens.len() {
            let t = &tokens[i];
            if is_punct(t, '<') {
                depth += 1;
            } else if is_punct(t, '>') {
                depth -= 1;
            } else if is_punct(t, ',') && depth == 0 {
                i += 1;
                break;
            }
            ty.push(t.clone());
            i += 1;
        }
        let is_option = ty.first().and_then(ident_of).as_deref() == Some("Option");
        fields.push(Field {
            name,
            is_option,
            default,
            skip_if,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        while is_punct(&tokens[i], '#') {
            i += 2;
        }
        let name = ident_of(&tokens[i]).expect("serde_derive stub: expected variant name");
        i += 1;
        let payload = if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    i += 1;
                    Payload::Newtype
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let f = parse_fields(g.stream());
                    i += 1;
                    Payload::Struct(f)
                }
                _ => Payload::Unit,
            }
        } else {
            Payload::Unit
        };
        if i < tokens.len() && is_punct(&tokens[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, payload });
    }
    variants
}

/// Applies the container's `rename_all` rule to a variant name.
fn variant_tag(name: &str, rename_all: Option<&str>) -> String {
    match rename_all {
        Some("snake_case") => {
            let mut out = String::new();
            for (i, ch) in name.chars().enumerate() {
                if ch.is_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.extend(ch.to_lowercase());
                } else {
                    out.push(ch);
                }
            }
            out
        }
        Some(other) => panic!("serde_derive stub: unsupported rename_all `{other}`"),
        None => name.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// Builds `impl<...bounds...>` and `<...params...>` strings, adding `bound`
/// to every type parameter.
fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.params.is_empty() {
        return (String::new(), String::new());
    }
    let mut impl_params = Vec::new();
    let mut ty_params = Vec::new();
    for (n, b) in &item.params {
        if b.trim().is_empty() {
            impl_params.push(format!("{n}: {bound}"));
        } else {
            impl_params.push(format!("{n} {b} + {bound}"));
        }
        ty_params.push(n.clone());
    }
    (
        format!("<{}>", impl_params.join(", ")),
        format!("<{}>", ty_params.join(", ")),
    )
}

fn gen_serialize(item: &Item) -> String {
    let (ig, tg) = impl_header(item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.body {
        Body::NewtypeStruct => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::NamedStruct(fields) => {
            let mut s =
                String::from("let mut __entries: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields {
                let push = format!(
                    "__entries.push((String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));",
                    f.name
                );
                match &f.skip_if {
                    Some(path) => {
                        s.push_str(&format!("if !{path}(&self.{}) {{ {push} }}\n", f.name))
                    }
                    None => {
                        s.push_str(&push);
                        s.push('\n');
                    }
                }
            }
            s.push_str("::serde::Value::Object(__entries)");
            s
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let tag_name = variant_tag(&v.name, item.rename_all.as_deref());
                let arm = match (&item.tag, &v.payload) {
                    (None, Payload::Unit) => format!(
                        "{name}::{} => ::serde::Value::String(String::from(\"{tag_name}\")),\n",
                        v.name
                    ),
                    (Some(tk), Payload::Unit) => format!(
                        "{name}::{} => ::serde::Value::Object(vec![(String::from(\"{tk}\"), \
                         ::serde::Value::String(String::from(\"{tag_name}\")))]),\n",
                        v.name
                    ),
                    (None, Payload::Newtype) => format!(
                        "{name}::{}(__inner) => ::serde::Value::Object(vec![(String::from(\"{tag_name}\"), \
                         ::serde::Serialize::to_value(__inner))]),\n",
                        v.name
                    ),
                    (Some(tk), Payload::Newtype) => format!(
                        "{name}::{}(__inner) => {{\n\
                         let mut __entries = match ::serde::Serialize::to_value(__inner) {{\n\
                             ::serde::Value::Object(__e) => __e,\n\
                             __other => vec![(String::from(\"value\"), __other)],\n\
                         }};\n\
                         __entries.insert(0, (String::from(\"{tk}\"), \
                         ::serde::Value::String(String::from(\"{tag_name}\"))));\n\
                         ::serde::Value::Object(__entries)\n\
                         }}\n",
                        v.name
                    ),
                    (tag_opt, Payload::Struct(fields)) => {
                        let pats: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut __entries: Vec<(String, ::serde::Value)> = Vec::new();\n",
                        );
                        if let Some(tk) = tag_opt {
                            inner.push_str(&format!(
                                "__entries.push((String::from(\"{tk}\"), \
                                 ::serde::Value::String(String::from(\"{tag_name}\"))));\n"
                            ));
                        }
                        for f in fields {
                            let push = format!(
                                "__entries.push((String::from(\"{0}\"), ::serde::Serialize::to_value({0})));",
                                f.name
                            );
                            match &f.skip_if {
                                Some(path) => inner.push_str(&format!(
                                    "if !{path}({}) {{ {push} }}\n",
                                    f.name
                                )),
                                None => {
                                    inner.push_str(&push);
                                    inner.push('\n');
                                }
                            }
                        }
                        let result = if tag_opt.is_some() {
                            "::serde::Value::Object(__entries)".to_string()
                        } else {
                            format!(
                                "::serde::Value::Object(vec![(String::from(\"{tag_name}\"), \
                                 ::serde::Value::Object(__entries))])"
                            )
                        };
                        format!(
                            "{name}::{} {{ {} }} => {{\n{inner}{result}\n}}\n",
                            v.name,
                            pats.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl{ig} ::serde::Serialize for {name}{tg} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

/// Generates the field initializers of a struct literal, pulling each field
/// out of the object value bound to `src`.
fn gen_field_inits(fields: &[Field], src: &str, container: &str) -> String {
    let mut s = String::new();
    for f in fields {
        let missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else if f.is_option {
            "None".to_string()
        } else {
            format!(
                "return Err(::serde::DeError::custom(\"missing field `{}` in `{container}`\"))",
                f.name
            )
        };
        s.push_str(&format!(
            "{0}: match {src}.get(\"{0}\") {{\n\
                 Some(__fv) => ::serde::Deserialize::from_value(__fv)?,\n\
                 None => {missing},\n\
             }},\n",
            f.name
        ));
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    let (ig, tg) = impl_header(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::NewtypeStruct => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::NamedStruct(fields) => format!(
            "if __v.as_object().is_none() {{\n\
                 return Err(::serde::DeError::custom(\"expected object for `{name}`\"));\n\
             }}\n\
             Ok({name} {{\n{}\n}})",
            gen_field_inits(fields, "__v", name)
        ),
        Body::Enum(variants) => match &item.tag {
            Some(tk) => {
                let mut arms = String::new();
                for v in variants {
                    let tag_name = variant_tag(&v.name, item.rename_all.as_deref());
                    let arm = match &v.payload {
                        Payload::Unit => format!("\"{tag_name}\" => Ok({name}::{}),\n", v.name),
                        Payload::Newtype => format!(
                            "\"{tag_name}\" => Ok({name}::{}(::serde::Deserialize::from_value(__v)?)),\n",
                            v.name
                        ),
                        Payload::Struct(fields) => format!(
                            "\"{tag_name}\" => Ok({name}::{} {{\n{}\n}}),\n",
                            v.name,
                            gen_field_inits(fields, "__v", name)
                        ),
                    };
                    arms.push_str(&arm);
                }
                format!(
                    "let __tag = match __v.get(\"{tk}\").and_then(|__t| __t.as_str()) {{\n\
                         Some(__t) => __t,\n\
                         None => return Err(::serde::DeError::custom(\"missing `{tk}` tag for `{name}`\")),\n\
                     }};\n\
                     match __tag {{\n{arms}\
                     __other => Err(::serde::DeError::custom(format!(\"unknown variant `{{}}` of `{name}`\", __other))),\n\
                     }}"
                )
            }
            None => {
                let mut string_arms = String::new();
                let mut object_arms = String::new();
                for v in variants {
                    let tag_name = variant_tag(&v.name, item.rename_all.as_deref());
                    match &v.payload {
                        Payload::Unit => string_arms.push_str(&format!(
                            "\"{tag_name}\" => Ok({name}::{}),\n",
                            v.name
                        )),
                        Payload::Newtype => object_arms.push_str(&format!(
                            "\"{tag_name}\" => Ok({name}::{}(::serde::Deserialize::from_value(__inner)?)),\n",
                            v.name
                        )),
                        Payload::Struct(fields) => object_arms.push_str(&format!(
                            "\"{tag_name}\" => Ok({name}::{} {{\n{}\n}}),\n",
                            v.name,
                            gen_field_inits(fields, "__inner", name)
                        )),
                    }
                }
                format!(
                    "match __v {{\n\
                         ::serde::Value::String(__s) => match __s.as_str() {{\n{string_arms}\
                             __other => Err(::serde::DeError::custom(format!(\"unknown variant `{{}}` of `{name}`\", __other))),\n\
                         }},\n\
                         ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                             let (__k, __inner) = &__entries[0];\n\
                             match __k.as_str() {{\n{object_arms}\
                                 __other => Err(::serde::DeError::custom(format!(\"unknown variant `{{}}` of `{name}`\", __other))),\n\
                             }}\n\
                         }}\n\
                         _ => Err(::serde::DeError::custom(\"expected string or single-key object for `{name}`\")),\n\
                     }}"
                )
            }
        },
    };
    format!(
        "impl{ig} ::serde::Deserialize for {name}{tg} {{\n\
             fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

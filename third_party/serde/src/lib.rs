//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serialization framework that is call-compatible with
//! how the workspace uses `serde`: `#[derive(Serialize, Deserialize)]` on
//! structs and enums (including internally-tagged enums and
//! `skip_serializing_if`/`default` field attributes), generic `T: Serialize`
//! bounds, and `serde_json`-style to/from-string round-trips.
//!
//! Instead of real serde's visitor architecture, everything funnels through
//! one JSON-shaped [`Value`] tree: `Serialize` renders into a `Value`,
//! `Deserialize` reads back out of one. The companion `serde_json` stand-in
//! converts `Value` to and from JSON text. Object key order is preserved
//! (declaration order), so serialized output is deterministic — a property
//! the workspace's byte-identical-log tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Number, Value};

/// Serialization: render `self` as a [`Value`] tree.
///
/// The real serde's `Serialize` is parameterized over a `Serializer`; every
/// use in this workspace ultimately targets JSON, so the stand-in fixes the
/// data model to [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization: reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `Self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------------------
// Serialize implementations for primitives and std containers.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom("expected boolean"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::custom("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::custom("expected integer"))?;
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::custom("expected number"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::custom("expected array"))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::custom("array length mismatch"))
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| DeError::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(DeError::custom("tuple length mismatch"));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_string()));
    }

    #[test]
    fn integers_coerce_across_number_kinds() {
        // A JSON "5" may land as U64 but deserialize into f64, and an
        // integral float may deserialize into an integer field.
        assert_eq!(f64::from_value(&Value::Number(Number::U64(5))), Ok(5.0));
        assert_eq!(u64::from_value(&Value::Number(Number::F64(5.0))), Ok(5));
        assert!(u64::from_value(&Value::Number(Number::F64(5.5))).is_err());
        assert!(u64::from_value(&Value::Number(Number::I64(-1))).is_err());
    }

    #[test]
    fn options_map_null() {
        let none: Option<f64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
        assert_eq!(
            Option::<f64>::from_value(&0.25f64.to_value()),
            Ok(Some(0.25))
        );
    }

    #[test]
    fn vecs_round_trip() {
        let v = vec![vec![1.0f64, 2.0], vec![3.0]];
        assert_eq!(Vec::<Vec<f64>>::from_value(&v.to_value()), Ok(v));
    }

    #[test]
    fn tuples_round_trip() {
        let t = (1u64, -2i64, 0.5f64);
        assert_eq!(<(u64, i64, f64)>::from_value(&t.to_value()), Ok(t));
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::Number(Number::U64(300))).is_err());
    }
}

//! The JSON-shaped value tree that all (de)serialization flows through.

/// A JSON number, kept in its widest lossless representation.
///
/// `u64` values (e.g. request IDs and nanosecond timestamps) must survive a
/// round trip without passing through `f64`, which can only represent
/// integers up to 2^53 exactly — hence the three-way split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
}

/// A dynamically-typed JSON value.
///
/// Objects are ordered key/value lists, not hash maps: serialization emits
/// keys in insertion (declaration) order, which keeps output byte-stable
/// across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the boolean if this is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the string slice if this is `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer
    /// (including an integral float).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(n)) => Some(*n),
            Value::Number(Number::I64(n)) => u64::try_from(*n).ok(),
            Value::Number(Number::F64(f)) => {
                if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 {
                    Some(*f as u64)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is an integer (including an
    /// integral float) within range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(n)) => Some(*n),
            Value::Number(Number::U64(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::F64(f)) => {
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                    Some(*f as i64)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(f)) => Some(*f),
            Value::Number(Number::U64(n)) => Some(*n as f64),
            Value::Number(Number::I64(n)) => Some(*n as f64),
            _ => None,
        }
    }

    /// Returns the elements if this is `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the key/value entries if this is `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a key in an object (first match wins). `None` for
    /// non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_u64_survives_without_f64() {
        let big = u64::MAX - 1;
        let v = Value::Number(Number::U64(big));
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn integral_float_coerces_to_integer() {
        let v = Value::Number(Number::F64(7.0));
        assert_eq!(v.as_u64(), Some(7));
        assert_eq!(v.as_i64(), Some(7));
        let frac = Value::Number(Number::F64(7.5));
        assert_eq!(frac.as_u64(), None);
    }

    #[test]
    fn get_finds_first_match() {
        let obj = Value::Object(vec![
            ("a".to_string(), Value::Bool(true)),
            ("b".to_string(), Value::Null),
        ]);
        assert_eq!(obj.get("a"), Some(&Value::Bool(true)));
        assert_eq!(obj.get("missing"), None);
    }
}

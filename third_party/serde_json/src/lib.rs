//! Offline stand-in for the `serde_json` crate.
//!
//! Converts between JSON text and the `serde` stand-in's [`Value`] tree.
//! Output is always compact (no whitespace), object keys keep declaration
//! order, and integers stay in `u64`/`i64` without a lossy trip through
//! `f64` — together these make serialized output deterministic and
//! byte-stable, which the decision-log tests depend on.
//!
//! Floats are written with Rust's shortest-round-trip `Display`; the
//! `float_roundtrip` feature the real crate offers is therefore declared but
//! has nothing to switch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Number, Serialize};

pub use serde::Value;

/// A JSON serialization or deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

/// Renders any serializable value as a [`Value`] tree.
///
/// This is also the entry point the [`json!`] macro uses for interpolated
/// expressions.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a value from JSON text.
///
/// Fails on syntax errors, trailing non-whitespace, or a shape mismatch
/// with `T` (e.g. missing required fields) — callers like the decision-log
/// reader count these failures as malformed lines.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let v = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    T::from_value(&v).map_err(|e| Error::new(e.to_string()))
}

/// Builds a [`Value`] from JSON-like syntax with interpolated expressions.
///
/// Supports the shapes the workspace uses: object literals with string-
/// literal keys, array literals, `null`, and arbitrary serializable
/// expressions (including nested `json!` calls).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::to_value(&$val)) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    use std::fmt::Write;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::U64(n)) => {
            let _ = write!(out, "{n}");
        }
        Value::Number(Number::I64(n)) => {
            let _ = write!(out, "{n}");
        }
        Value::Number(Number::F64(f)) => {
            if f.is_finite() {
                // Rust's Display prints the shortest decimal that
                // round-trips, always in positional notation — valid JSON.
                let _ = write!(out, "{f}");
            } else {
                // JSON has no NaN/Infinity; mirror real serde_json.
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
                Ok(Value::Array(items))
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
                Ok(Value::Object(entries))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require a paired \uXXXX.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(Error::new("invalid unicode escape")),
                            }
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = chunk
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("invalid utf-8 in string"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new("invalid number"));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if let Ok(i) = i64::try_from(n) {
                        return Ok(Value::Number(Number::I64(-i)));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error::new("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Record {
        id: u64,
        name: String,
        #[serde(default, skip_serializing_if = "Option::is_none")]
        score: Option<f64>,
        values: Vec<f64>,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    #[serde(tag = "kind", rename_all = "snake_case")]
    enum Tagged {
        AlphaBeta(Record),
        Other(Inner),
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Inner {
        x: i64,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum Mixed {
        Plain,
        Weighted(f64),
        Shaped { rows: usize, cols: usize },
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Wrapper(u64);

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Generic<C> {
        context: C,
        weight: f64,
    }

    #[test]
    fn struct_round_trips_compact_in_order() {
        let r = Record {
            id: 7,
            name: "a\"b".to_string(),
            score: None,
            values: vec![0.5, 2.0],
        };
        let json = to_string(&r).unwrap();
        assert_eq!(json, r#"{"id":7,"name":"a\"b","values":[0.5,2]}"#);
        assert_eq!(from_str::<Record>(&json).unwrap(), r);
    }

    #[test]
    fn skipped_option_serializes_when_present() {
        let r = Record {
            id: 1,
            name: "x".to_string(),
            score: Some(0.25),
            values: vec![],
        };
        let json = to_string(&r).unwrap();
        assert!(json.contains(r#""score":0.25"#), "{json}");
        assert_eq!(from_str::<Record>(&json).unwrap(), r);
    }

    #[test]
    fn tagged_enum_puts_snake_case_tag_first() {
        let t = Tagged::AlphaBeta(Record {
            id: 2,
            name: "n".to_string(),
            score: None,
            values: vec![1.0],
        });
        let json = to_string(&t).unwrap();
        assert!(json.starts_with(r#"{"kind":"alpha_beta""#), "{json}");
        assert_eq!(from_str::<Tagged>(&json).unwrap(), t);
        let o = Tagged::Other(Inner { x: -3 });
        let json = to_string(&o).unwrap();
        assert!(json.contains(r#""kind":"other"#), "{json}");
        assert_eq!(from_str::<Tagged>(&json).unwrap(), o);
    }

    #[test]
    fn untagged_enum_variants_round_trip() {
        for m in [
            Mixed::Plain,
            Mixed::Weighted(1.5),
            Mixed::Shaped { rows: 2, cols: 3 },
        ] {
            let json = to_string(&m).unwrap();
            assert_eq!(from_str::<Mixed>(&json).unwrap(), m, "{json}");
        }
        assert_eq!(to_string(&Mixed::Plain).unwrap(), r#""Plain""#);
        assert_eq!(
            to_string(&Mixed::Weighted(1.5)).unwrap(),
            r#"{"Weighted":1.5}"#
        );
    }

    #[test]
    fn newtype_struct_is_transparent() {
        let w = Wrapper(u64::MAX);
        let json = to_string(&w).unwrap();
        assert_eq!(json, format!("{}", u64::MAX));
        assert_eq!(from_str::<Wrapper>(&json).unwrap(), w);
    }

    #[test]
    fn generic_struct_round_trips() {
        let g = Generic {
            context: vec![1.0f64, -2.0],
            weight: 0.125,
        };
        let json = to_string(&g).unwrap();
        assert_eq!(from_str::<Generic<Vec<f64>>>(&json).unwrap(), g);
    }

    #[test]
    fn missing_required_field_is_an_error() {
        assert!(from_str::<Record>(r#"{"id":1,"name":"x"}"#).is_err());
        // `score` is optional and may be absent…
        let r: Record = from_str(r#"{"id":1,"name":"x","values":[]}"#).unwrap();
        assert_eq!(r.score, None);
        // …and unknown fields are ignored.
        let r: Record = from_str(r#"{"id":1,"name":"x","values":[],"extra":true}"#).unwrap();
        assert_eq!(r.id, 1);
    }

    #[test]
    fn syntax_errors_are_errors() {
        assert!(from_str::<Value>("this is not json").is_err());
        assert!(from_str::<Value>(r#"{"a":1"#).is_err());
        assert!(from_str::<Value>(r#"{"a":1} trailing"#).is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn large_u64_round_trips_exactly() {
        let big = u64::MAX - 3;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nwith \"quotes\" and \\ unicode → ünïcode \u{0007}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        let decoded: String = from_str(r#""surrogate pair: 😀""#).unwrap();
        assert_eq!(decoded, "surrogate pair: 😀");
    }

    #[test]
    fn json_macro_builds_objects_and_arrays() {
        let rows = [1.5f64, 2.5];
        let v = json!({ "artifact": "fig1", "rows": rows, "nested": json!({ "n": 3u64 }) });
        let text = to_string(&v).unwrap();
        assert_eq!(
            text,
            r#"{"artifact":"fig1","rows":[1.5,2.5],"nested":{"n":3}}"#
        );
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
        assert_eq!(to_string(&json!([1u64, 2u64])).unwrap(), "[1,2]");
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}

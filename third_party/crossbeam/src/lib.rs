//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` (stabilized long after crossbeam pioneered the
//! API). The closure passed to `Scope::spawn` receives a `&Scope` argument
//! for signature compatibility with crossbeam's nested-spawn API, and
//! `scope` returns `thread::Result<R>` like crossbeam does — `Ok` unless a
//! spawned thread panicked (std's scope propagates child panics by
//! re-panicking, so `Err` is never actually constructed here).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    /// A handle for spawning threads scoped to a [`scope`] call.
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure's `&Scope` argument allows
        /// nested spawns, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_mutate_borrowed_chunks() {
        let mut data = vec![0u64; 8];
        super::thread::scope(|scope| {
            for (i, chunk) in data.chunks_mut(2).enumerate() {
                scope.spawn(move |_| {
                    for slot in chunk.iter_mut() {
                        *slot = i as u64 + 1;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(data, vec![1, 1, 2, 2, 3, 3, 4, 4]);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = super::thread::scope(|_| 42).unwrap();
        assert_eq!(v, 42);
    }
}

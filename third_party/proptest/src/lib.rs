//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the `proptest!`
//! macro (with optional `#![proptest_config(...)]`), `prop_assert!` /
//! `prop_assert_eq!`, `prop_oneof!`, `any::<T>()`, `Just`, numeric-range
//! strategies, tuple composition, `prop_map`, and
//! `proptest::collection::{vec, btree_set}`.
//!
//! Differences from the real crate, deliberate for this environment:
//!
//! - **No shrinking.** A failing case reports its inputs via the assertion
//!   message but is not minimized.
//! - **Deterministic by construction.** Each test's RNG is seeded from the
//!   test's name, so a property either always passes or always fails for a
//!   given build — there are no flaky discoveries and no persistence files.
//! - Default case count is 64 (the real crate's 256), keeping the suite
//!   fast; tests that need a specific count set it via `proptest_config`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

use strategy::Any;

/// Returns the canonical strategy for `T` (uniform over its value space).
pub fn any<T: strategy::ArbitraryValue>() -> Any<T> {
    Any::new()
}

/// Seeds the per-test RNG from the test's name (FNV-1a), so every run of a
/// given binary explores the same cases.
#[doc(hidden)]
pub fn __seed_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs its body against `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::__seed_rng(stringify!($name));
            for __case in 0..__config.cases {
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Fails the current property case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current property case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        // `match` keeps temporaries in the scrutinee alive for the whole
        // comparison (a `let` would drop them at the end of the statement).
        match (&$left, &$right) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __left,
                            __right
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                            stringify!($left),
                            stringify!($right),
                            __left,
                            __right,
                            format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if *__left == *__right {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} != {}\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __left
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if *__left == *__right {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} != {}\n  both: {:?}\n {}",
                            stringify!($left),
                            stringify!($right),
                            __left,
                            format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// Builds a strategy choosing uniformly among the given strategies (all of
/// the same `Value` type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

/// The glob-import surface test files use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::any;
    pub use crate::collection;
    pub use crate::strategy::{boxed, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::__seed_rng("ranges_generate_in_bounds");
        for _ in 0..1000 {
            let x = (1u64..10).generate(&mut rng);
            assert!((1..10).contains(&x));
            let f = (-1.0f64..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
            let i = (0.05f64..=1.0).generate(&mut rng);
            assert!((0.05..=1.0).contains(&i));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (0u64..5, 10u64..20).prop_map(|(a, b)| a + b);
        let mut rng = crate::__seed_rng("prop_map_and_tuples_compose");
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((10..25).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let strat = crate::collection::vec(0u64..100, 2..7);
        let mut rng = crate::__seed_rng("vec_strategy_respects_size_range");
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
        let exact = crate::collection::vec(0u64..100, 3);
        assert_eq!(exact.generate(&mut rng).len(), 3);
    }

    #[test]
    fn btree_set_strategy_produces_distinct_elements() {
        let strat = crate::collection::btree_set(0u64..50, 1..30);
        let mut rng = crate::__seed_rng("btree_set_strategy");
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 30);
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let strat = prop_oneof![
            (0u64..1).prop_map(|_| 0u8),
            (0u64..1).prop_map(|_| 1u8),
            (0u64..1).prop_map(|_| 2u8),
        ];
        let mut rng = crate::__seed_rng("union_picks_every_arm");
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn seeded_rng_is_stable_per_name() {
        let a: u64 = crate::any::<u64>().generate(&mut crate::__seed_rng("x"));
        let b: u64 = crate::any::<u64>().generate(&mut crate::__seed_rng("x"));
        let c: u64 = crate::any::<u64>().generate(&mut crate::__seed_rng("y"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, y in 0u64..100) {
            prop_assert!(x < 100);
            prop_assert_eq!(x + y, y + x, "addition commutes for {} and {}", x, y);
        }
    }
}

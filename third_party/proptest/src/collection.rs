//! Collection strategies: random-length vectors and sets.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A range of collection sizes, convertible from `usize` (exact),
/// `Range<usize>` (half-open), and `RangeInclusive<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.min..=self.max_inclusive)
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `Vec`s whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// The strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `BTreeSet`s with a target size drawn from `size`.
///
/// If the element domain is too small to reach the target size, the set is
/// returned with as many distinct elements as could be drawn (bounded
/// retries), rather than looping forever.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        let max_attempts = target.saturating_mul(20).max(64);
        while out.len() < target && attempts < max_attempts {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

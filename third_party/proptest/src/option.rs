//! Strategies for `Option<T>`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// The strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

/// Generates `None` about a quarter of the time and `Some` of the inner
/// strategy's value otherwise (matching the real crate's default weighting
/// of 1:3).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        if rng.gen_bool(0.25) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

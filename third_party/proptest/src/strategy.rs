//! Strategies: composable recipes for generating random test inputs.

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy just
/// draws a value from the RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical "any value" strategy (see [`crate::any`]).
pub trait ArbitraryValue {
    /// Draws a uniformly random value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_bool(0.5)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

/// The strategy returned by [`crate::any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T> Any<T> {
    pub(crate) fn new() -> Self {
        Any {
            _marker: PhantomData,
        }
    }
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Boxes a strategy for storage in a heterogeneous collection (used by
/// `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Chooses uniformly among several boxed strategies of the same value type.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

//! Test-runner configuration and the per-case error type.

/// Controls how many cases each property test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps this workspace's heavier
        // simulation-driven properties fast while still exercising variety.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (produced by `prop_assert!`/`prop_assert_eq!`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for TestCaseError {}

//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides the [`Distribution`] trait and the [`Exp`] (exponential)
//! distribution — the only pieces the workspace uses (Poisson arrival gaps
//! and phase dwell times in the workload generators).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;

/// Types that can sample values of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpError {
    /// The rate parameter λ was not a positive finite number.
    LambdaTooSmall,
}

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lambda must be positive and finite")
    }
}

impl std::error::Error for ExpError {}

/// The exponential distribution `Exp(λ)`, sampled by inverse CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp<T> {
    lambda: T,
}

impl Exp<f64> {
    /// Creates `Exp(λ)`. Fails unless `λ` is positive and finite.
    pub fn new(lambda: f64) -> Result<Self, ExpError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ExpError::LambdaTooSmall)
        }
    }
}

impl Distribution<f64> for Exp<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF on u ∈ (0, 1]; 1 − gen() avoids ln(0).
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_mean_matches_rate() {
        let d = Exp::new(4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn exp_rejects_bad_lambda() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
    }

    #[test]
    fn samples_are_non_negative() {
        let d = Exp::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }
}

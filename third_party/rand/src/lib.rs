//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of `rand`'s API it actually uses, implemented on a
//! seeded xoshiro256++ generator. The surface is call-compatible with
//! `rand 0.8` for everything the workspace exercises:
//!
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`];
//! * [`Rng::gen`] for `f64`/`f32`/`bool` and the unsigned integer types;
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges;
//! * [`Rng::gen_bool`].
//!
//! Streams are deterministic per seed and stable across platforms, which is
//! what the workspace's reproducibility guarantees rely on. The sequences
//! differ from upstream `rand` (which uses ChaCha12 for `StdRng`); nothing
//! in the workspace depends on upstream's exact stream, only on seeded
//! determinism and statistical quality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] — the stand-in
/// for `rand`'s `Standard` distribution.
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                // Lemire multiply-shift; bias is O(width / 2^64), far below
                // anything the workspace's statistical tests can detect.
                let hi = ((rng.next_u64() as u128 * width) >> 64) as $t;
                self.start.wrapping_add(hi)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let width = (hi as u128).wrapping_sub(lo as u128) + 1;
                let draw = ((rng.next_u64() as u128 * width) >> 64) as $t;
                lo.wrapping_add(draw)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * width) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128 * width) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * u
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        <f64 as StandardSample>::standard_sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random number generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed via a SplitMix64 expansion, so
    /// nearby seeds still yield unrelated streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 step: advances `state` and returns a mixed output.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The workspace's standard generator: xoshiro256++ (Blackman–Vigna),
    /// seeded from a `u64` through SplitMix64. Fast, tiny state, passes
    /// BigCrush; more than adequate for simulation and exploration sampling.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro's all-zero state is absorbing; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for checkpointing the exact
        /// position of a deterministic stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at a previously captured [`StdRng::state`]
        /// position: the restored stream continues bit-for-bit where the
        /// captured one left off.
        pub fn from_state(s: [u64; 4]) -> Self {
            // The all-zero state is absorbing; a checkpoint can never
            // legitimately contain it (seed_from_u64 guards it out), so map
            // it to the same escape value rather than wedging the stream.
            if s == [0; 4] {
                return StdRng {
                    s: [0x9e37_79b9_7f4a_7c15, 0, 0, 0],
                };
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: this stand-in uses the same generator for `SmallRng`.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        let vc: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_are_in_range_and_uniformish() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_uniformly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "count {c}");
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..=12);
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&v));
            let w = rng.gen_range(0.05f64..=1.0);
            assert!((0.05..=1.0).contains(&w));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let _: u64 = rng.gen();
        }
        let saved = rng.state();
        let tail: Vec<u64> = (0..32).map(|_| rng.gen()).collect();
        let mut restored = StdRng::from_state(saved);
        let replayed: Vec<u64> = (0..32).map(|_| restored.gen()).collect();
        assert_eq!(tail, replayed, "restored stream must continue exactly");
        // The absorbing all-zero state is mapped to a live escape value.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let r: &mut StdRng = &mut rng;
        assert!((0.0..1.0).contains(&draw(r)));
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness exposing the API surface the
//! workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`), [`Bencher::iter`],
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! There is no statistical analysis, HTML report, or outlier detection:
//! each benchmark runs a fixed number of timed samples and prints
//! mean/min/max nanoseconds per iteration. That is enough for the relative
//! comparisons the repo's benches make (e.g. multi-shard vs single-shard
//! decision throughput).
//!
//! Like the real crate, `-- --test` switches every benchmark to a single
//! sample (one warm-up plus one timed pass): a CI smoke mode that catches
//! panics and deadlocks in bench bodies without paying for a sampling run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.test_mode { 1 } else { self.sample_size };
        run_bench(name, samples, &mut routine);
        self
    }

    /// Starts a named group of benchmarks sharing a sample size.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A group of related benchmarks (`<group>/<name>` labels).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size
        };
        run_bench(&label, samples, &mut routine);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark routine; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples_ns: Vec<u128>,
}

impl Bencher {
    /// Times one sample of `routine` (after a single untimed warm-up call).
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        if self.samples_ns.is_empty() {
            // Warm-up: populate caches and lazy statics outside the timing.
            black_box(routine());
        }
        let start = Instant::now();
        black_box(routine());
        self.samples_ns.push(start.elapsed().as_nanos());
    }
}

fn run_bench<F>(label: &str, sample_size: usize, routine: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples_ns: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        routine(&mut bencher);
    }
    let samples = &bencher.samples_ns;
    if samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let mean = samples.iter().sum::<u128>() / samples.len() as u128;
    let min = samples.iter().min().copied().unwrap_or(0);
    let max = samples.iter().max().copied().unwrap_or(0);
    println!(
        "{label}: mean {} ns/iter (min {}, max {}, {} samples)",
        mean,
        min,
        max,
        samples.len()
    );
}

/// Declares a benchmark group function invoking each target with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        // sample_size timed runs plus one warm-up on the first call.
        assert_eq!(calls, DEFAULT_SAMPLE_SIZE as u32 + 1);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        let mut calls = 0u32;
        g.bench_function("inner", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 4);
    }
}

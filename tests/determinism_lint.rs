//! A source-level determinism lint.
//!
//! The whole methodology rests on replayability: logged decisions must be
//! reproducible from the seed and the logical clock alone (see
//! `harvest-serve`'s design rules and DESIGN.md §4). Ambient
//! nondeterminism — the thread-local RNG or wall-clock reads — would break
//! byte-identical replay silently, so the decision-path crates simply may
//! not mention it. This test greps their sources; CI runs the same check.

use std::path::Path;

/// Crates on the decision path: everything that computes, estimates, or
/// serves decisions — plus the crash-safe log (recovery must replay a
/// byte-identical prefix) and the chaos plumbing in `sim-net` (fault
/// schedules and RNG forks must be pure functions of the seed, or the
/// same seed would inject different faults on replay). The wire front-end
/// is held to the same bar across the whole crate, sockets included:
/// admission verdicts, rate-limit refills, and deadline sheds are
/// functions of the logical clock, never the wall clock.
const LINTED: &[&str] = &[
    "crates/core/src",
    "crates/estimators/src",
    "crates/log/src",
    "crates/obs/src",
    "crates/serve/src",
    "crates/sim-net/src",
    "crates/wire/src",
];

/// Ambient-nondeterminism tokens. `thread_rng` is the OS-seeded RNG, the
/// two `now`s read the wall clock, and `from_entropy` seeds an RNG from
/// the OS — any of them would make a warm restart's replayed RNG stream
/// diverge from the incarnation that logged the decisions.
const FORBIDDEN: &[&str] = &[
    "thread_rng",
    "SystemTime::now",
    "Instant::now",
    "from_entropy",
];

fn scan(dir: &Path, violations: &mut Vec<String>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            scan(&path, violations);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let source = std::fs::read_to_string(&path).unwrap();
            for (lineno, line) in source.lines().enumerate() {
                for token in FORBIDDEN {
                    if line.contains(token) {
                        violations.push(format!(
                            "{}:{}: forbidden `{}`: {}",
                            path.display(),
                            lineno + 1,
                            token,
                            line.trim()
                        ));
                    }
                }
            }
        }
    }
}

#[test]
fn decision_path_crates_are_free_of_ambient_nondeterminism() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    for dir in LINTED {
        let dir = root.join(dir);
        assert!(dir.is_dir(), "linted directory {} missing", dir.display());
        scan(&dir, &mut violations);
    }
    assert!(
        violations.is_empty(),
        "ambient nondeterminism on the decision path (use fork_rng / a \
         caller-supplied logical clock instead):\n{}",
        violations.join("\n")
    );
}

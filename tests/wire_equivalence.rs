//! Wire/in-process equivalence and the overload contract.
//!
//! The wire layer must be *transparent*: putting the decision service
//! behind the framed protocol and admission pipeline may not change a
//! single byte of what the service does. These tests hold the duplex
//! transport (real codec, real admission, deterministic pumping) to that
//! claim — a same-seed wired run and in-process run must produce
//!
//! 1. a byte-identical recovered decision log, and
//! 2. an identical `ServeMetrics` conservation ledger,
//!
//! both clean and under an injected `ChaosPlan`. The third test pins the
//! overload contract from the other side: under bursts that blow through
//! the pending budget, the rate limit, request deadlines, and an open
//! breaker, every single request is answered with a valid decision (exact
//! propensities, even degraded) or an explicit `Shed` — zero protocol
//! errors — and the wire ledger reconciles with the service's
//! `admission_shed` count.

use std::sync::Arc;

use harvest::core::{Context, SimpleContext};
use harvest::logs::segment::{MemorySegments, SegmentConfig};
use harvest::serve::{
    Backpressure, BreakerConfig, ChaosPlan, DecisionBatch, DecisionService, GateConfig,
    LoggerConfig, ServeConfig, SupervisorConfig, TrainerConfig,
};
use harvest::simnet::rng::fork_rng;
use harvest::wire::{
    Connection, Duplex, Request, Response, ShedReason, Transport, WireConfig, WireCore,
    WireSnapshot,
};
use rand::Rng;

const EPSILON: f64 = 0.2;
const ACTIONS: usize = 3;
const SHARDS: usize = 2;
const BATCH: usize = 16;
const STEPS: usize = 64;

fn config(seed: u64) -> ServeConfig {
    ServeConfig::builder()
        .shards(SHARDS)
        .epsilon(EPSILON)
        .master_seed(seed)
        .component("wire-eq-test")
        .logger(
            LoggerConfig::builder()
                .capacity(256)
                .backpressure(Backpressure::Block)
                .segment(SegmentConfig {
                    max_records: 96,
                    max_bytes: 64 * 1024,
                    max_span_ns: u64::MAX,
                })
                .build(),
        )
        .supervisor(
            SupervisorConfig::builder()
                .max_restarts(64)
                .backoff_base_ms(1)
                .backoff_cap_ms(2)
                .build(),
        )
        .breaker(
            BreakerConfig::builder()
                .window(1 << 30)
                .trip_faults(1 << 30)
                .rearm_healthy(1)
                .build()
                .expect("valid breaker config"),
        )
        .trainer(
            TrainerConfig::builder()
                .lambda(1e-3)
                .epsilon(EPSILON)
                // Single-candidate gate: the k=16 simultaneous CI would
                // (correctly) refuse to promote on this small a midpoint
                // harvest, and the second half needs the swapped policy.
                .gate(GateConfig::builder().portfolio(1).min_samples(200).build())
                .build(),
        )
        .build()
        .expect("valid test config")
}

/// The chaos schedule both runs share (same as `batch_equivalence`): writer
/// kills survived by the supervisor, reward drops and a delay, and two
/// shard poisonings. No tears, no at-rest damage.
fn chaos_plan() -> ChaosPlan {
    ChaosPlan::builder()
        .kill_writer_at(100)
        .kill_writer_at(700)
        .drop_reward_at(50)
        .drop_reward_at(333)
        .delay_reward_at(200, 250_000)
        .poison_shard_at(40)
        .poison_shard_at(400)
        .build()
}

struct RunResult {
    recovered: Vec<String>,
    quarantined_records: usize,
    metrics: String,
}

/// The shared seeded workload: one group of BATCH contexts per logical
/// millisecond, served in a single `DecideBatch` on even steps and as
/// BATCH individual `Decide`s on odd steps, rewards after each group, one
/// training round midway. `wired == false` calls the service directly;
/// `wired == true` pushes every request through the duplex transport —
/// frames, CRC, admission door, worker queue — and back.
fn run(seed: u64, wired: bool, chaos: Option<ChaosPlan>) -> RunResult {
    let store = MemorySegments::new();
    let svc = Arc::new(match chaos {
        Some(plan) => DecisionService::with_chaos(config(seed), store.clone(), plan),
        None => DecisionService::new(config(seed), store.clone()),
    });
    let duplex = Duplex::new(Arc::new(WireCore::new(
        Arc::clone(&svc),
        WireConfig::default(),
    )));
    let mut conn = Transport::connect(&duplex).expect("duplex connect");

    let mut traffic = fork_rng(seed, "wire-eq-traffic");
    let mut now_ns = 0u64;
    let mut out = DecisionBatch::with_capacity(BATCH);
    for step in 0..STEPS {
        if step == STEPS / 2 {
            while svc.metrics().log_backlog > 0 {
                std::thread::yield_now();
            }
            let (records, _) = store.recover();
            let report = svc
                .train_and_maybe_promote(&records)
                .expect("no trainer chaos scheduled");
            assert!(
                report.gate.promoted,
                "seed {seed}: midpoint round must promote"
            );
        }
        now_ns += 1_000_000;
        let shard = step % SHARDS;
        let contexts: Vec<SimpleContext> = (0..BATCH)
            .map(|_| {
                let x: f64 = traffic.gen_range(0.0..1.0);
                SimpleContext::new(vec![x], ACTIONS)
            })
            .collect();
        // (request_id, action) pairs, in context order.
        let decisions: Vec<(u64, usize)> = if !wired {
            if step % 2 == 0 {
                svc.decide_batch(shard, now_ns, &contexts, &mut out)
                    .expect("batch must serve");
                out.decisions()
                    .iter()
                    .map(|d| (d.request_id, d.action))
                    .collect()
            } else {
                contexts
                    .iter()
                    .map(|ctx| {
                        let d = svc.decide(shard, now_ns, ctx).expect("single must serve");
                        (d.request_id, d.action)
                    })
                    .collect()
            }
        } else if step % 2 == 0 {
            let resp = conn
                .call(&Request::DecideBatch {
                    shard: shard as u32,
                    now_ns,
                    budget_ns: 0,
                    contexts: contexts.clone(),
                })
                .expect("wire batch");
            match resp {
                Response::Batch(ds) => ds
                    .iter()
                    .map(|d| (d.request_id, d.action as usize))
                    .collect(),
                other => panic!("batch must serve, got {other:?}"),
            }
        } else {
            contexts
                .iter()
                .map(|ctx| {
                    let resp = conn
                        .call(&Request::Decide {
                            shard: shard as u32,
                            now_ns,
                            budget_ns: 0,
                            context: ctx.clone(),
                        })
                        .expect("wire decide");
                    match resp {
                        Response::Decision(d) => (d.request_id, d.action as usize),
                        other => panic!("decide must serve, got {other:?}"),
                    }
                })
                .collect()
        };
        for ((request_id, action), ctx) in decisions.iter().zip(&contexts) {
            let x = ctx.shared_features()[0];
            let reward = if *action == 0 { x } else { 1.0 - x };
            if !wired {
                svc.reward(*request_id, now_ns + 500_000, reward);
            } else {
                let resp = conn
                    .call(&Request::Reward {
                        request_id: *request_id,
                        now_ns: now_ns + 500_000,
                        reward,
                    })
                    .expect("wire reward");
                assert!(
                    matches!(resp, Response::RewardAck { .. }),
                    "reward must ack, got {resp:?}"
                );
            }
        }
    }
    while svc.metrics().log_backlog > 0 {
        std::thread::yield_now();
    }
    let metrics = serde_json::to_string(&svc.metrics()).expect("snapshot serializes");
    let wire = duplex.core().metrics().snapshot();
    assert!(wire.ledger_ok, "wire ledger must balance: {wire:?}");
    assert_eq!(wire.protocol_errors, 0);
    assert_eq!(wire.frames_corrupt, 0);
    if wired {
        assert_eq!(wire.decisions_requested, (STEPS * BATCH) as u64);
        assert_eq!(wire.decisions_served, (STEPS * BATCH) as u64);
        assert_eq!(wire.shed_total, 0);
    }
    drop(conn);
    drop(duplex);
    let svc = Arc::try_unwrap(svc)
        .ok()
        .expect("all wire handles released");
    svc.shutdown().expect("clean shutdown");
    let (records, stats) = store.recover();
    RunResult {
        recovered: records
            .iter()
            .map(|r| serde_json::to_string(r).expect("record serializes"))
            .collect(),
        quarantined_records: stats.quarantined_records,
        metrics,
    }
}

/// Clean-run transparency: the duplex-transported run recovers the exact
/// record stream the in-process run persisted, and every counter in the
/// conservation ledger — including the new `admission_shed` — agrees.
#[test]
fn wired_run_recovers_byte_identical_log_and_ledger() {
    let wired = run(17, true, None);
    let direct = run(17, false, None);
    assert_eq!(wired.recovered.len(), direct.recovered.len());
    assert!(!wired.recovered.is_empty());
    assert_eq!(
        wired.recovered, direct.recovered,
        "wired and in-process recovered logs differ"
    );
    assert_eq!(wired.quarantined_records, 0);
    assert_eq!(direct.quarantined_records, 0);
    assert_eq!(
        wired.metrics, direct.metrics,
        "wired and in-process metrics ledgers differ"
    );
    // And the log genuinely depends on the seed.
    let other = run(18, true, None);
    assert_ne!(wired.recovered, other.recovered);
}

/// The same transparency under injected chaos: writer kills, reward
/// drops/delays, and shard poisonings land at the same logical indices on
/// both sides of the socket boundary, so the recovered log and the full
/// ledger still agree byte for byte.
#[test]
fn wired_run_stays_equivalent_under_chaos() {
    let wired = run(29, true, Some(chaos_plan()));
    let direct = run(29, false, Some(chaos_plan()));
    assert_eq!(
        wired.recovered, direct.recovered,
        "chaos: wired and in-process recovered logs differ"
    );
    assert_eq!(wired.quarantined_records, direct.quarantined_records);
    assert_eq!(
        wired.metrics, direct.metrics,
        "chaos: wired and in-process metrics ledgers differ"
    );
}

/// Classifies a response under overload: served decisions must carry valid
/// propensities, sheds must carry a reason, and nothing may be a protocol
/// error.
fn classify(resp: &Response, served: &mut u64, degraded: &mut u64, shed: &mut u64) {
    match resp {
        Response::Decision(d) => {
            assert!(
                d.propensity > 0.0 && d.propensity <= 1.0,
                "served propensity must be valid: {d:?}"
            );
            *served += 1;
            if d.degraded {
                *degraded += 1;
            }
        }
        Response::Shed { reason } => {
            let _: ShedReason = *reason;
            *shed += 1;
        }
        other => panic!("overload must serve or shed, got {other:?}"),
    }
}

/// The overload contract: a closed-loop burst far past the pending budget
/// and rate limit, plus deadline-expired queue entries, plus an open
/// breaker — and still every request is answered with a valid decision or
/// an explicit shed, the wire ledger balances, and `admission_shed` on the
/// service reconciles with the wire's shed counters.
#[test]
fn overload_is_answered_never_errored() {
    let mut cfg = config(99);
    // A breaker that actually trips: one fault in a small window.
    cfg.breaker = BreakerConfig::builder()
        .window(8)
        .trip_faults(1)
        .rearm_healthy(1 << 20)
        .build()
        .expect("valid breaker config");
    let store = MemorySegments::new();
    // Round 0 training crashes: that is the fault that opens the breaker.
    let svc = Arc::new(DecisionService::with_chaos(
        cfg,
        store.clone(),
        ChaosPlan::none().crash_trainer_at(0),
    ));
    let duplex = Duplex::new(Arc::new(WireCore::new(
        Arc::clone(&svc),
        // Rate: refills fast enough that the later phases are admitted,
        // but the burst cap still bites inside phase 1's single instant.
        WireConfig::builder()
            .rate_per_sec(10_000)
            .burst(24)
            .pending_capacity(8)
            .build(),
    )));
    let mut conn = Transport::connect(&duplex).expect("duplex connect");
    let mut served = 0u64;
    let mut degraded = 0u64;
    let mut shed = 0u64;

    // Phase 1 — queue burst: 32 decides fired open-loop at one instant.
    // The bucket's burst (24) admits most, the pending budget (8) holds
    // only 8: the rest shed at the door as queue_full or rate_limited.
    for i in 0..32u64 {
        conn.send(&Request::Decide {
            shard: (i % 2) as u32,
            now_ns: 1_000_000,
            budget_ns: 0,
            context: SimpleContext::new(vec![0.5], ACTIONS),
        })
        .expect("send burst");
    }
    duplex.pump();
    for _ in 0..32 {
        let (_, resp) = conn.recv().expect("recv burst");
        classify(&resp, &mut served, &mut degraded, &mut shed);
    }

    // Phase 2 — deadline: two requests with a 1 ms budget are queued, then
    // a later-stamped request advances the logical clock 1 s before the
    // queue drains. The stale work is shed without touching a shard.
    for _ in 0..2 {
        conn.send(&Request::Decide {
            shard: 0,
            now_ns: 2_000_000,
            budget_ns: 1_000_000,
            context: SimpleContext::new(vec![0.5], ACTIONS),
        })
        .expect("send deadline");
    }
    conn.send(&Request::Decide {
        shard: 1,
        now_ns: 1_002_000_000,
        budget_ns: 0,
        context: SimpleContext::new(vec![0.5], ACTIONS),
    })
    .expect("send clock advance");
    duplex.pump();
    let mut deadline_shed = 0u64;
    for _ in 0..3 {
        let (_, resp) = conn.recv().expect("recv deadline");
        if matches!(
            resp,
            Response::Shed {
                reason: ShedReason::DeadlineExpired
            }
        ) {
            deadline_shed += 1;
        }
        classify(&resp, &mut served, &mut degraded, &mut shed);
    }
    assert_eq!(deadline_shed, 2, "queued work past its deadline is shed");

    // Phase 3 — open breaker: crash the trainer, then keep serving. The
    // responses are real decisions from the uniform safe arm (propensity
    // 1/K, degraded flag set) — never protocol errors.
    let (records, _) = {
        while svc.metrics().log_backlog > 0 {
            std::thread::yield_now();
        }
        store.recover()
    };
    svc.train_and_maybe_promote(&records)
        .expect_err("round 0 trainer crash is scheduled");
    assert!(svc.breaker_open(), "trainer crash must trip the breaker");
    for i in 0..16u64 {
        let resp = conn
            .call(&Request::Decide {
                shard: (i % 2) as u32,
                now_ns: 1_003_000_000 + i * 20_000_000,
                budget_ns: 0,
                context: SimpleContext::new(vec![0.5], ACTIONS),
            })
            .expect("degraded decide");
        if let Response::Decision(d) = &resp {
            assert!(d.degraded, "open breaker must serve the safe arm");
            assert!(
                (d.propensity - 1.0 / ACTIONS as f64).abs() < 1e-12,
                "safe arm serves the exact uniform propensity"
            );
        }
        classify(&resp, &mut served, &mut degraded, &mut shed);
    }
    assert!(degraded > 0, "the open-breaker phase must serve degraded");

    // The ledgers reconcile: wire-side everything is accounted, and the
    // service-side admission_shed equals exactly what the wire shed.
    let wire: WireSnapshot = duplex.core().metrics().snapshot();
    assert!(wire.ledger_ok, "wire ledger must balance: {wire:?}");
    assert_eq!(wire.protocol_errors, 0, "overload must never error");
    assert_eq!(wire.decisions_errored, 0);
    assert_eq!(wire.decisions_requested, served + shed);
    assert_eq!(wire.decisions_served, served);
    assert_eq!(wire.shed_total, shed);
    assert_eq!(wire.decisions_degraded, degraded);
    assert!(wire.shed_queue_full > 0, "the burst must hit the budget");
    assert_eq!(wire.shed_deadline, 2);
    let serve_snap = svc.metrics();
    assert_eq!(
        serve_snap.admission_shed, wire.shed_total,
        "service admission_shed must reconcile with wire sheds"
    );

    drop(conn);
    drop(duplex);
    let svc = Arc::try_unwrap(svc)
        .ok()
        .expect("all wire handles released");
    svc.shutdown().expect("clean shutdown");
}

//! Determinism guarantees: every experiment artifact must be bit-for-bit
//! reproducible from its seed, and different seeds must actually vary.
//!
//! Reproducibility is a first-class deliverable here — EXPERIMENTS.md
//! records exact numbers, which is only honest if a given seed always
//! regenerates them.

use harvest::cache::policy::RandomEviction;
use harvest::cache::runner::{
    big_small_trace, run_cache_workload, table3_cache_config, CacheRunConfig,
};
use harvest::core::policy::UniformPolicy;
use harvest::core::simulate::simulate_exploration;
use harvest::lb::hierarchy::{run_hierarchical, HierarchyConfig};
use harvest::lb::policy::RandomRouting;
use harvest::lb::sim::{run_simulation, SimConfig};
use harvest::lb::ClusterConfig;
use harvest::mh::{generate_dataset, MachineHealthConfig};
use rand::SeedableRng;

#[test]
fn machine_health_dataset_is_seed_deterministic() {
    let cfg = MachineHealthConfig {
        incidents: 3_000,
        seed: 555,
    };
    assert_eq!(generate_dataset(&cfg), generate_dataset(&cfg));
    let other = MachineHealthConfig { seed: 556, ..cfg };
    assert_ne!(generate_dataset(&cfg), generate_dataset(&other));
}

#[test]
fn exploration_simulation_is_rng_deterministic() {
    let full = generate_dataset(&MachineHealthConfig {
        incidents: 1_000,
        seed: 1,
    });
    let a = simulate_exploration(
        &full,
        &UniformPolicy::new(),
        &mut rand::rngs::StdRng::seed_from_u64(9),
    );
    let b = simulate_exploration(
        &full,
        &UniformPolicy::new(),
        &mut rand::rngs::StdRng::seed_from_u64(9),
    );
    assert_eq!(a, b);
}

#[test]
fn lb_simulation_is_seed_deterministic_including_logs() {
    let cfg = SimConfig::table2(ClusterConfig::fig5(), 3_000, 777);
    let a = run_simulation(&cfg, &mut RandomRouting);
    let b = run_simulation(&cfg, &mut RandomRouting);
    assert_eq!(a.requests, b.requests);
    assert_eq!(a.nginx_access_log(), b.nginx_access_log());
    let mut other = cfg.clone();
    other.seed = 778;
    let c = run_simulation(&other, &mut RandomRouting);
    assert_ne!(a.nginx_access_log(), c.nginx_access_log());
}

#[test]
fn cache_run_is_seed_deterministic() {
    let trace = big_small_trace(5_000, 3);
    let cfg = CacheRunConfig {
        cache: table3_cache_config(),
        warmup: 500,
        seed: 4,
    };
    let a = run_cache_workload(&cfg, &mut RandomEviction, &trace);
    let b = run_cache_workload(&cfg, &mut RandomEviction, &trace);
    assert_eq!(a.hits, b.hits);
    assert_eq!(a.evictions, b.evictions);
    // Same trace different eviction seed diverges.
    let mut cfg2 = cfg;
    cfg2.seed = 5;
    let c = run_cache_workload(&cfg2, &mut RandomEviction, &trace);
    assert_ne!(a.evictions, c.evictions);
}

#[test]
fn hierarchy_run_is_seed_deterministic() {
    let cfg = HierarchyConfig::front_door(3_000, 12);
    let a = run_hierarchical(&cfg);
    let b = run_hierarchical(&cfg);
    assert_eq!(a.edge_dataset, b.edge_dataset);
    assert_eq!(a.local_dataset, b.local_dataset);
    assert_eq!(a.mean_latency_s, b.mean_latency_s);
}

//! Integration tests: the full harvesting pipeline across crates.
//!
//! Simulator → serialized logs → scavenging → propensity inference →
//! dataset → estimators → learned policy → redeployment. Each test runs
//! the whole chain, not a single crate.

use harvest::core::policy::{ConstantPolicy, GreedyPolicy, UniformPolicy};
use harvest::core::{Context, SimpleContext};
use harvest::estimators::{EstimatorKind, OffPolicyEvaluator};
use harvest::lb::policy::{CbRouting, LeastLoadedRouting, RandomRouting};
use harvest::lb::sim::{run_simulation, SimConfig};
use harvest::lb::ClusterConfig;
use harvest::logs::pipeline::HarvestPipeline;
use harvest::logs::propensity::{
    EstimatedPropensity, KnownPropensity, PropensityFitConfig, PropensityModel,
};
use harvest::logs::record::{read_json_lines, JsonLinesWriter};

fn lb_run(seed: u64, requests: usize) -> harvest::lb::sim::LbRunResult {
    let cfg = SimConfig::table2(ClusterConfig::fig5(), requests, seed);
    run_simulation(&cfg, &mut RandomRouting)
}

#[test]
fn logs_survive_serialization_and_rebuild_the_same_dataset() {
    let run = lb_run(101, 4_000);

    // Serialize decision records as JSON lines (what a log shipper moves),
    // then read them back and run the pipeline.
    let records = run.decision_records();
    let mut writer = JsonLinesWriter::new(Vec::new());
    for r in &records {
        writer.write(r).unwrap();
    }
    let bytes = writer.into_inner();
    let (parsed, stats) = read_json_lines(bytes.as_slice()).unwrap();
    assert_eq!(stats.malformed, 0);
    assert_eq!(parsed.len(), records.len());

    let pipeline = HarvestPipeline::new(KnownPropensity::new(UniformPolicy::new()), true);
    let (dataset, report) = pipeline.run(&parsed).unwrap();
    assert_eq!(report.scavenge.joined, records.len());
    assert_eq!(dataset.len(), records.len());
    assert_eq!(report.min_propensity, 0.5);

    // The rebuilt dataset gives the same IPS estimate as the in-memory one
    // (over the overlap — the in-memory path drops warmup samples).
    let policy = ConstantPolicy::new(0);
    let ev = OffPolicyEvaluator::new(EstimatorKind::Ips);
    let direct = ev.evaluate(&run.to_dataset(), &policy).value;
    let rebuilt = ev.evaluate(&dataset, &policy).value;
    assert!(
        (direct - rebuilt).abs() < 0.05,
        "direct {direct} vs rebuilt {rebuilt}"
    );
}

#[test]
fn estimated_propensities_agree_with_known_ones_under_uniform_logging() {
    let run = lb_run(102, 6_000);
    let samples: Vec<(SimpleContext, usize)> = run
        .measured_requests()
        .iter()
        .map(|r| {
            (
                harvest::lb::LbContext {
                    connections: r.connections.clone(),
                    request_class: r.request_class,
                    num_classes: run.num_classes,
                }
                .to_cb_context(),
                r.server,
            )
        })
        .collect();
    let model = EstimatedPropensity::fit(&samples, 2, &PropensityFitConfig::default()).unwrap();
    // Uniform-random routing: the regression should recover ≈ 1/2
    // everywhere, matching code inspection.
    let mut worst: f64 = 0.0;
    for (ctx, a) in samples.iter().take(500) {
        let p = model.propensity(ctx, *a);
        worst = worst.max((p - 0.5).abs());
    }
    assert!(worst < 0.12, "worst propensity deviation {worst}");
}

#[test]
fn table2_failure_reproduces_through_the_text_log_path() {
    // The send-to-1 OPE failure must reproduce when the data flows through
    // actual nginx-format text logs, not just in-memory structs.
    let run = lb_run(103, 20_000);
    let text = run.nginx_access_log();
    let (lines, errors) = harvest::logs::nginx::parse_log(&text);
    assert!(errors.is_empty());

    let mut data = harvest::core::Dataset::new();
    for line in lines.iter().skip(run.warmup) {
        let rec = line.to_decision_record();
        data.push(harvest::core::LoggedDecision {
            context: SimpleContext::new(rec.shared_features.clone(), rec.num_actions),
            action: rec.action,
            reward: rec.reward.unwrap(),
            propensity: 0.5, // code inspection: `random` over two upstreams
        })
        .unwrap();
    }

    let ope_send1 = -OffPolicyEvaluator::new(EstimatorKind::Ips)
        .evaluate(&data, &ConstantPolicy::new(0))
        .value;
    let online_send1 = {
        let cfg = SimConfig::table2(ClusterConfig::fig5(), 20_000, 103);
        run_simulation(&cfg, &mut harvest::lb::policy::SendToRouting(0)).mean_latency_s
    };
    assert!(
        online_send1 > 1.8 * ope_send1,
        "OPE {ope_send1} vs online {online_send1}: the failure must reproduce"
    );
}

#[test]
fn learned_policy_redeploys_and_beats_the_heuristic() {
    let run = lb_run(104, 30_000);
    let scorer = run.fit_cb_scorer(1e-3).unwrap();

    // Offline, the greedy policy on the learned model scores well…
    let cb_core = GreedyPolicy::new(scorer.clone());
    let ope = -OffPolicyEvaluator::new(EstimatorKind::Ips)
        .evaluate(&run.to_dataset(), &cb_core)
        .value;
    assert!(ope > 0.0 && ope < 1.0, "sane OPE latency {ope}");

    // …and online it beats least-loaded (Table 2's positive result).
    let cfg = SimConfig::table2(ClusterConfig::fig5(), 30_000, 104);
    let online_cb = run_simulation(&cfg, &mut CbRouting::greedy(scorer)).mean_latency_s;
    let online_ll = run_simulation(&cfg, &mut LeastLoadedRouting).mean_latency_s;
    assert!(
        online_cb < online_ll,
        "cb {online_cb} must beat least-loaded {online_ll}"
    );
}

#[test]
fn facade_reexports_are_usable_together() {
    // Compile-time integration: types from different re-exported crates
    // interoperate through the facade paths alone.
    let ctx = harvest::core::SimpleContext::contextless(3);
    assert_eq!(ctx.num_actions(), 3);
    let q = harvest::simnet::EventQueue::<u32>::new();
    assert!(q.is_empty());
    let cfg = harvest::mh::MachineHealthConfig {
        incidents: 10,
        seed: 1,
    };
    assert_eq!(harvest::mh::generate_dataset(&cfg).len(), 10);
}

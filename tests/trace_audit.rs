//! Acceptance tests for the observability tentpole: end-to-end decision
//! traceability and deterministic telemetry export.
//!
//! 1. In a seeded chaos run, **every** decision id is accounted to exactly
//!    one terminal state (written, dropped, or quarantined) once the log
//!    pipeline drains — no unterminated traces, no conflicts, no evictions
//!    at test scale — and the trace partition matches the decision count.
//! 2. Two same-seed runs render byte-identical Prometheus expositions,
//!    JSON snapshots, and trace exports: telemetry is a pure function of
//!    the seed and the call sequence, so any byte that differs between
//!    runs is a behavior change, not noise.

use harvest::core::SimpleContext;
use harvest::logs::segment::{MemorySegments, SegmentConfig};
use harvest::serve::{
    Backpressure, ChaosHorizon, ChaosPlan, ChaosPlanConfig, DecisionService, LoggerConfig,
    ServeConfig, SupervisorConfig, Terminal, TrainerConfig,
};
use harvest::simnet::rng::fork_rng;
use rand::Rng;

const EPSILON: f64 = 0.2;
const ACTIONS: usize = 3;
const REQUESTS: usize = 1500;

fn service_config(seed: u64) -> ServeConfig {
    ServeConfig::builder()
        .shards(2)
        .epsilon(EPSILON)
        .master_seed(seed)
        .component("trace-audit-test")
        .logger(
            LoggerConfig::builder()
                .capacity(256)
                .backpressure(Backpressure::Block)
                .segment(SegmentConfig {
                    max_records: 64,
                    max_bytes: 64 * 1024,
                    max_span_ns: u64::MAX,
                })
                .build(),
        )
        .supervisor(
            SupervisorConfig::builder()
                .max_restarts(8)
                .backoff_base_ms(1)
                .backoff_cap_ms(4)
                .build(),
        )
        .trainer(
            TrainerConfig::builder()
                .lambda(1e-3)
                .epsilon(EPSILON)
                .build(),
        )
        .build()
        .expect("valid test config")
}

/// Drives the seeded crossing workload: decide, reward, one training round
/// midway. Returns the service with its backlog fully drained.
fn run_workload(svc: &DecisionService<MemorySegments>, store: &MemorySegments, seed: u64) {
    let mut traffic = fork_rng(seed, "trace-audit-traffic");
    let mut now_ns = 0u64;
    for i in 0..REQUESTS {
        if i == REQUESTS / 2 {
            while svc.metrics().log_backlog > 0 {
                std::thread::yield_now();
            }
            let (records, _) = store.recover();
            // A chaos-crashed trainer round is an acceptable outcome; the
            // trace ledger must balance either way.
            let _ = svc.train_and_maybe_promote(&records);
        }
        now_ns += 1_000_000;
        let x: f64 = traffic.gen_range(0.0..1.0);
        let ctx = SimpleContext::new(vec![x], ACTIONS);
        let d = svc
            .decide(i % svc.num_shards(), now_ns, &ctx)
            .expect("service must keep serving");
        let reward = if d.action == 0 { x } else { 1.0 - x };
        svc.reward(d.request_id, now_ns + 500_000, reward);
    }
    while svc.metrics().log_backlog > 0 {
        std::thread::yield_now();
    }
}

#[test]
fn every_decision_reaches_exactly_one_terminal_state_under_chaos() {
    for seed in [11u64, 29, 47] {
        let horizon = ChaosHorizon {
            writer_records: (REQUESTS * 2) as u64,
            rewards: REQUESTS as u64,
            decisions: REQUESTS as u64,
            rounds: 1,
            checkpoints: 0,
        };
        let mut plan_rng = fork_rng(seed, "trace-audit-plan");
        let plan = ChaosPlan::generate(&ChaosPlanConfig::default(), &horizon, &mut plan_rng);
        let store = MemorySegments::new();
        let svc = DecisionService::with_chaos(service_config(seed), store.clone(), plan);
        run_workload(&svc, &store, seed);

        let snap = svc.metrics();
        let audit = svc.trace_audit().expect("tracing is on by default");
        let obs = svc.obs().unwrap().clone();

        // Global partition: every opened trace landed in exactly one
        // terminal bucket, and nothing is still in flight.
        assert_eq!(
            audit.decided, snap.decisions,
            "seed {seed}: one trace per decision"
        );
        assert_eq!(audit.unterminated, 0, "seed {seed}: {audit:?}");
        assert_eq!(
            audit.evictions, 0,
            "seed {seed}: capacity must hold the run"
        );
        assert_eq!(audit.terminal_conflicts, 0, "seed {seed}: {audit:?}");
        assert_eq!(audit.late_events, 0, "seed {seed}: {audit:?}");
        assert_eq!(
            audit.decided,
            audit.written + audit.dropped + audit.quarantined,
            "seed {seed}: trace partition must cover every decision: {audit:?}"
        );

        // The trace partition is consistent with the conservation ledger:
        // the log pipeline also carries outcome records, so the traced
        // decision terminals can never exceed the ledger's totals.
        assert_eq!(
            snap.log_enqueued,
            snap.log_written + snap.log_dropped + snap.log_quarantined,
            "seed {seed}: conservation ledger"
        );
        assert!(audit.written <= snap.log_written, "seed {seed}");
        assert!(audit.dropped <= snap.log_dropped, "seed {seed}");
        assert!(audit.quarantined <= snap.log_quarantined, "seed {seed}");

        // Per-decision: exactly one terminal on every exported trace.
        let traces = obs.tracer().export_sorted();
        assert_eq!(traces.len() as u64, audit.decided);
        for t in &traces {
            assert!(
                t.terminal.is_some(),
                "seed {seed}: decision {} has no terminal state",
                t.id
            );
            if matches!(t.terminal, Some(Terminal::Written)) && !t.enqueued {
                panic!("seed {seed}: shed decision {} marked written", t.id);
            }
        }
        svc.shutdown().unwrap();
    }
}

#[test]
fn same_seed_runs_export_byte_identical_telemetry() {
    let run = |seed: u64| {
        let store = MemorySegments::new();
        let svc = DecisionService::new(service_config(seed), store.clone());
        run_workload(&svc, &store, seed);
        let prom = svc.export_prometheus();
        let json = serde_json::to_string(&svc.obs_snapshot()).expect("snapshot serializes");
        let trace = svc.export_trace_jsonl().expect("tracing is on by default");
        svc.shutdown().unwrap();
        (prom, json, trace)
    };
    let (prom_a, json_a, trace_a) = run(23);
    let (prom_b, json_b, trace_b) = run(23);
    assert_eq!(
        prom_a, prom_b,
        "Prometheus exposition must be deterministic"
    );
    assert_eq!(json_a, json_b, "JSON snapshot must be deterministic");
    assert_eq!(trace_a, trace_b, "trace export must be deterministic");
    // And it is the seed that drives the content, not chance agreement.
    let (prom_c, _, _) = run(24);
    assert_ne!(prom_a, prom_c, "different seeds must diverge somewhere");
}

#[test]
fn disabled_observability_serves_without_a_tracer() {
    let store = MemorySegments::new();
    let mut cfg = service_config(5);
    cfg.obs.enabled = false;
    let svc = DecisionService::new(cfg, store.clone());
    let ctx = SimpleContext::new(vec![0.4], ACTIONS);
    for i in 0..50u64 {
        let d = svc.decide((i % 2) as usize, i * 1_000, &ctx).unwrap();
        svc.reward(d.request_id, i * 1_000 + 500, 1.0);
    }
    assert!(svc.obs().is_none());
    assert!(svc.trace_audit().is_none());
    // The exporters still render: counters only, no histogram families.
    let page = svc.export_prometheus();
    assert!(page.contains("harvest_decisions_total 50"));
    assert!(!page.contains("harvest_trace_decided_total"));
    svc.shutdown().unwrap();
}

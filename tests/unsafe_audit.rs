//! A source-level `unsafe` audit.
//!
//! The serve crate dropped `#![forbid(unsafe_code)]` to `#![deny]` when the
//! lock-free hot path landed (PR "lock-free hot path"): the shard-affine
//! cells, the epoch/RCU policy store, and the SPSC log rings each need
//! interior mutability that safe Rust cannot express without a mutex — the
//! very thing they exist to remove. The bargain is audited, not waived:
//!
//! 1. `unsafe` may appear **only** in the three island modules
//!    (`cell.rs`, `rcu.rs`, `ring.rs`); everywhere else in the workspace
//!    it is still forbidden or denied with no allow in sight.
//! 2. Every `unsafe` block, impl, or trait-impl in the islands must be
//!    immediately preceded by a `// SAFETY:` comment explaining the
//!    invariant that makes it sound.
//!
//! CI runs a grep equivalent of rule 1 so the boundary holds even when the
//! test suite is skipped.

use std::path::{Path, PathBuf};

/// The only files in the workspace allowed to contain `unsafe` code.
const UNSAFE_ISLANDS: &[&str] = &[
    "crates/serve/src/cell.rs",
    "crates/serve/src/rcu.rs",
    "crates/serve/src/ring.rs",
];

/// Crate source roots swept by the audit (every crate in the workspace).
const SWEPT: &[&str] = &[
    "crates/bench/src",
    "crates/core/src",
    "crates/estimators/src",
    "crates/log/src",
    "crates/obs/src",
    "crates/serve/src",
    "crates/sim-cache/src",
    "crates/sim-loadbalance/src",
    "crates/sim-machine-health/src",
    "crates/sim-net/src",
    "crates/wire/src",
];

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Does this line start an `unsafe` item or block (as opposed to merely
/// mentioning the word in a comment or string)?
fn is_unsafe_code(line: &str) -> bool {
    let t = line.trim_start();
    if t.starts_with("//") || t.starts_with("#!") {
        return false;
    }
    t.starts_with("unsafe ")
        || t.contains("unsafe {")
        || t.contains("unsafe impl")
        || t.contains("= unsafe")
        || t.contains("{ unsafe")
}

#[test]
fn unsafe_code_is_confined_to_the_audited_islands() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let islands: Vec<PathBuf> = UNSAFE_ISLANDS.iter().map(|p| root.join(p)).collect();
    for island in &islands {
        assert!(island.is_file(), "island {} missing", island.display());
    }
    let mut leaks = Vec::new();
    for dir in SWEPT {
        let dir = root.join(dir);
        assert!(dir.is_dir(), "swept directory {} missing", dir.display());
        let mut files = Vec::new();
        rust_files(&dir, &mut files);
        for file in files {
            if islands.contains(&file) {
                continue;
            }
            let source = std::fs::read_to_string(&file).unwrap();
            for (lineno, line) in source.lines().enumerate() {
                if is_unsafe_code(line) {
                    leaks.push(format!(
                        "{}:{}: {}",
                        file.display(),
                        lineno + 1,
                        line.trim()
                    ));
                }
            }
        }
    }
    assert!(
        leaks.is_empty(),
        "`unsafe` outside the audited islands (move it into cell/rcu/ring \
         or find a safe formulation):\n{}",
        leaks.join("\n")
    );
}

#[test]
fn every_unsafe_in_the_islands_carries_a_safety_comment() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut unjustified = Vec::new();
    let mut audited = 0usize;
    for island in UNSAFE_ISLANDS {
        let path = root.join(island);
        let source = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = source.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if !is_unsafe_code(line) {
                continue;
            }
            audited += 1;
            // Walk upward through the contiguous comment block (if any)
            // directly above and require a `SAFETY:` marker in it.
            let mut justified = false;
            let mut j = i;
            while j > 0 {
                j -= 1;
                let above = lines[j].trim_start();
                if above.starts_with("//") {
                    if above.contains("SAFETY:") {
                        justified = true;
                        break;
                    }
                } else {
                    break;
                }
            }
            if !justified {
                unjustified.push(format!("{}:{}: {}", path.display(), i + 1, line.trim()));
            }
        }
    }
    assert!(
        audited > 0,
        "audit found no unsafe code in the islands — update UNSAFE_ISLANDS \
         if the lock-free primitives moved"
    );
    assert!(
        unjustified.is_empty(),
        "`unsafe` without a `// SAFETY:` comment directly above:\n{}",
        unjustified.join("\n")
    );
}

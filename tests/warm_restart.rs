//! Kill/restart chaos for the durable control plane.
//!
//! A wave-based driver runs the full harvest loop — serve, join rewards,
//! drain, train/promote, checkpoint — and an adversary kills the process at
//! a chosen wave under every [`CheckpointFault`] class: before the
//! checkpoint write lands, tearing it mid-write, flipping a payload byte,
//! and cleanly after the write. After each kill the service resumes via
//! [`DecisionService::resume`] and the driver finishes the remaining waves.
//!
//! The bar is **byte-identical convergence**: the interrupted run must end
//! with the same durable log (every record, in order), the same incumbent
//! policy (generation, name, and weights), the same per-shard RNG positions
//! and sequence counters, the same joiner state, and the same conservation
//! ledger as the uninterrupted run — and no decision id may ever repeat
//! across incarnations.

use std::collections::HashSet;

use harvest::core::SimpleContext;
use harvest::estimators::bounds::BoundConfig;
use harvest::logs::checkpoint::{CheckpointWriter, MemoryCheckpoints};
use harvest::logs::record::LogRecord;
use harvest::logs::segment::{MemorySegments, SegmentConfig};
use harvest::serve::{
    Backpressure, ChaosPlan, CheckpointFault, DecisionService, GateConfig, LoggerConfig,
    MetricsSnapshot, ServeConfig, TrainerConfig,
};
use harvest::simnet::rng::fork_rng;
use rand::Rng;

const WAVES: usize = 5;
const DECISIONS_PER_WAVE: usize = 60;
const ACTIONS: usize = 3;

fn config(seed: u64) -> ServeConfig {
    ServeConfig::builder()
        .shards(2)
        .epsilon(0.2)
        .master_seed(seed)
        .component("warm-restart")
        .logger(
            LoggerConfig::builder()
                .capacity(256)
                .backpressure(Backpressure::Block)
                .segment(SegmentConfig {
                    max_records: 64,
                    max_bytes: usize::MAX,
                    max_span_ns: u64::MAX,
                })
                .build(),
        )
        // A gate loose enough to promote at this scale: restarts must
        // exercise a non-bootstrap incumbent (and re-run a promotion lost
        // with an unwritten checkpoint), not just the uniform policy.
        .trainer(
            TrainerConfig::builder()
                .lambda(1e-3)
                .epsilon(0.2)
                .gate(
                    GateConfig::builder()
                        .bound(BoundConfig { c: 2.0, delta: 0.2 })
                        // Single-candidate gate: the scenario needs a
                        // promotion from a 50-sample harvest, which the
                        // k=16 simultaneous CI would (correctly) refuse.
                        .portfolio(1)
                        .min_samples(50)
                        .build(),
                )
                .build(),
        )
        .build()
        .expect("valid test config")
}

/// Serves one wave of traffic and joins every reward. Contexts come from a
/// per-wave forked stream, so the driver can resume mid-sequence after a
/// restart without replaying its own RNG.
fn run_wave(svc: &DecisionService<MemorySegments>, seed: u64, wave: usize) {
    let mut traffic = fork_rng(seed, &format!("restart-wave-{wave}"));
    for i in 0..DECISIONS_PER_WAVE {
        let step = (wave * DECISIONS_PER_WAVE + i) as u64;
        let now_ns = (step + 1) * 1_000_000;
        let x: f64 = traffic.gen_range(0.0..1.0);
        let ctx = SimpleContext::new(vec![x], ACTIONS);
        let d = svc
            .decide((step % 2) as usize, now_ns, &ctx)
            .expect("decide");
        let reward = if d.action == 0 { x } else { 1.0 - x };
        svc.reward(d.request_id, now_ns + 500, reward);
    }
    while svc.metrics().log_backlog > 0 {
        std::thread::yield_now();
    }
}

fn train(svc: &DecisionService<MemorySegments>, store: &MemorySegments) {
    let (records, _) = store.recover();
    svc.train_and_maybe_promote(&records).expect("train");
}

fn wave_end_ns(wave: usize) -> u64 {
    ((wave + 1) * DECISIONS_PER_WAVE) as u64 * 1_000_000
}

/// Everything the convergence assertion compares.
struct RunResult {
    snap: MetricsSnapshot,
    records: Vec<LogRecord>,
    incumbent: String,
    shards: String,
    joiner: String,
}

fn finish(svc: DecisionService<MemorySegments>) -> RunResult {
    let state = svc.checkpoint_state(0);
    let snap = svc.metrics();
    let store = svc.shutdown().expect("shutdown");
    let (records, stats) = store.recover();
    assert_eq!(stats.quarantined_records, 0, "no segment damage injected");
    RunResult {
        snap,
        records,
        incumbent: serde_json::to_string(&state.incumbent).unwrap(),
        shards: serde_json::to_string(&state.shards).unwrap(),
        joiner: serde_json::to_string(&state.joiner).unwrap(),
    }
}

fn uninterrupted(seed: u64) -> RunResult {
    let store = MemorySegments::new();
    let ckpts = MemoryCheckpoints::new();
    let mut writer = CheckpointWriter::new(ckpts, 8).expect("writer");
    let svc = DecisionService::new(config(seed), store.clone());
    for wave in 0..WAVES {
        run_wave(&svc, seed, wave);
        train(&svc, &store);
        svc.write_checkpoint(&mut writer, wave as u64 + 1, wave_end_ns(wave))
            .expect("checkpoint");
    }
    finish(svc)
}

/// Runs the same waves, but the process dies at `kill_wave` under `fault`
/// and resumes from whatever checkpoint survived.
fn interrupted(seed: u64, kill_wave: usize, fault: CheckpointFault) -> RunResult {
    let store = MemorySegments::new();
    let ckpts = MemoryCheckpoints::new();
    let mut writer = CheckpointWriter::new(ckpts.clone(), 8).expect("writer");
    let plan = ChaosPlan::none().fault_checkpoint_at(kill_wave as u64, fault);
    let mut svc = DecisionService::with_chaos(config(seed), store.clone(), plan.clone());
    let mut wave = 0usize;
    let mut replayed_waves = 0usize;
    let mut killed = false;
    while wave < WAVES {
        if replayed_waves > 0 {
            // This wave's decisions and rewards came back through replay;
            // only the lost (post-checkpoint) training work reruns.
            replayed_waves -= 1;
        } else {
            run_wave(&svc, seed, wave);
        }
        train(&svc, &store);
        let dies_here = wave == kill_wave && !killed;
        if !(dies_here && matches!(fault, CheckpointFault::KillBefore)) {
            // Tear/Corrupt damage is applied by the service itself from the
            // chaos plan; KillBefore means no bytes ever land.
            svc.write_checkpoint(&mut writer, wave as u64 + 1, wave_end_ns(wave))
                .expect("checkpoint");
        }
        if dies_here {
            killed = true;
            let dead = svc.shutdown().expect("kill");
            let segments = dead.snapshot();
            let (resumed, report) =
                DecisionService::resume(config(seed), dead, Some(plan.clone()), &ckpts, &segments)
                    .expect("resume");
            assert_eq!(report.replay_divergence, 0, "replay must match the log");
            assert_eq!(
                report.replayed_decisions as usize % DECISIONS_PER_WAVE,
                0,
                "waves are checkpointed whole"
            );
            svc = resumed;
            wave = report.cursor as usize;
            replayed_waves = report.replayed_decisions as usize / DECISIONS_PER_WAVE;
            continue;
        }
        wave += 1;
    }
    finish(svc)
}

fn assert_converged(reference: &RunResult, run: &RunResult, label: &str) {
    assert_eq!(
        run.records, reference.records,
        "{label}: durable log must be record-identical"
    );
    let ids: Vec<u64> = run
        .records
        .iter()
        .filter(|r| r.is_decision())
        .map(|r| r.request_id())
        .collect();
    let unique: HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(
        unique.len(),
        ids.len(),
        "{label}: decision ids must never collide across incarnations"
    );
    assert_eq!(run.incumbent, reference.incumbent, "{label}: incumbent");
    assert_eq!(run.shards, reference.shards, "{label}: shard RNG/seq state");
    assert_eq!(run.joiner, reference.joiner, "{label}: joiner state");
    let (a, b) = (&run.snap, &reference.snap);
    assert_eq!(a.decisions, b.decisions, "{label}: decisions");
    assert_eq!(a.explorations, b.explorations, "{label}: explorations");
    assert_eq!(a.log_enqueued, b.log_enqueued, "{label}: enqueued");
    assert_eq!(a.log_written, b.log_written, "{label}: written");
    assert_eq!(a.log_dropped, b.log_dropped, "{label}: dropped");
    assert_eq!(a.log_quarantined, b.log_quarantined, "{label}: quarantined");
    assert_eq!(a.join_hits, b.join_hits, "{label}: join hits");
    assert_eq!(a.rewards_lost, b.rewards_lost, "{label}: rewards lost");
    assert_eq!(
        a.timed_out_decisions, b.timed_out_decisions,
        "{label}: join timeouts"
    );
    assert_eq!(a.swaps, b.swaps, "{label}: promotions");
    assert_eq!(
        a.log_enqueued,
        a.log_written + a.log_dropped + a.log_quarantined,
        "{label}: conservation ledger"
    );
}

fn fault_classes() -> [(CheckpointFault, &'static str); 4] {
    [
        (CheckpointFault::KillBefore, "kill-before"),
        (CheckpointFault::Tear { keep_frac: 0.4 }, "tear"),
        (CheckpointFault::Corrupt { xor: 0x10 }, "corrupt"),
        (CheckpointFault::KillAfter, "kill-after"),
    ]
}

#[test]
fn every_fault_class_converges_at_an_interior_wave() {
    let seed = 42;
    let reference = uninterrupted(seed);
    assert!(
        reference.snap.swaps >= 1,
        "scenario must exercise a promotion, got none"
    );
    for (fault, name) in fault_classes() {
        let run = interrupted(seed, 2, fault);
        assert_converged(&reference, &run, &format!("seed {seed}, {name} @ wave 2"));
    }
}

#[test]
fn every_fault_class_converges_at_the_first_wave() {
    // Wave 0 is the hard edge: KillBefore and Tear leave *no* valid
    // checkpoint, so recovery degenerates to a cold full-log replay.
    let seed = 7;
    let reference = uninterrupted(seed);
    for (fault, name) in fault_classes() {
        let run = interrupted(seed, 0, fault);
        assert_converged(&reference, &run, &format!("seed {seed}, {name} @ wave 0"));
    }
}

#[test]
fn every_fault_class_converges_at_the_last_wave() {
    let seed = 1;
    let reference = uninterrupted(seed);
    for (fault, name) in fault_classes() {
        let run = interrupted(seed, WAVES - 1, fault);
        assert_converged(
            &reference,
            &run,
            &format!("seed {seed}, {name} @ wave {}", WAVES - 1),
        );
    }
}

#[test]
fn recovery_telemetry_reports_the_fallback() {
    // A torn newest checkpoint must be *counted* — discarded exactly once —
    // and the resumed service must report the restart in its own metrics.
    let seed = 7;
    let run = interrupted(seed, 2, CheckpointFault::Tear { keep_frac: 0.3 });
    assert_eq!(run.snap.restart_count, 1);
    assert_eq!(run.snap.checkpoints_discarded, 1);
    assert_eq!(
        run.snap.replayed_joins as usize, DECISIONS_PER_WAVE,
        "the killed wave's outcomes replay through the joiner"
    );
}

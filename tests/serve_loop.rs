//! End-to-end tests for the online decision service (`harvest-serve`)
//! driven with load-balancer traffic: determinism of the decision log,
//! and both halves of the promotion gate on served data.

use harvest::lb::{ClusterConfig, LbContext};
use harvest::serve::PromotionReport;
use harvest::serve::{
    Backpressure, DecisionService, GateConfig, GateEstimator, JoinOutcome, LoggerConfig,
    ServeConfig, ServePolicy, Trainer, TrainerConfig,
};
use harvest::simnet::rng::fork_rng;
use harvest_estimators::bounds::BoundConfig;
use harvest_log::segment::MemorySegments;
use rand::Rng;

const EPSILON: f64 = 0.15;
const WARMUP_REQUESTS: usize = 2500;
const SERVE_REQUESTS: usize = 1500;

fn trainer_config() -> TrainerConfig {
    TrainerConfig::builder()
        .epsilon(EPSILON)
        .lambda(1e-3)
        .modeling(harvest::core::learner::ModelingMode::Pooled)
        .gate(
            GateConfig::builder()
                .bound(BoundConfig {
                    c: 2.0,
                    delta: 0.05,
                })
                .estimator(GateEstimator::Snips)
                .min_samples(500)
                .build(),
        )
        .build()
}

fn service_config(seed: u64, shards: usize) -> ServeConfig {
    ServeConfig::builder()
        .shards(shards)
        .epsilon(EPSILON)
        .master_seed(seed)
        .component("lb-test")
        .logger(
            LoggerConfig::builder()
                .capacity(1024)
                .backpressure(Backpressure::Block)
                .build(),
        )
        .join_ttl_ns(5_000_000_000)
        .trainer(trainer_config())
        .build()
        .expect("valid test config")
}

struct TraceResult {
    log: Vec<Vec<u8>>,
    report: PromotionReport,
    warmup_mean_latency: f64,
    served_mean_latency: f64,
    swap_count: u64,
}

/// Drives one full harvest → train → promote trace: a warmup wave under the
/// uniform bootstrap, one training round on the service's own log, then a
/// second wave under whatever polices after the gate's verdict. Everything
/// (traffic, decisions, log bytes) is a deterministic function of `seed`.
fn run_trace(seed: u64) -> TraceResult {
    let cluster = ClusterConfig::fig5();
    let store = MemorySegments::new();
    let svc = DecisionService::new(service_config(seed, 4), store.clone());
    let mut traffic = fork_rng(seed, "lb-traffic");
    let mut now_ns = 0u64;

    let mut wave = |svc: &DecisionService<MemorySegments>, n: usize| -> f64 {
        let mut latency_sum = 0.0;
        for i in 0..n {
            now_ns += 1_000_000;
            let u: f64 = traffic.gen();
            let class = if u < cluster.class_probs[0] { 0 } else { 1 };
            let connections: Vec<u32> = (0..cluster.num_servers())
                .map(|_| traffic.gen_range(0..15u32))
                .collect();
            let ctx = LbContext {
                connections: connections.clone(),
                request_class: class,
                num_classes: cluster.num_classes(),
            }
            .to_cb_context();
            let d = svc.decide(i % svc.num_shards(), now_ns, &ctx).unwrap();
            let noise: f64 = 1.0 + cluster.latency_noise * traffic.gen_range(-1.0..1.0);
            let latency = cluster.servers[d.action].latency(class, connections[d.action]) * noise;
            latency_sum += latency;
            svc.reward(d.request_id, now_ns + 500_000, -latency);
        }
        latency_sum / n as f64
    };

    let warmup_mean_latency = wave(&svc, WARMUP_REQUESTS);
    while svc.metrics().log_backlog > 0 {
        std::thread::yield_now();
    }
    let (records, stats) = store.recover();
    assert_eq!(stats.quarantined_records, 0);
    let report = svc.train_and_maybe_promote(&records).unwrap();
    let served_mean_latency = wave(&svc, SERVE_REQUESTS);
    let swap_count = svc.registry().swap_count();
    let log = svc.shutdown().unwrap().snapshot();
    TraceResult {
        log,
        report,
        warmup_mean_latency,
        served_mean_latency,
        swap_count,
    }
}

/// ISSUE acceptance: two same-seed runs of the loop produce byte-identical
/// decision logs — determinism by construction, through every layer
/// (per-shard RNG forks, logical clocks, the MPSC writer, serialization).
#[test]
fn same_seed_runs_produce_byte_identical_logs() {
    let a = run_trace(17);
    let b = run_trace(17);
    assert!(!a.log.is_empty());
    assert_eq!(a.log, b.log, "same-seed logs differ");
    // And the log genuinely depends on the seed.
    let c = run_trace(18);
    assert_ne!(a.log, c.log, "different seeds produced identical logs");
}

/// ISSUE acceptance, accepting half: the gate promotes the candidate
/// trained on the service's own uniformly-explored log, and the promoted
/// policy measurably beats the bootstrap on fresh traffic.
#[test]
fn gate_accepts_a_genuinely_better_candidate() {
    let t = run_trace(29);
    assert!(t.report.gate.promoted, "{:?}", t.report.gate);
    assert!(t.report.gate.candidate_lcb > t.report.gate.incumbent_value);
    assert_eq!(t.report.serving_generation, 1);
    assert_eq!(t.swap_count, 1);
    // Fig 5 economics: uniform routing ≈ 0.35 s; a policy that has learned
    // the class × server interaction lands near 0.24 s. Require a solid
    // improvement, not a statistical accident.
    assert!(
        t.served_mean_latency < t.warmup_mean_latency - 0.05,
        "promoted policy did not improve latency: warmup {:.3} vs served {:.3}",
        t.warmup_mean_latency,
        t.served_mean_latency
    );
}

/// ISSUE acceptance, refusing half: a degraded candidate — the learned
/// scorer inverted, preferring the worst server — is refused by the gate on
/// the same harvested data that promoted the good one.
#[test]
fn gate_refuses_a_degraded_candidate() {
    let cluster = ClusterConfig::fig5();
    let store = MemorySegments::new();
    let svc = DecisionService::new(service_config(31, 2), store.clone());
    let mut traffic = fork_rng(31, "lb-traffic");
    let mut now_ns = 0u64;
    for i in 0..WARMUP_REQUESTS {
        now_ns += 1_000_000;
        let u: f64 = traffic.gen();
        let class = if u < cluster.class_probs[0] { 0 } else { 1 };
        let connections: Vec<u32> = (0..cluster.num_servers())
            .map(|_| traffic.gen_range(0..15u32))
            .collect();
        let ctx = LbContext {
            connections: connections.clone(),
            request_class: class,
            num_classes: cluster.num_classes(),
        }
        .to_cb_context();
        let d = svc.decide(i % svc.num_shards(), now_ns, &ctx).unwrap();
        let latency = cluster.servers[d.action].latency(class, connections[d.action]);
        svc.reward(d.request_id, now_ns + 500_000, -latency);
    }
    while svc.metrics().log_backlog > 0 {
        std::thread::yield_now();
    }
    let (records, _) = store.recover();

    let trainer = Trainer::new(trainer_config());
    let (data, _) = trainer.harvest(&records).unwrap();
    let good = trainer.train(&data).unwrap();
    let degraded = match &good {
        harvest::core::scorer::LinearScorer::Pooled { weights } => {
            harvest::core::scorer::LinearScorer::Pooled {
                weights: weights.iter().map(|w| -w).collect(),
            }
        }
        harvest::core::scorer::LinearScorer::PerAction { weights } => {
            harvest::core::scorer::LinearScorer::PerAction {
                weights: weights
                    .iter()
                    .map(|w| w.iter().map(|x| -x).collect())
                    .collect(),
            }
        }
    };

    let accept = trainer.gate(
        &data,
        &ServePolicy::Uniform,
        &ServePolicy::Greedy(good.clone()),
        &good,
    );
    assert!(accept.promoted, "{accept:?}");
    let refuse = trainer.gate(
        &data,
        &ServePolicy::Uniform,
        &ServePolicy::Greedy(degraded.clone()),
        &degraded,
    );
    assert!(!refuse.promoted, "{refuse:?}");
    assert!(refuse.candidate_value < refuse.incumbent_value);
    svc.shutdown().unwrap();
}

/// Reward-joiner behavior through the service surface: a reward past the
/// TTL is refused as Expired (and never logged), a second reward for the
/// same id is a Duplicate, an unknown id is Unknown.
#[test]
fn service_refuses_late_duplicate_and_unknown_rewards() {
    let svc = DecisionService::new(service_config(5, 1), MemorySegments::new());
    let ctx = harvest::core::SimpleContext::contextless(3);
    let d1 = svc.decide(0, 1_000, &ctx).unwrap();
    let d2 = svc.decide(0, 2_000, &ctx).unwrap();
    let ttl = 5_000_000_000;
    assert_eq!(
        svc.reward(d1.request_id, 1_000 + ttl, -0.1),
        JoinOutcome::Joined
    );
    assert_eq!(
        svc.reward(d1.request_id, 1_000 + ttl, -0.1),
        JoinOutcome::Duplicate
    );
    assert_eq!(
        svc.reward(d2.request_id, 2_001 + ttl, -0.1),
        JoinOutcome::Expired
    );
    assert_eq!(svc.reward(999_999, 2_001 + ttl, -0.1), JoinOutcome::Unknown);
    let snap = svc.metrics();
    assert_eq!(snap.join_hits, 1);
    assert_eq!(snap.join_duplicates, 1);
    assert_eq!(snap.join_late, 1);
    assert_eq!(snap.join_unknown, 1);
    svc.shutdown().unwrap();
}

//! Seeded concurrency stress over the lock-free hot path.
//!
//! The lock-free refactor (shard-affine cells, epoch/RCU policy reads,
//! per-shard SPSC log rings, atomic queue budget) trades mutexes for
//! ordering arguments — so this test hammers every one of those arguments
//! at once and then audits the books:
//!
//! * four shard-affine workers serve singles and batches on their own
//!   shards while a **rogue** thread violates affinity on shard 0 (the
//!   striped fallback path must stay correct, not just the happy path);
//! * a promoter storms the registry with epoch/RCU hot-swaps the whole
//!   time, so pinned readers race slot overwrites and quiescence waits;
//! * a chaos thread arms shard wedges mid-traffic, and a checkpointer
//!   concurrently snapshots shard states through the same cells;
//! * the writer thread drains the ticket-ordered rings underneath it all.
//!
//! When the dust settles, conservation must hold exactly: every decision
//! was offered to the log once (`log_enqueued == decisions`), nothing
//! vanished (`enqueued == written + dropped + quarantined`), the recovered
//! segment stream matches the written count, wedge recoveries reconcile
//! with the faults armed, and the registry generation equals the number of
//! promotions. CI runs this under `-C debug-assertions` in release mode so
//! the internal `debug_assert!`s in the lock-free modules stay armed under
//! optimized codegen.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use harvest::core::SimpleContext;
use harvest::logs::segment::MemorySegments;
use harvest::serve::{
    spawn_supervised_writer, Backpressure, DecisionBatch, DecisionEngine, EngineConfig,
    LoggerConfig, PolicyRegistry, ServeMetrics, ServePolicy, SupervisorConfig,
};

const SHARDS: usize = 4;
const AFFINE_DECISIONS: usize = 2_000; // per worker, singles + batches mixed
const ROGUE_DECISIONS: usize = 1_000;
const BATCH: usize = 8;
const PROMOTIONS: u64 = 200;
const WEDGES: usize = 64;
const ACTIONS: usize = 4;

struct Harness {
    engine: Arc<DecisionEngine>,
    registry: Arc<PolicyRegistry>,
    metrics: Arc<ServeMetrics>,
}

fn harness(backpressure: Backpressure, capacity: usize) -> (Harness, impl FnOnce() -> (u64, u64)) {
    let metrics = Arc::new(ServeMetrics::new());
    let registry = Arc::new(PolicyRegistry::new(ServePolicy::Uniform, "v0"));
    let logger_cfg = LoggerConfig::builder()
        .capacity(capacity)
        .backpressure(backpressure)
        .shard_rings(SHARDS)
        .build();
    let (logger, writer) = spawn_supervised_writer(
        logger_cfg,
        SupervisorConfig::default(),
        Arc::clone(&metrics),
        None,
        MemorySegments::new(),
    );
    let engine_cfg = EngineConfig::builder()
        .shards(SHARDS)
        .epsilon(0.2)
        .master_seed(42)
        .component("stress")
        .build()
        .unwrap();
    let engine = Arc::new(DecisionEngine::new(
        &engine_cfg,
        Arc::clone(&registry),
        Arc::clone(&metrics),
        logger,
    ));
    let finish = {
        let engine = Arc::clone(&engine);
        move || {
            drop(engine);
            let store = writer.finish().unwrap();
            let (records, stats) = store.recover();
            (records.len() as u64, stats.quarantined_records as u64)
        }
    };
    (
        Harness {
            engine,
            registry,
            metrics,
        },
        finish,
    )
}

/// Every thread class at once; exact conservation afterward.
fn run_storm(backpressure: Backpressure, capacity: usize) {
    let (h, finish) = harness(backpressure, capacity);
    let ctx = SimpleContext::new(vec![0.5, -0.25], ACTIONS);
    let contexts: Vec<SimpleContext> = (0..BATCH).map(|_| ctx.clone()).collect();
    let served = AtomicU64::new(0);
    let wedges_armed = AtomicU64::new(0);
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Shard-affine workers: the intended deployment, singles + batches.
        for t in 0..SHARDS {
            let engine = &h.engine;
            let ctx = &ctx;
            let contexts = &contexts;
            let served = &served;
            s.spawn(move || {
                let mut out = DecisionBatch::with_capacity(BATCH);
                let mut i = 0usize;
                let mut now = 0u64;
                while i < AFFINE_DECISIONS {
                    if i.is_multiple_of(7) && i + BATCH <= AFFINE_DECISIONS {
                        engine.decide_batch(t, now, contexts, &mut out).unwrap();
                        served.fetch_add(out.len() as u64, Ordering::Relaxed);
                        i += BATCH;
                    } else {
                        engine.decide(t, now, ctx).unwrap();
                        served.fetch_add(1, Ordering::Relaxed);
                        i += 1;
                    }
                    now += 10;
                }
            });
        }
        // Rogue: violates shard affinity on shard 0 the whole time — the
        // striped spin fallback must keep decide() correct under contention.
        {
            let engine = &h.engine;
            let ctx = &ctx;
            let served = &served;
            s.spawn(move || {
                for i in 0..ROGUE_DECISIONS {
                    engine.decide(0, i as u64 * 3, ctx).unwrap();
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Promoter: epoch/RCU hot-swap storm against the pinned readers.
        {
            let registry = &h.registry;
            s.spawn(move || {
                for g in 1..=PROMOTIONS {
                    let got = registry.promote(ServePolicy::Uniform, format!("v{g}"));
                    assert_eq!(got, g, "promotions are strictly serialized");
                    std::thread::yield_now();
                }
            });
        }
        // Chaos: arm shard wedges mid-traffic.
        {
            let engine = &h.engine;
            let wedges_armed = &wedges_armed;
            let done = &done;
            s.spawn(move || {
                for i in 0..WEDGES {
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                    assert!(engine.poison_shard(i % SHARDS));
                    wedges_armed.fetch_add(1, Ordering::Relaxed);
                    std::thread::yield_now();
                }
            });
        }
        // Checkpointer: concurrent shard-state snapshots through the cells.
        {
            let engine = &h.engine;
            let done = &done;
            s.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let states = engine.shard_states();
                    assert_eq!(states.len(), SHARDS);
                    std::thread::yield_now();
                }
            });
        }
        // Watcher: flips `done` once the fixed serving workloads finish, so
        // the open-ended chaos/checkpoint loopers stop and the scope joins.
        {
            let served = &served;
            let done = &done;
            let total = (SHARDS * AFFINE_DECISIONS + ROGUE_DECISIONS) as u64;
            s.spawn(move || {
                while served.load(Ordering::Relaxed) < total {
                    std::thread::yield_now();
                }
                done.store(true, Ordering::Relaxed);
            });
        }
    });

    let total = (SHARDS * AFFINE_DECISIONS + ROGUE_DECISIONS) as u64;
    assert_eq!(served.load(Ordering::Relaxed), total);

    // Arm one final wedge and recover it through a normal decide, so the
    // wedge path is provably exercised regardless of scheduling.
    assert!(h.engine.poison_shard(1));
    let armed = wedges_armed.load(Ordering::Relaxed) + 1;
    h.engine.decide(1, u64::MAX / 2, &ctx).unwrap();
    let served_total = total + 1;

    // The writer drains until every producer hangs up, so *both* engine
    // handles must go: ours here, the closure's inside `finish`.
    drop(h.engine);
    let (recovered, quarantined_at_recovery) = finish();
    let s = h.metrics.snapshot();

    // Conservation, exactly: every decision offered once, nothing vanished.
    assert_eq!(s.decisions, served_total);
    assert_eq!(s.log_enqueued, s.decisions);
    assert_eq!(
        s.log_enqueued,
        s.log_written + s.log_dropped + s.log_quarantined,
        "ledger must balance once drained: {s:?}"
    );
    assert_eq!(s.log_backlog, 0);
    assert_eq!(
        recovered, s.log_written,
        "recovered stream == written count"
    );
    assert_eq!(quarantined_at_recovery, 0, "no torn frames were injected");

    // Wedge recoveries reconcile with the faults armed: every recovery is a
    // real wedge (multiple arms can collapse into one recovery, never the
    // reverse), the alias holds, and at least the hand-recovered one landed.
    assert!(
        s.shard_wedges >= 1,
        "the final armed wedge must be recovered"
    );
    assert!(
        s.shard_wedges <= armed,
        "recoveries ({}) exceed wedges armed ({armed})",
        s.shard_wedges
    );
    assert_eq!(
        s.lock_recoveries, s.shard_wedges,
        "legacy alias must track wedge recoveries one-for-one"
    );

    // The promotion storm is fully serialized through the RCU cell.
    assert_eq!(h.registry.generation(), PROMOTIONS);
    assert_eq!(h.registry.swap_count(), PROMOTIONS);
}

#[test]
fn storm_with_blocking_backpressure_loses_nothing() {
    run_storm(Backpressure::Block, 128);
    // Block mode refuses nothing at the door; with a healthy writer the
    // whole stream persists. (Asserted inside run_storm via the ledger:
    // dropped can only be nonzero in DropNewest mode.)
}

#[test]
fn storm_with_drop_newest_sheds_measurably_not_silently() {
    run_storm(Backpressure::DropNewest, 32);
}

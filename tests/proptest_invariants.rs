//! Property-based tests (proptest) over the workspace's core invariants.
//!
//! These cover the laws the estimators and data structures must uphold for
//! *any* input, not just the hand-picked cases of the unit tests.

use proptest::prelude::*;

use harvest::core::linalg::Matrix;
use harvest::core::policy::{
    validate_distribution, ConstantPolicy, EpsilonGreedyPolicy, StochasticPolicy, UniformPolicy,
    WeightedPolicy,
};
use harvest::core::sample::RewardScaling;
use harvest::core::simulate::simulate_exploration;
use harvest::core::{
    Dataset, FullFeedbackDataset, FullFeedbackSample, LoggedDecision, SimpleContext,
};
use harvest::estimators::{EstimatorKind, OffPolicyEvaluator};
use harvest::logs::nginx::{parse_line, NginxLogLine};
use harvest::logs::reward::{reconstruct_rewards, AccessEvent, EvictionEvent};
use harvest::simnet::{EventQueue, SimTime};

/// Strategy: a logged decision over `k` featureless actions.
fn decision(k: usize) -> impl Strategy<Value = LoggedDecision<SimpleContext>> {
    (0..k, -10.0f64..10.0, 0.05f64..=1.0).prop_map(move |(action, reward, propensity)| {
        LoggedDecision {
            context: SimpleContext::contextless(k),
            action,
            reward,
            propensity,
        }
    })
}

proptest! {
    #[test]
    fn event_queue_pops_sorted_and_fifo_stable(
        times in proptest::collection::vec(0u64..1_000, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(ev.at >= lt, "time order violated");
                if ev.at == lt {
                    prop_assert!(ev.event > li, "FIFO tie-break violated");
                }
            }
            last = Some((ev.at, ev.event));
        }
    }

    #[test]
    fn reward_scaling_round_trips(lo in -1e6f64..1e6, span in 1e-6f64..1e6, x in -1e6f64..1e6) {
        let hi = lo + span;
        let s = RewardScaling::from_range(lo, hi);
        let rel = |a: f64, b: f64| (a - b).abs() / (1.0 + a.abs().max(b.abs()));
        prop_assert!(rel(s.invert(s.apply(x)), x) < 1e-9);
        prop_assert!(s.apply(lo).abs() < 1e-9);
        prop_assert!((s.apply(hi) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stochastic_policies_emit_valid_distributions(
        k in 1usize..12,
        eps in 0.0f64..=1.0,
        weights in proptest::collection::vec(0.01f64..10.0, 1..12)
    ) {
        let ctx = SimpleContext::contextless(k);
        validate_distribution(&UniformPolicy::new().action_probabilities(&ctx)).unwrap();
        let eg = EpsilonGreedyPolicy::new(ConstantPolicy::new(0), eps).unwrap();
        validate_distribution(&eg.action_probabilities(&ctx)).unwrap();
        let w = WeightedPolicy::new(weights).unwrap();
        validate_distribution(&w.action_probabilities(&ctx)).unwrap();
    }

    #[test]
    fn sampled_propensities_match_reported_distribution(
        k in 1usize..8,
        eps in 0.01f64..=1.0,
        seed in 0u64..1_000
    ) {
        use rand::SeedableRng;
        let ctx = SimpleContext::contextless(k);
        let pol = EpsilonGreedyPolicy::new(ConstantPolicy::new(k / 2), eps).unwrap();
        let probs = pol.action_probabilities(&ctx);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (a, p) = pol.sample(&ctx, &mut rng);
        prop_assert!(a < k);
        prop_assert!((p - probs[a]).abs() < 1e-12);
    }

    #[test]
    fn ips_on_own_data_with_unit_propensity_is_mean_reward(
        rewards in proptest::collection::vec(-5.0f64..5.0, 1..100),
    ) {
        // A point-mass logging policy (p = 1) evaluated on itself must
        // reproduce the empirical mean exactly.
        let samples: Vec<_> = rewards.iter().map(|&r| LoggedDecision {
            context: SimpleContext::contextless(3),
            action: 1,
            reward: r,
            propensity: 1.0,
        }).collect();
        let data = Dataset::from_samples(samples).unwrap();
        let est = OffPolicyEvaluator::new(EstimatorKind::Ips)
            .evaluate(&data, &ConstantPolicy::new(1));
        let mean = rewards.iter().sum::<f64>() / rewards.len() as f64;
        prop_assert!((est.value - mean).abs() < 1e-9);
        prop_assert_eq!(est.matched, rewards.len());
    }

    #[test]
    fn snips_stays_within_matched_reward_range(
        samples in proptest::collection::vec(decision(4), 1..200),
        target in 0usize..4
    ) {
        let data = Dataset::from_samples(samples.clone()).unwrap();
        let pol = ConstantPolicy::new(target);
        let est = OffPolicyEvaluator::new(EstimatorKind::Snips).evaluate(&data, &pol);
        if est.matched > 0 {
            let matched: Vec<f64> = samples.iter()
                .filter(|s| s.action == target)
                .map(|s| s.reward)
                .collect();
            let lo = matched.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = matched.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(est.value >= lo - 1e-9 && est.value <= hi + 1e-9,
                "snips {} outside [{lo}, {hi}]", est.value);
        }
    }

    #[test]
    fn exploration_simulation_reveals_only_true_rewards(
        rewards_matrix in proptest::collection::vec(
            proptest::collection::vec(-1.0f64..1.0, 3), 1..50),
        seed in 0u64..500
    ) {
        use rand::SeedableRng;
        let samples: Vec<_> = rewards_matrix.iter().cloned().map(|rewards| {
            FullFeedbackSample { context: SimpleContext::contextless(3), rewards }
        }).collect();
        let full = FullFeedbackDataset::from_samples(samples).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let expl = simulate_exploration(&full, &UniformPolicy::new(), &mut rng);
        prop_assert_eq!(expl.len(), rewards_matrix.len());
        for (s, row) in expl.iter().zip(&rewards_matrix) {
            prop_assert_eq!(s.reward, row[s.action]);
            prop_assert!((s.propensity - 1.0/3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn spd_solves_have_small_residuals(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1.0f64..1.0, 4), 4..20),
        b in proptest::collection::vec(-1.0f64..1.0, 4)
    ) {
        let mut gram = Matrix::zeros(4, 4);
        for r in &rows {
            gram.rank1_update(r, 1.0);
        }
        gram.add_diagonal(0.5); // ridge => strictly PD
        let w = gram.solve_spd(&b).unwrap();
        let back = gram.mat_vec(&w);
        for i in 0..4 {
            prop_assert!((back[i] - b[i]).abs() < 1e-8, "residual at {i}");
        }
    }

    #[test]
    fn nginx_lines_round_trip(
        addr_a in 1u8..255, addr_b in 1u8..255,
        msec in 0.0f64..1e6,
        status in 100u16..600,
        bytes in 0u64..1_000_000,
        rt in 0.0f64..100.0,
        conns in proptest::collection::vec(0u32..1000, 1..16),
        req_id in 0u64..u64::MAX / 2,
        upstream_pick in 0usize..16,
    ) {
        let upstream = upstream_pick % conns.len();
        let line = NginxLogLine {
            remote_addr: format!("10.0.{addr_a}.{addr_b}"),
            msec: (msec * 1e6).round() / 1e6, // quantized to the format's precision
            method: "GET".to_string(),
            uri: "/api/v1/x".to_string(),
            protocol: "HTTP/1.1".to_string(),
            status,
            body_bytes: bytes,
            upstream,
            request_time: (rt * 1e6).round() / 1e6,
            connections: conns,
            request_id: req_id,
        };
        let parsed = parse_line(&line.format_line()).unwrap();
        prop_assert_eq!(parsed, line);
    }

    #[test]
    fn reconstructed_rewards_are_capped_and_non_negative(
        accesses in proptest::collection::vec((0u64..1_000, 0u64..20), 0..300),
        evictions in proptest::collection::vec((0u64..1_000, 0u64..20), 1..50),
        horizon in 1.0f64..1000.0
    ) {
        let acc: Vec<AccessEvent> = accesses.iter().map(|&(t, k)| AccessEvent {
            timestamp_ns: t * 1_000_000_000,
            key: k,
        }).collect();
        let ev: Vec<EvictionEvent> = evictions.iter().map(|&(t, k)| EvictionEvent {
            timestamp_ns: t * 1_000_000_000,
            key: k,
        }).collect();
        let rewards = reconstruct_rewards(&acc, &ev, horizon);
        prop_assert_eq!(rewards.len(), ev.len());
        for r in &rewards {
            prop_assert!(r.time_to_next_access_s >= 0.0);
            prop_assert!(r.time_to_next_access_s <= horizon);
            if r.censored {
                prop_assert_eq!(r.time_to_next_access_s, horizon);
            }
        }
    }

    #[test]
    fn dataset_split_partitions_in_order(
        samples in proptest::collection::vec(decision(3), 0..100),
        cut in 0usize..120
    ) {
        let data = Dataset::from_samples(samples.clone()).unwrap();
        let (train, test) = data.split_at(cut);
        prop_assert_eq!(train.len() + test.len(), samples.len());
        let rejoined: Vec<_> = train.iter().chain(test.iter()).cloned().collect();
        prop_assert_eq!(rejoined, samples);
    }
}

// ---------------------------------------------------------------------------
// Crash-safe segment properties: the checksummed frame format must replay
// exactly the longest valid prefix under any truncation or payload
// corruption, quarantining (counting, never silently skipping) the rest.
// ---------------------------------------------------------------------------

use harvest::logs::record::{LogRecord, OutcomeRecord};
use harvest::logs::segment::{
    encode_frame, recover_segment, MemorySegments, SegmentConfig, SegmentedLogWriter,
};

/// Strategy: one outcome record with finite, JSON-representable fields.
fn segment_record() -> impl Strategy<Value = LogRecord> {
    (any::<u64>(), 0u64..u64::MAX / 2, -1e9f64..1e9).prop_map(|(id, t, r)| {
        LogRecord::Outcome(OutcomeRecord {
            request_id: id,
            timestamp_ns: t,
            reward: r,
        })
    })
}

proptest! {
    // Checksum round-trip: whatever goes through the segmented writer comes
    // back exactly, in order, clean, regardless of rotation boundaries.
    #[test]
    fn segments_round_trip_any_records(
        records in proptest::collection::vec(segment_record(), 0..60),
        max_records in 1usize..10,
    ) {
        let store = MemorySegments::new();
        let mut writer = SegmentedLogWriter::new(
            store.clone(),
            SegmentConfig { max_records, max_bytes: usize::MAX, max_span_ns: u64::MAX },
        );
        for r in &records {
            writer.write(r).unwrap();
        }
        writer.flush().unwrap();
        let (recovered, stats) = store.recover();
        prop_assert_eq!(&recovered, &records);
        prop_assert_eq!(stats.recovered, records.len());
        prop_assert_eq!(stats.quarantined_records, 0);
        prop_assert_eq!(stats.corrupt_segments, 0);
    }

    // Truncation at ANY byte offset: recovery replays exactly the frames
    // wholly inside the prefix; a non-empty partial tail is quarantined as
    // exactly one record and every surviving byte is accounted for.
    #[test]
    fn truncation_recovers_exactly_the_longest_valid_prefix(
        records in proptest::collection::vec(segment_record(), 1..30),
        cut_frac in 0.0f64..=1.0,
    ) {
        let frames: Vec<Vec<u8>> = records.iter().map(|r| encode_frame(r).unwrap()).collect();
        let mut bytes = Vec::new();
        let mut offsets = vec![0usize]; // cumulative frame-end offsets
        for f in &frames {
            bytes.extend_from_slice(f);
            offsets.push(bytes.len());
        }
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let truncated = &bytes[..cut.min(bytes.len())];

        let complete = offsets.iter().filter(|&&o| o > 0 && o <= truncated.len()).count();
        let (recovered, stats) = recover_segment(truncated);
        prop_assert_eq!(&recovered, &records[..complete]);
        prop_assert_eq!(stats.recovered, complete);
        let partial_bytes = truncated.len() - offsets[complete];
        prop_assert_eq!(stats.quarantined_records, usize::from(partial_bytes > 0));
        prop_assert_eq!(stats.quarantined_bytes, partial_bytes);
    }

    // Payload corruption (one XORed byte): recovery stops at the damaged
    // frame and quarantines it plus everything after it — counted frame by
    // frame, since the later frames are still structurally walkable.
    #[test]
    fn payload_corruption_quarantines_the_damaged_suffix(
        records in proptest::collection::vec(segment_record(), 1..30),
        frame_frac in 0.0f64..1.0,
        byte_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let frames: Vec<Vec<u8>> = records.iter().map(|r| encode_frame(r).unwrap()).collect();
        let target = ((frames.len() as f64) * frame_frac) as usize % frames.len();
        let mut bytes = Vec::new();
        let mut start_of = Vec::new();
        for f in &frames {
            start_of.push(bytes.len());
            bytes.extend_from_slice(f);
        }
        // Corrupt strictly inside the payload (past the 8-byte header).
        let payload_len = frames[target].len() - 8;
        let hit = start_of[target] + 8 + ((payload_len as f64 * byte_frac) as usize).min(payload_len - 1);
        bytes[hit] ^= xor;

        let (recovered, stats) = recover_segment(&bytes);
        prop_assert_eq!(&recovered, &records[..target]);
        prop_assert_eq!(stats.recovered, target);
        prop_assert_eq!(stats.quarantined_records, records.len() - target);
        prop_assert_eq!(stats.quarantined_bytes, bytes.len() - start_of[target]);
    }
}

// ---------------------------------------------------------------------------
// Prometheus exposition conformance: every page the workspace produces —
// the service export (serve + scope + trace families) and the wire
// front-end's own metrics page — must satisfy the exposition grammar the
// scraper-facing validator enforces (HELP/TYPE before samples, no family
// interleaving or duplicates, histograms closed with +Inf/_sum/_count),
// for ANY workload shape: decision count, reward mix, injected door
// sheds, tick cadence, gate rounds, and scrape traffic are all drawn by
// proptest.
// ---------------------------------------------------------------------------

use std::sync::Arc;

use harvest::logs::segment::MemorySegments as PromSegments;
use harvest::obs::validate_exposition;
use harvest::serve::{DecisionService, ScopeConfig, ServeConfig, TrainerConfig};
use harvest::wire::{Duplex, OpsQuery, OpsResponse, WireConfig, WireCore};

proptest! {
    // Each case builds a live service (writer thread and all), so keep the
    // case count modest; the shapes explored per case are what matter.
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn every_exposition_the_workspace_produces_conforms(
        seed in any::<u64>(),
        decisions in 1usize..120,
        burst in 0u64..300,
        ticks in 1u64..5,
        train in any::<bool>(),
        scrapes in 0usize..4,
    ) {
        use rand::{Rng, SeedableRng};
        let store = PromSegments::new();
        let cfg = ServeConfig::builder()
            .shards(2)
            .epsilon(0.2)
            .master_seed(seed)
            .component("prom-conformance")
            .trainer(TrainerConfig::builder().lambda(1e-3).epsilon(0.2).build())
            .scope(
                ScopeConfig::builder()
                    .window_ns(10_000_000)
                    .windows(16)
                    .build(),
            )
            .build()
            .expect("valid config");
        let svc = DecisionService::new(cfg, store.clone());
        let mut traffic = rand::rngs::StdRng::seed_from_u64(seed);
        let mut now_ns = 0u64;
        for i in 0..decisions {
            now_ns += 1_000_000;
            let x: f64 = traffic.gen_range(0.0..1.0);
            let ctx = SimpleContext::new(vec![x], 2);
            let d = svc.decide(i % 2, now_ns, &ctx).expect("decide");
            svc.reward(d.request_id, now_ns + 500_000, if d.action == 0 { x } else { 1.0 - x });
        }
        svc.metrics_handle().record_admission_shed_n(burst);
        while svc.metrics().log_backlog > 0 {
            std::thread::yield_now();
        }
        if train {
            let (records, _) = store.recover();
            let _ = svc.train_and_maybe_promote(&records);
        }
        for t in 1..=ticks {
            svc.scope_tick(now_ns + t * 10_000_000);
        }

        // The wire front-end's own page, after a proptest-chosen amount of
        // scrape traffic has moved its ops ledger.
        let svc = Arc::new(svc);
        let core = Arc::new(WireCore::new(Arc::clone(&svc), WireConfig::default()));
        let duplex = Duplex::new(core.clone());
        let mut conn = duplex.connect();
        for _ in 0..scrapes {
            match conn.ops(&OpsQuery::Prometheus).expect("scrape") {
                OpsResponse::Report { .. } | OpsResponse::Shed { .. } => {}
            }
        }
        let wire_page = core.metrics().export_prometheus();
        prop_assert!(
            validate_exposition(&wire_page).is_ok(),
            "wire exposition violated: {:?}",
            validate_exposition(&wire_page)
        );

        // The service page — serve counters, stage/scope families, trace
        // health, quality gauges when a gate round ran — scraped remotely
        // must be the same conforming bytes.
        let remote = match conn.ops(&OpsQuery::Prometheus).expect("scrape") {
            OpsResponse::Report { body } => body,
            OpsResponse::Shed { reason } => panic!("scrape shed: {reason}"),
        };
        let local = svc.export_prometheus();
        prop_assert!(
            validate_exposition(&local).is_ok(),
            "service exposition violated: {:?}",
            validate_exposition(&local)
        );
        prop_assert_eq!(remote, local);

        drop(conn);
        drop(duplex);
        drop(core);
        let svc = Arc::try_unwrap(svc).ok().expect("wire handles released");
        svc.shutdown().expect("clean shutdown");
    }
}

//! Chaos acceptance tests for the hardened harvest loop (ISSUE tentpole).
//!
//! Under every injectable fault class — writer kills, torn writes, reward
//! drops and delays, poisoned shard locks, trainer crashes, at-rest damage —
//! the service must:
//!
//! 1. keep serving decisions whose logged propensities are valid;
//! 2. recover a byte-identical valid log prefix under the same seed;
//! 3. uphold the conservation ledger
//!    `enqueued == written + dropped + quarantined` (and its cross-crash
//!    form against recovered segments);
//! 4. demonstrably fall back to the safe default policy when degraded, and
//!    re-arm after sustained health.

use harvest::core::SimpleContext;
use harvest::logs::record::LogRecord;
use harvest::logs::segment::{MemorySegments, SegmentConfig};
use harvest::serve::{
    apply_at_rest_faults, Backpressure, BreakerConfig, ChaosHorizon, ChaosPlan, ChaosPlanConfig,
    DecisionService, JoinOutcome, LoggerConfig, MetricsSnapshot, ServeConfig, ServeError,
    SupervisorConfig, TrainerConfig,
};
use harvest::simnet::rng::fork_rng;
use rand::Rng;

const EPSILON: f64 = 0.2;
const ACTIONS: usize = 3;

fn service_config(seed: u64) -> ServeConfig {
    ServeConfig::builder()
        .shards(2)
        .epsilon(EPSILON)
        .master_seed(seed)
        .component("chaos-test")
        .logger(
            LoggerConfig::builder()
                .capacity(256)
                .backpressure(Backpressure::Block)
                .segment(SegmentConfig {
                    max_records: 64,
                    max_bytes: 64 * 1024,
                    max_span_ns: u64::MAX,
                })
                .build(),
        )
        .supervisor(
            SupervisorConfig::builder()
                .max_restarts(8)
                .backoff_base_ms(1)
                .backoff_cap_ms(4)
                .build(),
        )
        .trainer(
            TrainerConfig::builder()
                .lambda(1e-3)
                .epsilon(EPSILON)
                .build(),
        )
        .build()
        .expect("valid test config")
}

/// Drives `n` decisions (with rewards) through a service under `plan`,
/// asserting on every single decision that serving never stops and the
/// logged propensity is valid. Returns the store and the final, fully
/// drained metrics snapshot.
fn drive(
    seed: u64,
    n: usize,
    plan: ChaosPlan,
    train_rounds: usize,
) -> (MemorySegments, MetricsSnapshot) {
    let store = MemorySegments::new();
    let svc = DecisionService::with_chaos(service_config(seed), store.clone(), plan);
    let mut traffic = fork_rng(seed, "chaos-traffic");
    let mut now_ns = 0u64;
    for i in 0..n {
        now_ns += 1_000_000;
        let x: f64 = traffic.gen_range(0.0..1.0);
        let ctx = SimpleContext::new(vec![x], ACTIONS);
        let d = svc
            .decide(i % svc.num_shards(), now_ns, &ctx)
            .expect("service must keep serving under chaos");
        assert!(
            d.propensity.is_finite() && d.propensity > 0.0 && d.propensity <= 1.0,
            "invalid propensity {} at decision {i}",
            d.propensity
        );
        let reward = if d.action == 0 { x } else { 1.0 - x };
        let outcome = svc.reward(d.request_id, now_ns + 500_000, reward);
        assert!(
            matches!(
                outcome,
                JoinOutcome::Joined | JoinOutcome::Lost | JoinOutcome::Expired
            ),
            "unexpected join outcome {outcome:?} at decision {i}"
        );
    }
    // Phase barrier: drain the pipeline, then train on the recovered log.
    while svc.metrics().log_backlog > 0 {
        std::thread::yield_now();
    }
    for _ in 0..train_rounds {
        let (records, _) = store.recover();
        match svc.train_and_maybe_promote(&records) {
            Ok(_) | Err(ServeError::TrainerCrashed { .. }) => {}
            Err(other) => panic!("unexpected training error: {other:?}"),
        }
        // Serving continues after a training round, crashed or not.
        let d = svc
            .decide(
                0,
                now_ns + 1_000_000,
                &SimpleContext::new(vec![0.5], ACTIONS),
            )
            .unwrap();
        assert!(d.propensity > 0.0 && d.propensity <= 1.0);
    }
    while svc.metrics().log_backlog > 0 {
        std::thread::yield_now();
    }
    let snap = svc.metrics();
    svc.shutdown().unwrap();
    (store, snap)
}

/// The conservation ledger, in both its runtime and cross-crash forms.
fn assert_conservation(store: &MemorySegments, snap: &MetricsSnapshot) {
    assert_eq!(
        snap.log_enqueued,
        snap.log_written + snap.log_dropped + snap.log_quarantined,
        "runtime ledger violated: {snap:?}"
    );
    let (_, stats) = store.recover();
    // Every persisted frame is a written record or a torn partial the
    // runtime already counted quarantined; recovery re-derives the same
    // split from bytes alone.
    assert_eq!(
        (stats.recovered + stats.quarantined_records) as u64,
        snap.log_written + snap.log_quarantined,
        "recovery disagrees with the runtime ledger: {stats:?} vs {snap:?}"
    );
    assert_eq!(stats.recovered as u64, snap.log_written);
    assert_eq!(stats.quarantined_records as u64, snap.log_quarantined);
}

/// All recovered decision records carry valid explicit propensities.
fn assert_valid_propensities(store: &MemorySegments) {
    let (records, _) = store.recover();
    let mut decisions = 0;
    for r in &records {
        if let LogRecord::Decision(d) = r {
            decisions += 1;
            let p = d.propensity.expect("decision logged without propensity");
            assert!(p.is_finite() && p > 0.0 && p <= 1.0, "bad propensity {p}");
        }
    }
    assert!(decisions > 0, "no decision records recovered");
}

#[test]
fn each_fault_class_alone_keeps_the_service_serving() {
    let cases: Vec<(&str, ChaosPlan)> = vec![
        ("writer-kill", ChaosPlan::none().kill_writer_at(5)),
        ("torn-write", ChaosPlan::none().tear_writer_at(7, 0.5)),
        ("reward-drop", ChaosPlan::none().drop_reward_at(3)),
        (
            "reward-delay",
            ChaosPlan::none().delay_reward_at(3, 60_000_000_000),
        ),
        ("poisoned-shard", ChaosPlan::none().poison_shard_at(4)),
        ("trainer-crash", ChaosPlan::none().crash_trainer_at(0)),
    ];
    for (name, plan) in cases {
        let (store, snap) = drive(101, 150, plan, 1);
        assert_conservation(&store, &snap);
        assert_valid_propensities(&store);
        assert_eq!(snap.log_backlog, 0, "{name}: pipeline not drained");
    }
}

#[test]
fn a_generated_chaos_schedule_conserves_every_record() {
    for seed in [7u64, 19, 40] {
        let horizon = ChaosHorizon {
            writer_records: 700,
            rewards: 400,
            decisions: 400,
            rounds: 2,
            checkpoints: 0,
        };
        let mut rng = fork_rng(seed, "chaos-plan");
        let plan = ChaosPlan::generate(&ChaosPlanConfig::default(), &horizon, &mut rng);
        assert!(!plan.is_empty());
        let at_rest = plan.clone();
        let (store, snap) = drive(seed, 400, plan, 2);
        assert_conservation(&store, &snap);
        assert_valid_propensities(&store);

        // At-rest damage after shutdown: recovery still balances — frames
        // move from recovered to quarantined, none vanish.
        let before = store.recover().1;
        apply_at_rest_faults(&at_rest, &store);
        let after = store.recover().1;
        assert_eq!(
            before.recovered + before.quarantined_records,
            after.recovered + after.quarantined_records,
            "seed {seed}: at-rest damage made frames vanish"
        );
        assert!(after.recovered <= before.recovered);
    }
}

/// Same seed, same generated fault schedule, no training (the incumbent
/// stays uniform, so racy breaker timing cannot alter sampled actions):
/// the persisted segments — crash-sealed boundaries, torn partial frames
/// and all — are byte-identical, and recovery replays the identical valid
/// prefix. A different seed produces a different log.
#[test]
fn same_seed_chaos_runs_recover_byte_identical_prefixes() {
    let run = |seed: u64| {
        let horizon = ChaosHorizon {
            writer_records: 500,
            rewards: 300,
            decisions: 300,
            rounds: 1,
            checkpoints: 0,
        };
        let mut rng = fork_rng(seed, "chaos-plan");
        let plan = ChaosPlan::generate(&ChaosPlanConfig::default(), &horizon, &mut rng);
        let (store, snap) = drive(seed, 300, plan.clone(), 0);
        apply_at_rest_faults(&plan, &store);
        (store, snap)
    };
    let (a, snap_a) = run(23);
    let (b, snap_b) = run(23);
    assert_eq!(
        a.snapshot(),
        b.snapshot(),
        "same-seed chaos runs left different bytes"
    );
    let (recs_a, stats_a) = a.recover();
    let (recs_b, stats_b) = b.recover();
    assert_eq!(recs_a, recs_b);
    assert_eq!(stats_a, stats_b);
    assert_eq!(snap_a.log_written, snap_b.log_written);
    assert_eq!(snap_a.log_quarantined, snap_b.log_quarantined);
    // And the log genuinely depends on the seed.
    let (c, _) = run(24);
    assert_ne!(a.snapshot(), c.snapshot());
}

/// The breaker's full arc: a healthy service promotes a learned incumbent;
/// a trainer crash trips the breaker; degraded decisions are served by the
/// uniform safe arm (exact propensity 1/K) while still being logged; and
/// sustained health re-arms the breaker, returning decisions to the
/// incumbent's greedy mix.
#[test]
fn breaker_falls_back_to_the_safe_arm_and_rearms() {
    let mut cfg = service_config(77);
    cfg.breaker = BreakerConfig::builder()
        .rearm_healthy(16)
        .build()
        .expect("valid breaker config");
    let store = MemorySegments::new();
    // Round 0 trains and promotes normally; round 1 crashes mid-fit.
    let svc =
        DecisionService::with_chaos(cfg, store.clone(), ChaosPlan::none().crash_trainer_at(1));
    let mut traffic = fork_rng(77, "chaos-traffic");
    let mut now_ns = 0u64;
    // Warmup wave under the uniform bootstrap, rewards crossing in x.
    for i in 0..3000u64 {
        now_ns += 1_000_000;
        let x: f64 = traffic.gen_range(0.0..1.0);
        let ctx = SimpleContext::new(vec![x], 2);
        let d = svc.decide((i % 2) as usize, now_ns, &ctx).unwrap();
        let r = if d.action == 0 { x } else { 1.0 - x };
        svc.reward(d.request_id, now_ns + 500_000, r);
    }
    while svc.metrics().log_backlog > 0 {
        std::thread::yield_now();
    }
    let (records, _) = store.recover();
    let report = svc.train_and_maybe_promote(&records).unwrap();
    assert!(
        report.gate.promoted,
        "warmup round must promote: {report:?}"
    );

    // The promoted incumbent serves a greedy ε-mix: propensities are
    // either 1 − ε + ε/K or ε/K, never the uniform 1/K.
    let probe = SimpleContext::new(vec![0.9], 2);
    let d = svc.decide(0, now_ns + 1_000_000, &probe).unwrap();
    assert!(!d.degraded);
    assert!(
        (d.propensity - 0.5).abs() > 1e-9,
        "incumbent is not uniform"
    );

    // Round 1: the injected trainer crash trips the breaker.
    let err = svc.train_and_maybe_promote(&records).unwrap_err();
    assert!(matches!(err, ServeError::TrainerCrashed { round: 1 }));
    assert!(svc.breaker_open());

    // Open breaker: decisions fall back to the uniform safe arm with the
    // exact 1/K propensity, stamped degraded, and still logged.
    let logged_before = svc.metrics().log_enqueued;
    let d = svc.decide(0, now_ns + 2_000_000, &probe).unwrap();
    assert!(d.degraded, "open breaker must serve the safe arm");
    assert!((d.propensity - 0.5).abs() < 1e-12);
    assert_eq!(
        d.generation, 1,
        "degraded decisions still stamp the serving generation"
    );
    assert!(
        svc.metrics().log_enqueued > logged_before,
        "degraded decisions are still logged"
    );

    // Sustained health (writer alive, fault signal flat) re-arms after
    // `rearm_healthy` consecutive decisions; serving returns to the
    // incumbent.
    let mut rearmed_at = None;
    for i in 0..64u64 {
        let d = svc.decide(0, now_ns + 3_000_000 + i, &probe).unwrap();
        if !d.degraded {
            rearmed_at = Some(i);
            break;
        }
    }
    let rearmed_at = rearmed_at.expect("breaker never re-armed under sustained health");
    assert!(
        rearmed_at >= 10,
        "re-arm must require sustained health, not one good request"
    );
    assert!(!svc.breaker_open());
    let snap = svc.metrics();
    assert_eq!(snap.breaker_trips, 1);
    assert_eq!(snap.breaker_rearms, 1);
    assert_eq!(snap.trainer_crashes, 1);
    assert!(snap.degraded_decisions >= rearmed_at);
    // Back on the incumbent's greedy mix.
    let d = svc.decide(0, now_ns + 4_000_000, &probe).unwrap();
    assert!(!d.degraded);
    assert!((d.propensity - 0.5).abs() > 1e-9);

    while svc.metrics().log_backlog > 0 {
        std::thread::yield_now();
    }
    let snap = svc.metrics();
    svc.shutdown().unwrap();
    assert_conservation(&store, &snap);
}

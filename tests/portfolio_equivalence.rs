//! Property tests for the portfolio evaluator's headline invariant: the
//! parallel scavenge+merge over segment logs is **bit-for-bit identical**
//! to the sequential pass — for any workload shape, any segment size, any
//! worker count, and with at-rest log damage quarantining arbitrary
//! suffixes.
//!
//! Floating-point addition is not associative, so this only holds because
//! the evaluator fixes the partition (one partial per segment) and the
//! merge order (segment index), leaving the thread schedule nothing to
//! influence. These tests are the fence around that design.

use proptest::prelude::*;

use harvest::core::scorer::LinearScorer;
use harvest::estimators::{Candidate, EvaluatorConfig, GreedyScorerCandidate, PortfolioEvaluator};
use harvest::logs::record::{DecisionRecord, LogRecord, OutcomeRecord};
use harvest::logs::segment::{MemorySegments, SegmentConfig, SegmentedLogWriter};
use harvest::serve::{apply_at_rest_faults, AtRestFault, ChaosPlan};

/// A deterministic ε-greedy workload: x sweeps a low-discrepancy sequence,
/// rewards cross at x = 0.5, and odd requests resolve through outcome
/// records that trail their decisions (often into the next segment).
fn build_segments(n: usize, max_records: usize, outcome_burst: usize) -> Vec<Vec<u8>> {
    let mut w = SegmentedLogWriter::new(
        MemorySegments::new(),
        SegmentConfig {
            max_records,
            max_bytes: usize::MAX,
            max_span_ns: u64::MAX,
        },
    );
    let mut pending: Vec<(u64, f64)> = Vec::new();
    for i in 0..n as u64 {
        let x = ((i as f64) * 0.618_033_988_749_895).fract();
        let action = (i % 3 == 0) as usize;
        let propensity = if action == 0 { 0.7 } else { 0.3 };
        let reward = if action == 0 { x } else { 1.0 - x };
        let deferred = i % 2 == 1;
        w.write(&LogRecord::Decision(DecisionRecord {
            request_id: i,
            timestamp_ns: i * 1_000,
            component: "portfolio-prop".to_string(),
            shared_features: vec![x],
            action_features: None,
            num_actions: 2,
            action,
            propensity: Some(propensity),
            reward: (!deferred).then_some(reward),
        }))
        .unwrap();
        if deferred {
            pending.push((i, reward));
        }
        if pending.len() >= outcome_burst {
            for (rid, r) in pending.drain(..) {
                w.write(&LogRecord::Outcome(OutcomeRecord {
                    request_id: rid,
                    timestamp_ns: rid * 1_000 + 500,
                    reward: r,
                }))
                .unwrap();
            }
        }
    }
    for (rid, r) in pending.drain(..) {
        w.write(&LogRecord::Outcome(OutcomeRecord {
            request_id: rid,
            timestamp_ns: rid * 1_000 + 500,
            reward: r,
        }))
        .unwrap();
    }
    w.into_sink().unwrap().snapshot()
}

/// A k-candidate portfolio of distinct threshold policies.
fn evaluator(k: usize, parallelism: usize) -> PortfolioEvaluator {
    PortfolioEvaluator::builder()
        .config(
            EvaluatorConfig::builder()
                .clip(10.0)
                .delta(0.05)
                .parallelism(parallelism)
                .build(),
        )
        .candidates((0..k).map(|j| {
            let theta = 0.1 + 0.8 * (j as f64 + 0.5) / k as f64;
            Candidate::new(
                format!("cand-{j:02}"),
                GreedyScorerCandidate::new(
                    LinearScorer::PerAction {
                        weights: vec![vec![1.0, 0.0], vec![-1.0, 2.0 * theta]],
                    },
                    0.1,
                ),
            )
        }))
        .model(LinearScorer::PerAction {
            weights: vec![vec![1.0, 0.0], vec![-1.0, 1.0]],
        })
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Clean logs: any (workload, segmentation, k, worker count) pair of
    // passes produces the same bytes.
    #[test]
    fn parallel_equals_sequential_on_clean_logs(
        n in 40usize..400,
        max_records in 8usize..96,
        outcome_burst in 1usize..64,
        k in 1usize..14,
        workers in 2usize..9,
    ) {
        let segments = build_segments(n, max_records, outcome_burst);
        let (seq, seq_rec) = evaluator(k, 1).evaluate_segments(&segments);
        let (par, par_rec) = evaluator(k, workers).evaluate_segments(&segments);
        prop_assert_eq!(&seq_rec, &par_rec);
        prop_assert_eq!(&seq, &par);
        // Bit-for-bit, through the serialized form CI and dashboards see.
        prop_assert_eq!(seq.to_json(), par.to_json());
        prop_assert_eq!(seq.n, n);
        prop_assert_eq!(seq.entries.len(), k);
    }

    // Damaged logs: at-rest corruption quarantines arbitrary suffixes;
    // the quarantine decisions and the surviving scores must still be
    // schedule-independent.
    #[test]
    fn parallel_equals_sequential_under_at_rest_chaos(
        n in 120usize..400,
        max_records in 8usize..48,
        segment_frac in 0.0f64..1.0,
        frame_frac in 0.0f64..1.0,
        tear_frac in 0.0f64..1.0,
        keep_frac in 0.1f64..0.9,
        xor in 1u8..255,
        workers in 2usize..9,
    ) {
        let store = MemorySegments::new();
        store.replace_all(build_segments(n, max_records, 32));
        let plan = ChaosPlan::none()
            .damage_at_rest(AtRestFault::CorruptPayload {
                segment_frac,
                frame_frac,
                xor,
            })
            .damage_at_rest(AtRestFault::TearTail {
                segment_frac: tear_frac,
                keep_frac,
            });
        prop_assert!(apply_at_rest_faults(&plan, &store) > 0);
        let damaged = store.snapshot();

        let (seq, seq_rec) = evaluator(6, 1).evaluate_segments(&damaged);
        let (par, par_rec) = evaluator(6, workers).evaluate_segments(&damaged);
        prop_assert_eq!(&seq_rec, &par_rec);
        prop_assert_eq!(&seq, &par);
        prop_assert_eq!(seq.to_json(), par.to_json());
        // The ledger accounts for the damage instead of hiding it.
        prop_assert!(seq_rec.quarantined_records > 0);
        prop_assert_eq!(seq.quarantined, seq_rec.quarantined_records);
        prop_assert!(seq.n <= n);
    }

    // The exported leaderboard JSON is a pure function of the log bytes:
    // rebuilding the same workload reproduces it exactly.
    #[test]
    fn leaderboard_json_is_deterministic(
        n in 40usize..250,
        max_records in 8usize..64,
        k in 1usize..10,
    ) {
        let a = evaluator(k, 4)
            .evaluate_segments(&build_segments(n, max_records, 16))
            .0
            .to_json();
        let b = evaluator(k, 4)
            .evaluate_segments(&build_segments(n, max_records, 16))
            .0
            .to_json();
        prop_assert_eq!(a, b);
    }
}

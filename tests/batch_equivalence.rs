//! Batch/single equivalence: `decide_batch` is *semantically* the same as
//! calling `decide` once per context, and these tests hold it to the
//! strongest version of that claim — a same-seed batched run and
//! single-call run must produce
//!
//! 1. a byte-identical recovered decision log (segment recovery flattens
//!    batch frames back into individual decision records), and
//! 2. an identical `ServeMetrics` conservation ledger,
//!
//! both on a clean run and under an injected `ChaosPlan` (writer kills,
//! reward drops/delays, shard poisoning). Chaos constraints the batch API
//! documents are respected here: at most one poison per batch id-range
//! (several collapse into one lock recovery), no torn writes (a torn batch
//! frame's at-rest quarantine accounting legitimately differs from the
//! single-call run's — DESIGN.md §10), and breaker thresholds high enough
//! that window-boundary skew mid-batch cannot change which policy serves.

use harvest::core::{Context, SimpleContext};
use harvest::logs::segment::{MemorySegments, SegmentConfig};
use harvest::serve::{
    Backpressure, BreakerConfig, ChaosPlan, DecisionBatch, DecisionService, GateConfig,
    LoggerConfig, ServeConfig, SupervisorConfig, TrainerConfig,
};
use harvest::simnet::rng::fork_rng;
use rand::Rng;

const EPSILON: f64 = 0.2;
const ACTIONS: usize = 3;
const SHARDS: usize = 2;
const BATCH: usize = 16;
const STEPS: usize = 64; // 64 batches of 16 = 1024 decisions

fn config(seed: u64) -> ServeConfig {
    ServeConfig::builder()
        .shards(SHARDS)
        .epsilon(EPSILON)
        .master_seed(seed)
        .component("batch-eq-test")
        .logger(
            LoggerConfig::builder()
                .capacity(256)
                .backpressure(Backpressure::Block)
                .segment(SegmentConfig {
                    max_records: 96,
                    max_bytes: 64 * 1024,
                    max_span_ns: u64::MAX,
                })
                .build(),
        )
        .supervisor(
            SupervisorConfig::builder()
                .max_restarts(64)
                .backoff_base_ms(1)
                .backoff_cap_ms(2)
                .build(),
        )
        // Thresholds far past anything this workload can reach: the breaker
        // never trips, so mid-batch window-boundary skew (the one documented
        // divergence between the batched and single-call breaker walk)
        // cannot change which policy serves a slot.
        .breaker(
            BreakerConfig::builder()
                .window(1 << 30)
                .trip_faults(1 << 30)
                .rearm_healthy(1)
                .build()
                .expect("valid breaker config"),
        )
        .trainer(
            TrainerConfig::builder()
                .lambda(1e-3)
                .epsilon(EPSILON)
                // Single-candidate gate: the k=16 simultaneous CI would
                // (correctly) refuse to promote on this small a midpoint
                // harvest, and the second half needs the swapped policy.
                .gate(GateConfig::builder().portfolio(1).min_samples(200).build())
                .build(),
        )
        .build()
        .expect("valid test config")
}

/// The chaos schedule both runs share: two writer kills, reward drops and a
/// delay, and two shard poisonings in *distinct* batch id-ranges (40 falls
/// in batch 2, 400 in batch 25) so both runs pay exactly one lock recovery
/// per poison. Deliberately no tears and no at-rest damage.
fn chaos_plan() -> ChaosPlan {
    ChaosPlan::builder()
        .kill_writer_at(100)
        .kill_writer_at(700)
        .drop_reward_at(50)
        .drop_reward_at(333)
        .delay_reward_at(200, 250_000)
        .poison_shard_at(40)
        .poison_shard_at(400)
        .build()
}

struct RunResult {
    /// Every recovered record, individually serialized.
    recovered: Vec<String>,
    quarantined_records: usize,
    /// The full metrics snapshot, serialized.
    metrics: String,
}

/// Drives the seeded workload — one batch of contexts per logical
/// millisecond, rewards after the batch, one training round midway — either
/// through `decide_batch` or through the equivalent `decide` loop. The
/// single-call twin stamps every decision in a group with the *same*
/// `now_ns` and rewards after the group, exactly as the batch path does, so
/// any byte that differs downstream is a batching bug, not a workload
/// artifact.
fn run(seed: u64, batched: bool, chaos: Option<ChaosPlan>) -> RunResult {
    let store = MemorySegments::new();
    let svc = match chaos {
        Some(plan) => DecisionService::with_chaos(config(seed), store.clone(), plan),
        None => DecisionService::new(config(seed), store.clone()),
    };
    let mut traffic = fork_rng(seed, "batch-eq-traffic");
    let mut now_ns = 0u64;
    let mut out = DecisionBatch::with_capacity(BATCH);
    for step in 0..STEPS {
        if step == STEPS / 2 {
            while svc.metrics().log_backlog > 0 {
                std::thread::yield_now();
            }
            let (records, _) = store.recover();
            let report = svc
                .train_and_maybe_promote(&records)
                .expect("no trainer chaos scheduled");
            assert!(
                report.gate.promoted,
                "seed {seed}: midpoint round must promote for the second half \
                 to exercise the swapped policy (gate: {:?})",
                report.gate
            );
        }
        now_ns += 1_000_000;
        let shard = step % SHARDS;
        let contexts: Vec<SimpleContext> = (0..BATCH)
            .map(|_| {
                let x: f64 = traffic.gen_range(0.0..1.0);
                SimpleContext::new(vec![x], ACTIONS)
            })
            .collect();
        let decisions: Vec<_> = if batched {
            svc.decide_batch(shard, now_ns, &contexts, &mut out)
                .expect("batch must serve");
            out.decisions().to_vec()
        } else {
            contexts
                .iter()
                .map(|ctx| svc.decide(shard, now_ns, ctx).expect("single must serve"))
                .collect()
        };
        for (d, ctx) in decisions.iter().zip(&contexts) {
            let x = ctx.shared_features()[0];
            let reward = if d.action == 0 { x } else { 1.0 - x };
            svc.reward(d.request_id, now_ns + 500_000, reward);
        }
    }
    while svc.metrics().log_backlog > 0 {
        std::thread::yield_now();
    }
    let metrics = serde_json::to_string(&svc.metrics()).expect("snapshot serializes");
    svc.shutdown().expect("clean shutdown");
    let (records, stats) = store.recover();
    RunResult {
        recovered: records
            .iter()
            .map(|r| serde_json::to_string(r).expect("record serializes"))
            .collect(),
        quarantined_records: stats.quarantined_records,
        metrics,
    }
}

/// Clean-run equivalence: recovery flattens the batched run's frames into
/// the exact record stream the single-call run persisted, and every counter
/// in the conservation ledger agrees.
#[test]
fn batched_run_recovers_byte_identical_log_and_ledger() {
    let batched = run(17, true, None);
    let single = run(17, false, None);
    assert_eq!(batched.recovered.len(), single.recovered.len());
    assert!(!batched.recovered.is_empty());
    assert_eq!(
        batched.recovered, single.recovered,
        "batched and single-call recovered logs differ"
    );
    assert_eq!(batched.quarantined_records, 0);
    assert_eq!(single.quarantined_records, 0);
    assert_eq!(
        batched.metrics, single.metrics,
        "batched and single-call metrics ledgers differ"
    );
    // And the log genuinely depends on the seed.
    let other = run(18, true, None);
    assert_ne!(batched.recovered, other.recovered);
}

/// The same equivalence under injected chaos: writer kills (survived via
/// supervisor restarts), reward drops and delays, and shard poisonings all
/// land at the same logical indices in both runs, so the recovered log and
/// the full ledger — including `writer_restarts`, `rewards_lost`, and
/// `lock_recoveries` — still agree byte for byte.
#[test]
fn batched_run_stays_equivalent_under_chaos() {
    let batched = run(29, true, Some(chaos_plan()));
    let single = run(29, false, Some(chaos_plan()));
    assert_eq!(
        batched.recovered, single.recovered,
        "chaos: batched and single-call recovered logs differ"
    );
    assert_eq!(batched.quarantined_records, single.quarantined_records);
    assert_eq!(
        batched.metrics, single.metrics,
        "chaos: batched and single-call metrics ledgers differ"
    );
}

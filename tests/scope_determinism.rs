//! Determinism acceptance for the windowed ops plane (ISSUE 9 tentpole).
//!
//! The scope is ticked at logical window boundaries after the pipeline
//! drains, so everything it exports — the window series, alert states,
//! alert event log, Prometheus page, and the wire OPS scrape bodies — is
//! a pure function of the seed. These tests hold that bar:
//!
//! 1. same-seed clean runs export byte-identical ops planes, and the
//!    bytes a remote scraper receives over the OPS endpoint are those
//!    same bytes;
//! 2. same-seed runs under an identical generated [`ChaosPlan`] (writer
//!    kills, torn writes, reward faults, poisoned shards) still export
//!    byte-identical ops planes — chaos shifts records between
//!    written/dropped/quarantined, but deterministically;
//! 3. the SLO watchdog's fire → hold → clear lifecycle is reproducible
//!    across a warm restart: a run killed and resumed mid-stream raises
//!    the same alert events, at the same windows with the same values,
//!    as the uninterrupted run.

use std::sync::Arc;

use harvest::core::SimpleContext;
use harvest::logs::checkpoint::{CheckpointWriter, MemoryCheckpoints};
use harvest::logs::segment::{MemorySegments, SegmentConfig};
use harvest::obs::{validate_exposition, AlertEvent, AlertPhase};
use harvest::serve::{
    Backpressure, ChaosHorizon, ChaosPlan, ChaosPlanConfig, DecisionService, GateConfig,
    LoggerConfig, ScopeConfig, ServeConfig, TrainerConfig,
};
use harvest::simnet::rng::fork_rng;
use harvest::wire::{Duplex, OpsQuery, OpsResponse, WireConfig, WireCore};
use rand::Rng;

const EPSILON: f64 = 0.2;
const ACTIONS: usize = 2;
const WINDOW_NS: u64 = 100_000_000;
const WINDOWS: u64 = 14;
const PER_WINDOW: u64 = 40;
/// The injected overload burst occupies windows 5..=8; with 200 door
/// sheds against 40 served decisions the per-window burn is 200 / 240.
const BURST_FIRST: u64 = 5;
const BURST_LAST: u64 = 8;
const BURST_SHEDS: u64 = 200;
/// With fire/clear hysteresis of 2, the lifecycle is pinned to these
/// windows (see `examples/harvest_scope.rs` for the arithmetic).
const FIRED_AT: u64 = BURST_FIRST + 1;
const CLEARED_AT: u64 = BURST_LAST + 2;
const TRAIN_WINDOW: u64 = 3;

fn config(seed: u64) -> ServeConfig {
    ServeConfig::builder()
        .shards(2)
        .epsilon(EPSILON)
        .master_seed(seed)
        .component("scope-determinism")
        .logger(
            LoggerConfig::builder()
                .capacity(512)
                .backpressure(Backpressure::Block)
                .segment(SegmentConfig {
                    max_records: 128,
                    max_bytes: 64 * 1024,
                    max_span_ns: u64::MAX,
                })
                .build(),
        )
        .trainer(
            TrainerConfig::builder()
                .lambda(1e-3)
                .epsilon(EPSILON)
                // Single-candidate gate: the seeded gate round must promote
                // (the swap is what makes different seeds' series differ),
                // and the k=16 simultaneous CI would (correctly) refuse on
                // this small a harvest.
                .gate(GateConfig::builder().portfolio(1).build())
                .build(),
        )
        .scope(
            ScopeConfig::builder()
                .window_ns(WINDOW_NS)
                .windows(64)
                .slo_threshold(0.3)
                .slo_hysteresis(2, 2)
                .quality_threshold(0.05)
                .quality_hysteresis(2, 2)
                .build(),
        )
        .build()
        .expect("valid test config")
}

fn drain(svc: &DecisionService<MemorySegments>) {
    while svc.metrics().log_backlog > 0 {
        std::thread::yield_now();
    }
}

/// One window of seeded traffic. Contexts come from a per-window forked
/// stream so a restarted driver can resume mid-sequence without replaying
/// its own RNG.
fn run_window(svc: &DecisionService<MemorySegments>, seed: u64, w: u64) {
    let mut traffic = fork_rng(seed, &format!("scope-det-window-{w}"));
    let step = WINDOW_NS / (PER_WINDOW + 1);
    let window_start = (w - 1) * WINDOW_NS;
    for i in 0..PER_WINDOW {
        let now_ns = window_start + (i + 1) * step;
        let x: f64 = traffic.gen_range(0.0..1.0);
        let ctx = SimpleContext::new(vec![x], ACTIONS);
        let d = svc
            .decide((i % 2) as usize, now_ns, &ctx)
            .expect("service must serve");
        let reward = if d.action == 0 { x } else { 1.0 - x };
        svc.reward(d.request_id, now_ns + step / 2, reward);
    }
}

/// Everything the ops plane can say, plus the bytes a remote scraper
/// sees for each OPS query kind.
struct OpsExports {
    series: String,
    alerts: String,
    events_jsonl: String,
    prometheus: String,
    scrapes: Vec<(&'static str, String)>,
    events: Vec<AlertEvent>,
}

/// Scrapes every OPS query kind through the in-memory duplex transport —
/// the same `WireCore::ops` path the TCP front-end serves — and hands the
/// service back for shutdown.
fn scrape_all(
    svc: DecisionService<MemorySegments>,
) -> (Vec<(&'static str, String)>, DecisionService<MemorySegments>) {
    let svc = Arc::new(svc);
    let core = Arc::new(WireCore::new(Arc::clone(&svc), WireConfig::default()));
    let duplex = Duplex::new(core);
    let mut conn = duplex.connect();
    let mut out = Vec::new();
    // Fixed scrape order: the wire_prometheus body includes the ops
    // ledger itself, so it is deterministic only because every run
    // scrapes in this exact sequence.
    for (name, q) in [
        ("prometheus", OpsQuery::Prometheus),
        ("snapshot", OpsQuery::Snapshot),
        ("series", OpsQuery::Series),
        ("alerts", OpsQuery::Alerts),
        ("alert_events", OpsQuery::AlertEvents),
        ("wire_prometheus", OpsQuery::WirePrometheus),
    ] {
        match conn.ops(&q).expect("scrape") {
            OpsResponse::Report { body } => out.push((name, body)),
            OpsResponse::Shed { reason } => panic!("{name} scrape shed: {reason}"),
        }
    }
    drop(conn);
    drop(duplex);
    let svc = Arc::try_unwrap(svc)
        .ok()
        .expect("all wire handles released");
    (out, svc)
}

/// Drives the windowed workload (optionally under chaos, optionally with
/// the overload burst and a mid-run gate round) and returns every export.
fn drive(seed: u64, plan: Option<ChaosPlan>, burst: bool, train: bool) -> OpsExports {
    let store = MemorySegments::new();
    let svc = match plan {
        Some(p) => DecisionService::with_chaos(config(seed), store.clone(), p),
        None => DecisionService::new(config(seed), store.clone()),
    };
    let metrics = svc.metrics_handle();
    let mut events = Vec::new();
    for w in 1..=WINDOWS {
        run_window(&svc, seed, w);
        if burst && (BURST_FIRST..=BURST_LAST).contains(&w) {
            metrics.record_admission_shed_n(BURST_SHEDS);
        }
        if train && w == TRAIN_WINDOW {
            drain(&svc);
            let (records, _) = store.recover();
            svc.train_and_maybe_promote(&records).expect("train");
        }
        drain(&svc);
        events.extend(svc.scope_tick(w * WINDOW_NS));
    }
    drain(&svc);
    let series = svc.export_series_json().expect("scope enabled");
    let alerts = svc.export_alerts_json().expect("scope enabled");
    let events_jsonl = svc.export_alert_events_jsonl().expect("scope enabled");
    let prometheus = svc.export_prometheus();
    let (scrapes, svc) = scrape_all(svc);
    svc.shutdown().expect("clean shutdown");
    OpsExports {
        series,
        alerts,
        events_jsonl,
        prometheus,
        scrapes,
        events,
    }
}

fn assert_identical(a: &OpsExports, b: &OpsExports, label: &str) {
    assert_eq!(a.series, b.series, "{label}: window series");
    assert_eq!(a.alerts, b.alerts, "{label}: alert states");
    assert_eq!(a.events_jsonl, b.events_jsonl, "{label}: alert event log");
    assert_eq!(a.prometheus, b.prometheus, "{label}: prometheus page");
    assert_eq!(a.scrapes.len(), b.scrapes.len(), "{label}: scrape count");
    for ((name_a, body_a), (name_b, body_b)) in a.scrapes.iter().zip(&b.scrapes) {
        assert_eq!(name_a, name_b);
        assert_eq!(body_a, body_b, "{label}: OPS {name_a} scrape body");
    }
}

#[test]
fn same_seed_runs_export_byte_identical_ops_planes() {
    for seed in [11u64, 42] {
        let a = drive(seed, None, true, true);
        let b = drive(seed, None, true, true);
        assert_identical(&a, &b, &format!("seed {seed}, clean"));

        // The remote scrape serves exactly the in-process bytes.
        validate_exposition(&a.prometheus).expect("exposition conformance");
        assert_eq!(a.scrapes[0].1, a.prometheus, "OPS scrape == local export");
        assert_eq!(a.scrapes[2].1, a.series, "OPS series == local export");
        assert_eq!(a.scrapes[3].1, a.alerts, "OPS alerts == local export");
        assert_eq!(a.scrapes[4].1, a.events_jsonl, "OPS events == local export");

        // The injected burst drives the pinned SLO lifecycle.
        let slo: Vec<&AlertEvent> = a
            .events
            .iter()
            .filter(|e| e.alert == "slo_burn_rate")
            .collect();
        assert_eq!(
            slo.len(),
            2,
            "seed {seed}: lifecycle events: {:?}",
            a.events
        );
        assert_eq!((slo[0].phase, slo[0].window), (AlertPhase::Fired, FIRED_AT));
        assert_eq!(
            (slo[1].phase, slo[1].window),
            (AlertPhase::Cleared, CLEARED_AT)
        );
    }
    // And the plane genuinely depends on the seed.
    let a = drive(11, None, true, true);
    let c = drive(12, None, true, true);
    assert_ne!(a.series, c.series, "different seeds must differ");
}

#[test]
fn same_seed_chaos_runs_export_byte_identical_ops_planes() {
    // No training: the incumbent stays uniform, so racy breaker timing
    // cannot alter sampled actions (same caveat as the chaos recovery
    // suite). The plan itself is a deterministic function of the seed.
    for seed in [23u64, 40] {
        let run = |seed: u64| {
            let horizon = ChaosHorizon {
                writer_records: WINDOWS * PER_WINDOW * 2,
                rewards: WINDOWS * PER_WINDOW,
                decisions: WINDOWS * PER_WINDOW,
                rounds: 0,
                checkpoints: 0,
            };
            let mut rng = fork_rng(seed, "scope-chaos-plan");
            let plan = ChaosPlan::generate(&ChaosPlanConfig::default(), &horizon, &mut rng);
            assert!(!plan.is_empty());
            drive(seed, Some(plan), true, false)
        };
        let a = run(seed);
        let b = run(seed);
        assert_identical(&a, &b, &format!("seed {seed}, chaos"));
        validate_exposition(&a.prometheus).expect("exposition conformance under chaos");
    }
}

/// The lifecycle driver with a kill/resume point: checkpoints each
/// window, dies after `kill_at`'s tick, resumes from the durable state,
/// and finishes the run. Returns every alert event across incarnations.
fn lifecycle_run(seed: u64, kill_at: Option<u64>) -> Vec<AlertEvent> {
    let store = MemorySegments::new();
    let ckpts = MemoryCheckpoints::new();
    let mut writer = CheckpointWriter::new(ckpts.clone(), 8).expect("writer");
    let mut svc = DecisionService::new(config(seed), store.clone());
    let mut metrics = svc.metrics_handle();
    let mut events = Vec::new();
    for w in 1..=WINDOWS {
        run_window(&svc, seed, w);
        if (BURST_FIRST..=BURST_LAST).contains(&w) {
            metrics.record_admission_shed_n(BURST_SHEDS);
        }
        drain(&svc);
        events.extend(svc.scope_tick(w * WINDOW_NS));
        svc.write_checkpoint(&mut writer, w, w * WINDOW_NS)
            .expect("checkpoint");
        if kill_at == Some(w) {
            let dead = svc.shutdown().expect("kill");
            let segments = dead.snapshot();
            let (resumed, report) =
                DecisionService::resume(config(seed), dead, None, &ckpts, &segments)
                    .expect("resume");
            assert_eq!(report.replay_divergence, 0, "replay must match the log");
            assert_eq!(report.cursor, w, "checkpoint covers the killed window");
            svc = resumed;
            metrics = svc.metrics_handle();
        }
    }
    drain(&svc);
    svc.shutdown().expect("clean shutdown");
    events
}

#[test]
fn alert_lifecycle_survives_a_warm_restart() {
    let seed = 42;
    let reference = lifecycle_run(seed, None);
    let reference_json = serde_json::to_string(&reference).unwrap();
    let slo: Vec<&AlertEvent> = reference
        .iter()
        .filter(|e| e.alert == "slo_burn_rate")
        .collect();
    assert_eq!(slo.len(), 2, "reference lifecycle: {reference:?}");
    assert_eq!((slo[0].phase, slo[0].window), (AlertPhase::Fired, FIRED_AT));
    assert_eq!(
        (slo[1].phase, slo[1].window),
        (AlertPhase::Cleared, CLEARED_AT)
    );

    // Kill before the burst and after the clear. (A restart *inside* a
    // firing streak loses the watchdog's in-memory hysteresis by design —
    // alerts page operators about the current incarnation; the durable
    // facts they summarize live in the checkpointed counters.)
    for kill_at in [3u64, 12] {
        let events = lifecycle_run(seed, Some(kill_at));
        assert_eq!(
            serde_json::to_string(&events).unwrap(),
            reference_json,
            "kill at window {kill_at}: lifecycle must reproduce"
        );
    }
}

/root/repo/target/debug/deps/chaos_recovery-64b2e81900d4ea47.d: tests/chaos_recovery.rs

/root/repo/target/debug/deps/chaos_recovery-64b2e81900d4ea47: tests/chaos_recovery.rs

tests/chaos_recovery.rs:

/root/repo/target/debug/deps/trace_audit-4499e91e1dbbecad.d: tests/trace_audit.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_audit-4499e91e1dbbecad.rmeta: tests/trace_audit.rs Cargo.toml

tests/trace_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

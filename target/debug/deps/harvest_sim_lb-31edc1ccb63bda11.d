/root/repo/target/debug/deps/harvest_sim_lb-31edc1ccb63bda11.d: crates/sim-loadbalance/src/lib.rs crates/sim-loadbalance/src/config.rs crates/sim-loadbalance/src/context.rs crates/sim-loadbalance/src/hierarchy.rs crates/sim-loadbalance/src/policy.rs crates/sim-loadbalance/src/sim.rs

/root/repo/target/debug/deps/harvest_sim_lb-31edc1ccb63bda11: crates/sim-loadbalance/src/lib.rs crates/sim-loadbalance/src/config.rs crates/sim-loadbalance/src/context.rs crates/sim-loadbalance/src/hierarchy.rs crates/sim-loadbalance/src/policy.rs crates/sim-loadbalance/src/sim.rs

crates/sim-loadbalance/src/lib.rs:
crates/sim-loadbalance/src/config.rs:
crates/sim-loadbalance/src/context.rs:
crates/sim-loadbalance/src/hierarchy.rs:
crates/sim-loadbalance/src/policy.rs:
crates/sim-loadbalance/src/sim.rs:

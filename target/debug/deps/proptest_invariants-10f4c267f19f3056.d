/root/repo/target/debug/deps/proptest_invariants-10f4c267f19f3056.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-10f4c267f19f3056: tests/proptest_invariants.rs

tests/proptest_invariants.rs:

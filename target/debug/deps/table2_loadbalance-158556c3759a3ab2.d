/root/repo/target/debug/deps/table2_loadbalance-158556c3759a3ab2.d: crates/bench/benches/table2_loadbalance.rs

/root/repo/target/debug/deps/table2_loadbalance-158556c3759a3ab2: crates/bench/benches/table2_loadbalance.rs

crates/bench/benches/table2_loadbalance.rs:

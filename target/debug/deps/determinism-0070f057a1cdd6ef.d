/root/repo/target/debug/deps/determinism-0070f057a1cdd6ef.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-0070f057a1cdd6ef: tests/determinism.rs

tests/determinism.rs:

/root/repo/target/debug/deps/harvest-334e39afca4189eb.d: src/lib.rs

/root/repo/target/debug/deps/harvest-334e39afca4189eb: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/ablations-526e6d3710fae91c.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-526e6d3710fae91c.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

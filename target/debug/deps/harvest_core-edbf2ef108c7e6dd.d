/root/repo/target/debug/deps/harvest_core-edbf2ef108c7e6dd.d: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/error.rs crates/core/src/learner/mod.rs crates/core/src/learner/batch.rs crates/core/src/learner/ips_policy.rs crates/core/src/learner/online.rs crates/core/src/learner/supervised.rs crates/core/src/linalg.rs crates/core/src/policy/mod.rs crates/core/src/policy/basic.rs crates/core/src/policy/stochastic.rs crates/core/src/policy/tree.rs crates/core/src/regression.rs crates/core/src/sample.rs crates/core/src/scorer.rs crates/core/src/simulate.rs Cargo.toml

/root/repo/target/debug/deps/libharvest_core-edbf2ef108c7e6dd.rmeta: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/error.rs crates/core/src/learner/mod.rs crates/core/src/learner/batch.rs crates/core/src/learner/ips_policy.rs crates/core/src/learner/online.rs crates/core/src/learner/supervised.rs crates/core/src/linalg.rs crates/core/src/policy/mod.rs crates/core/src/policy/basic.rs crates/core/src/policy/stochastic.rs crates/core/src/policy/tree.rs crates/core/src/regression.rs crates/core/src/sample.rs crates/core/src/scorer.rs crates/core/src/simulate.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/context.rs:
crates/core/src/error.rs:
crates/core/src/learner/mod.rs:
crates/core/src/learner/batch.rs:
crates/core/src/learner/ips_policy.rs:
crates/core/src/learner/online.rs:
crates/core/src/learner/supervised.rs:
crates/core/src/linalg.rs:
crates/core/src/policy/mod.rs:
crates/core/src/policy/basic.rs:
crates/core/src/policy/stochastic.rs:
crates/core/src/policy/tree.rs:
crates/core/src/regression.rs:
crates/core/src/sample.rs:
crates/core/src/scorer.rs:
crates/core/src/simulate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/harvest_bench-bad5597eef7fa668.d: crates/bench/src/lib.rs crates/bench/src/challenges/mod.rs crates/bench/src/challenges/cache_ablation.rs crates/bench/src/challenges/estimators.rs crates/bench/src/challenges/exploration.rs crates/bench/src/challenges/learners.rs crates/bench/src/challenges/sequences.rs crates/bench/src/challenges/validation.rs crates/bench/src/fig1.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/table2.rs crates/bench/src/table3.rs Cargo.toml

/root/repo/target/debug/deps/libharvest_bench-bad5597eef7fa668.rmeta: crates/bench/src/lib.rs crates/bench/src/challenges/mod.rs crates/bench/src/challenges/cache_ablation.rs crates/bench/src/challenges/estimators.rs crates/bench/src/challenges/exploration.rs crates/bench/src/challenges/learners.rs crates/bench/src/challenges/sequences.rs crates/bench/src/challenges/validation.rs crates/bench/src/fig1.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/table2.rs crates/bench/src/table3.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/challenges/mod.rs:
crates/bench/src/challenges/cache_ablation.rs:
crates/bench/src/challenges/estimators.rs:
crates/bench/src/challenges/exploration.rs:
crates/bench/src/challenges/learners.rs:
crates/bench/src/challenges/sequences.rs:
crates/bench/src/challenges/validation.rs:
crates/bench/src/fig1.rs:
crates/bench/src/fig2.rs:
crates/bench/src/fig3.rs:
crates/bench/src/fig4.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6.rs:
crates/bench/src/table2.rs:
crates/bench/src/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

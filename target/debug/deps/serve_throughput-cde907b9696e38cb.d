/root/repo/target/debug/deps/serve_throughput-cde907b9696e38cb.d: crates/bench/benches/serve_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libserve_throughput-cde907b9696e38cb.rmeta: crates/bench/benches/serve_throughput.rs Cargo.toml

crates/bench/benches/serve_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

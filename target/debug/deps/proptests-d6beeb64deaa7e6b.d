/root/repo/target/debug/deps/proptests-d6beeb64deaa7e6b.d: crates/core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d6beeb64deaa7e6b.rmeta: crates/core/tests/proptests.rs Cargo.toml

crates/core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/serde_json-06fca03479e4115a.d: third_party/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-06fca03479e4115a.rmeta: third_party/serde_json/src/lib.rs

third_party/serde_json/src/lib.rs:

/root/repo/target/debug/deps/harvest_sim_cache-690239f5e2a9e57b.d: crates/sim-cache/src/lib.rs crates/sim-cache/src/policy.rs crates/sim-cache/src/runner.rs crates/sim-cache/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libharvest_sim_cache-690239f5e2a9e57b.rmeta: crates/sim-cache/src/lib.rs crates/sim-cache/src/policy.rs crates/sim-cache/src/runner.rs crates/sim-cache/src/store.rs Cargo.toml

crates/sim-cache/src/lib.rs:
crates/sim-cache/src/policy.rs:
crates/sim-cache/src/runner.rs:
crates/sim-cache/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

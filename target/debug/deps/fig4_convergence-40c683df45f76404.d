/root/repo/target/debug/deps/fig4_convergence-40c683df45f76404.d: crates/bench/benches/fig4_convergence.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_convergence-40c683df45f76404.rmeta: crates/bench/benches/fig4_convergence.rs Cargo.toml

crates/bench/benches/fig4_convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

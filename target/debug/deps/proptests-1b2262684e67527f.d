/root/repo/target/debug/deps/proptests-1b2262684e67527f.d: crates/log/tests/proptests.rs

/root/repo/target/debug/deps/proptests-1b2262684e67527f: crates/log/tests/proptests.rs

crates/log/tests/proptests.rs:

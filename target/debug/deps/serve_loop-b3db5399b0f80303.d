/root/repo/target/debug/deps/serve_loop-b3db5399b0f80303.d: tests/serve_loop.rs Cargo.toml

/root/repo/target/debug/deps/libserve_loop-b3db5399b0f80303.rmeta: tests/serve_loop.rs Cargo.toml

tests/serve_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

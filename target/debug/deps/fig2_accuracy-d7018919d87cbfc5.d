/root/repo/target/debug/deps/fig2_accuracy-d7018919d87cbfc5.d: crates/bench/benches/fig2_accuracy.rs

/root/repo/target/debug/deps/fig2_accuracy-d7018919d87cbfc5: crates/bench/benches/fig2_accuracy.rs

crates/bench/benches/fig2_accuracy.rs:

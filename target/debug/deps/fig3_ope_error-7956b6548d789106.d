/root/repo/target/debug/deps/fig3_ope_error-7956b6548d789106.d: crates/bench/benches/fig3_ope_error.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_ope_error-7956b6548d789106.rmeta: crates/bench/benches/fig3_ope_error.rs Cargo.toml

crates/bench/benches/fig3_ope_error.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

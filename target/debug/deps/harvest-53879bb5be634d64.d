/root/repo/target/debug/deps/harvest-53879bb5be634d64.d: src/lib.rs

/root/repo/target/debug/deps/libharvest-53879bb5be634d64.rlib: src/lib.rs

/root/repo/target/debug/deps/libharvest-53879bb5be634d64.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/harvest-5a4e4198aca2c380.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libharvest-5a4e4198aca2c380.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

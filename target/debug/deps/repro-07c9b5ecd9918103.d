/root/repo/target/debug/deps/repro-07c9b5ecd9918103.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-07c9b5ecd9918103: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

/root/repo/target/debug/deps/harvest-5873a2f02156ec15.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libharvest-5873a2f02156ec15.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

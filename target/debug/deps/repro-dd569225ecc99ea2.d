/root/repo/target/debug/deps/repro-dd569225ecc99ea2.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-dd569225ecc99ea2: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

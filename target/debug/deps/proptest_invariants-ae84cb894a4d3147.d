/root/repo/target/debug/deps/proptest_invariants-ae84cb894a4d3147.d: tests/proptest_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_invariants-ae84cb894a4d3147.rmeta: tests/proptest_invariants.rs Cargo.toml

tests/proptest_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

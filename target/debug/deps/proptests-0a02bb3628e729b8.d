/root/repo/target/debug/deps/proptests-0a02bb3628e729b8.d: crates/obs/tests/proptests.rs

/root/repo/target/debug/deps/proptests-0a02bb3628e729b8: crates/obs/tests/proptests.rs

crates/obs/tests/proptests.rs:

/root/repo/target/debug/deps/rand_distr-79ebdc00a79259bc.d: third_party/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-79ebdc00a79259bc.rmeta: third_party/rand_distr/src/lib.rs

third_party/rand_distr/src/lib.rs:

/root/repo/target/debug/deps/rand_distr-30b7dc6682c20b73.d: third_party/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-30b7dc6682c20b73.rlib: third_party/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-30b7dc6682c20b73.rmeta: third_party/rand_distr/src/lib.rs

third_party/rand_distr/src/lib.rs:

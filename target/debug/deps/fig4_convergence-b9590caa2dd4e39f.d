/root/repo/target/debug/deps/fig4_convergence-b9590caa2dd4e39f.d: crates/bench/benches/fig4_convergence.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_convergence-b9590caa2dd4e39f.rmeta: crates/bench/benches/fig4_convergence.rs Cargo.toml

crates/bench/benches/fig4_convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

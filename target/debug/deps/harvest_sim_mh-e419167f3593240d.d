/root/repo/target/debug/deps/harvest_sim_mh-e419167f3593240d.d: crates/sim-machine-health/src/lib.rs crates/sim-machine-health/src/dataset.rs crates/sim-machine-health/src/failure.rs crates/sim-machine-health/src/machine.rs

/root/repo/target/debug/deps/libharvest_sim_mh-e419167f3593240d.rlib: crates/sim-machine-health/src/lib.rs crates/sim-machine-health/src/dataset.rs crates/sim-machine-health/src/failure.rs crates/sim-machine-health/src/machine.rs

/root/repo/target/debug/deps/libharvest_sim_mh-e419167f3593240d.rmeta: crates/sim-machine-health/src/lib.rs crates/sim-machine-health/src/dataset.rs crates/sim-machine-health/src/failure.rs crates/sim-machine-health/src/machine.rs

crates/sim-machine-health/src/lib.rs:
crates/sim-machine-health/src/dataset.rs:
crates/sim-machine-health/src/failure.rs:
crates/sim-machine-health/src/machine.rs:

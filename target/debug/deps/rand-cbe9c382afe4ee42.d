/root/repo/target/debug/deps/rand-cbe9c382afe4ee42.d: third_party/rand/src/lib.rs

/root/repo/target/debug/deps/librand-cbe9c382afe4ee42.rmeta: third_party/rand/src/lib.rs

third_party/rand/src/lib.rs:

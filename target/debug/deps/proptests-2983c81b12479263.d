/root/repo/target/debug/deps/proptests-2983c81b12479263.d: crates/sim-cache/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-2983c81b12479263.rmeta: crates/sim-cache/tests/proptests.rs Cargo.toml

crates/sim-cache/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

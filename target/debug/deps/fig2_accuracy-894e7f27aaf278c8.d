/root/repo/target/debug/deps/fig2_accuracy-894e7f27aaf278c8.d: crates/bench/benches/fig2_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_accuracy-894e7f27aaf278c8.rmeta: crates/bench/benches/fig2_accuracy.rs Cargo.toml

crates/bench/benches/fig2_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/harvest-9c0cd2cce0b69f3a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libharvest-9c0cd2cce0b69f3a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

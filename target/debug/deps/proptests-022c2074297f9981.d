/root/repo/target/debug/deps/proptests-022c2074297f9981.d: crates/sim-loadbalance/tests/proptests.rs

/root/repo/target/debug/deps/proptests-022c2074297f9981: crates/sim-loadbalance/tests/proptests.rs

crates/sim-loadbalance/tests/proptests.rs:

/root/repo/target/debug/deps/fig3_ope_error-8a0450b921412a2d.d: crates/bench/benches/fig3_ope_error.rs

/root/repo/target/debug/deps/fig3_ope_error-8a0450b921412a2d: crates/bench/benches/fig3_ope_error.rs

crates/bench/benches/fig3_ope_error.rs:

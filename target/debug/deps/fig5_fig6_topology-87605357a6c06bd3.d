/root/repo/target/debug/deps/fig5_fig6_topology-87605357a6c06bd3.d: crates/bench/benches/fig5_fig6_topology.rs

/root/repo/target/debug/deps/fig5_fig6_topology-87605357a6c06bd3: crates/bench/benches/fig5_fig6_topology.rs

crates/bench/benches/fig5_fig6_topology.rs:

/root/repo/target/debug/deps/proptests-d0da36b2746d179a.d: crates/serve/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d0da36b2746d179a.rmeta: crates/serve/tests/proptests.rs Cargo.toml

crates/serve/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/harvest_sim_lb-075264505ee6d25b.d: crates/sim-loadbalance/src/lib.rs crates/sim-loadbalance/src/config.rs crates/sim-loadbalance/src/context.rs crates/sim-loadbalance/src/hierarchy.rs crates/sim-loadbalance/src/policy.rs crates/sim-loadbalance/src/sim.rs

/root/repo/target/debug/deps/libharvest_sim_lb-075264505ee6d25b.rlib: crates/sim-loadbalance/src/lib.rs crates/sim-loadbalance/src/config.rs crates/sim-loadbalance/src/context.rs crates/sim-loadbalance/src/hierarchy.rs crates/sim-loadbalance/src/policy.rs crates/sim-loadbalance/src/sim.rs

/root/repo/target/debug/deps/libharvest_sim_lb-075264505ee6d25b.rmeta: crates/sim-loadbalance/src/lib.rs crates/sim-loadbalance/src/config.rs crates/sim-loadbalance/src/context.rs crates/sim-loadbalance/src/hierarchy.rs crates/sim-loadbalance/src/policy.rs crates/sim-loadbalance/src/sim.rs

crates/sim-loadbalance/src/lib.rs:
crates/sim-loadbalance/src/config.rs:
crates/sim-loadbalance/src/context.rs:
crates/sim-loadbalance/src/hierarchy.rs:
crates/sim-loadbalance/src/policy.rs:
crates/sim-loadbalance/src/sim.rs:

/root/repo/target/debug/deps/harvest-f23f972db2317797.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libharvest-f23f972db2317797.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

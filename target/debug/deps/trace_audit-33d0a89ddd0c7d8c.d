/root/repo/target/debug/deps/trace_audit-33d0a89ddd0c7d8c.d: tests/trace_audit.rs

/root/repo/target/debug/deps/trace_audit-33d0a89ddd0c7d8c: tests/trace_audit.rs

tests/trace_audit.rs:

/root/repo/target/debug/deps/determinism_lint-8ea20af4507b1e8a.d: tests/determinism_lint.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism_lint-8ea20af4507b1e8a.rmeta: tests/determinism_lint.rs Cargo.toml

tests/determinism_lint.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/harvest_sim_net-70246c5aa42a06c0.d: crates/sim-net/src/lib.rs crates/sim-net/src/event.rs crates/sim-net/src/fault.rs crates/sim-net/src/rng.rs crates/sim-net/src/stats.rs crates/sim-net/src/time.rs crates/sim-net/src/trace.rs crates/sim-net/src/workload.rs

/root/repo/target/debug/deps/libharvest_sim_net-70246c5aa42a06c0.rlib: crates/sim-net/src/lib.rs crates/sim-net/src/event.rs crates/sim-net/src/fault.rs crates/sim-net/src/rng.rs crates/sim-net/src/stats.rs crates/sim-net/src/time.rs crates/sim-net/src/trace.rs crates/sim-net/src/workload.rs

/root/repo/target/debug/deps/libharvest_sim_net-70246c5aa42a06c0.rmeta: crates/sim-net/src/lib.rs crates/sim-net/src/event.rs crates/sim-net/src/fault.rs crates/sim-net/src/rng.rs crates/sim-net/src/stats.rs crates/sim-net/src/time.rs crates/sim-net/src/trace.rs crates/sim-net/src/workload.rs

crates/sim-net/src/lib.rs:
crates/sim-net/src/event.rs:
crates/sim-net/src/fault.rs:
crates/sim-net/src/rng.rs:
crates/sim-net/src/stats.rs:
crates/sim-net/src/time.rs:
crates/sim-net/src/trace.rs:
crates/sim-net/src/workload.rs:

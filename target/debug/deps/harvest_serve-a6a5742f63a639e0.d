/root/repo/target/debug/deps/harvest_serve-a6a5742f63a639e0.d: crates/serve/src/lib.rs crates/serve/src/breaker.rs crates/serve/src/chaos.rs crates/serve/src/engine.rs crates/serve/src/error.rs crates/serve/src/export.rs crates/serve/src/joiner.rs crates/serve/src/logger.rs crates/serve/src/metrics.rs crates/serve/src/obs.rs crates/serve/src/registry.rs crates/serve/src/service.rs crates/serve/src/supervisor.rs crates/serve/src/trainer.rs

/root/repo/target/debug/deps/harvest_serve-a6a5742f63a639e0: crates/serve/src/lib.rs crates/serve/src/breaker.rs crates/serve/src/chaos.rs crates/serve/src/engine.rs crates/serve/src/error.rs crates/serve/src/export.rs crates/serve/src/joiner.rs crates/serve/src/logger.rs crates/serve/src/metrics.rs crates/serve/src/obs.rs crates/serve/src/registry.rs crates/serve/src/service.rs crates/serve/src/supervisor.rs crates/serve/src/trainer.rs

crates/serve/src/lib.rs:
crates/serve/src/breaker.rs:
crates/serve/src/chaos.rs:
crates/serve/src/engine.rs:
crates/serve/src/error.rs:
crates/serve/src/export.rs:
crates/serve/src/joiner.rs:
crates/serve/src/logger.rs:
crates/serve/src/metrics.rs:
crates/serve/src/obs.rs:
crates/serve/src/registry.rs:
crates/serve/src/service.rs:
crates/serve/src/supervisor.rs:
crates/serve/src/trainer.rs:

/root/repo/target/debug/deps/table2_loadbalance-5d3817ce1a7ed6bc.d: crates/bench/benches/table2_loadbalance.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_loadbalance-5d3817ce1a7ed6bc.rmeta: crates/bench/benches/table2_loadbalance.rs Cargo.toml

crates/bench/benches/table2_loadbalance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

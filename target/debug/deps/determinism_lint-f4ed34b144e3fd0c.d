/root/repo/target/debug/deps/determinism_lint-f4ed34b144e3fd0c.d: tests/determinism_lint.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism_lint-f4ed34b144e3fd0c.rmeta: tests/determinism_lint.rs Cargo.toml

tests/determinism_lint.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

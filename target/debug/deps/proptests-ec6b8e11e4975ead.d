/root/repo/target/debug/deps/proptests-ec6b8e11e4975ead.d: crates/log/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-ec6b8e11e4975ead.rmeta: crates/log/tests/proptests.rs Cargo.toml

crates/log/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

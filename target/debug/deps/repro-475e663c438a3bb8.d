/root/repo/target/debug/deps/repro-475e663c438a3bb8.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-475e663c438a3bb8: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

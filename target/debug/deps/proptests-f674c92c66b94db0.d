/root/repo/target/debug/deps/proptests-f674c92c66b94db0.d: crates/sim-machine-health/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f674c92c66b94db0: crates/sim-machine-health/tests/proptests.rs

crates/sim-machine-health/tests/proptests.rs:

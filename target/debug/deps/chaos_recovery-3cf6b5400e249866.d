/root/repo/target/debug/deps/chaos_recovery-3cf6b5400e249866.d: tests/chaos_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_recovery-3cf6b5400e249866.rmeta: tests/chaos_recovery.rs Cargo.toml

tests/chaos_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/serve_throughput-1eb9ab2d852f45e1.d: crates/bench/benches/serve_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libserve_throughput-1eb9ab2d852f45e1.rmeta: crates/bench/benches/serve_throughput.rs Cargo.toml

crates/bench/benches/serve_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/harvest_bench-a2d68bd7331659ba.d: crates/bench/src/lib.rs crates/bench/src/challenges/mod.rs crates/bench/src/challenges/cache_ablation.rs crates/bench/src/challenges/estimators.rs crates/bench/src/challenges/exploration.rs crates/bench/src/challenges/learners.rs crates/bench/src/challenges/sequences.rs crates/bench/src/challenges/validation.rs crates/bench/src/fig1.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/table2.rs crates/bench/src/table3.rs

/root/repo/target/debug/deps/harvest_bench-a2d68bd7331659ba: crates/bench/src/lib.rs crates/bench/src/challenges/mod.rs crates/bench/src/challenges/cache_ablation.rs crates/bench/src/challenges/estimators.rs crates/bench/src/challenges/exploration.rs crates/bench/src/challenges/learners.rs crates/bench/src/challenges/sequences.rs crates/bench/src/challenges/validation.rs crates/bench/src/fig1.rs crates/bench/src/fig2.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/table2.rs crates/bench/src/table3.rs

crates/bench/src/lib.rs:
crates/bench/src/challenges/mod.rs:
crates/bench/src/challenges/cache_ablation.rs:
crates/bench/src/challenges/estimators.rs:
crates/bench/src/challenges/exploration.rs:
crates/bench/src/challenges/learners.rs:
crates/bench/src/challenges/sequences.rs:
crates/bench/src/challenges/validation.rs:
crates/bench/src/fig1.rs:
crates/bench/src/fig2.rs:
crates/bench/src/fig3.rs:
crates/bench/src/fig4.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6.rs:
crates/bench/src/table2.rs:
crates/bench/src/table3.rs:

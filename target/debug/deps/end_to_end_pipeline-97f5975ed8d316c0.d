/root/repo/target/debug/deps/end_to_end_pipeline-97f5975ed8d316c0.d: tests/end_to_end_pipeline.rs

/root/repo/target/debug/deps/end_to_end_pipeline-97f5975ed8d316c0: tests/end_to_end_pipeline.rs

tests/end_to_end_pipeline.rs:

/root/repo/target/debug/deps/proptests-86aa53edb23c3743.d: crates/sim-net/tests/proptests.rs

/root/repo/target/debug/deps/proptests-86aa53edb23c3743: crates/sim-net/tests/proptests.rs

crates/sim-net/tests/proptests.rs:

/root/repo/target/debug/deps/proptest-51acc55a8ec1c3f7.d: third_party/proptest/src/lib.rs third_party/proptest/src/collection.rs third_party/proptest/src/option.rs third_party/proptest/src/strategy.rs third_party/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-51acc55a8ec1c3f7.rmeta: third_party/proptest/src/lib.rs third_party/proptest/src/collection.rs third_party/proptest/src/option.rs third_party/proptest/src/strategy.rs third_party/proptest/src/test_runner.rs

third_party/proptest/src/lib.rs:
third_party/proptest/src/collection.rs:
third_party/proptest/src/option.rs:
third_party/proptest/src/strategy.rs:
third_party/proptest/src/test_runner.rs:

/root/repo/target/debug/deps/determinism_lint-21067bc16378ef36.d: tests/determinism_lint.rs

/root/repo/target/debug/deps/determinism_lint-21067bc16378ef36: tests/determinism_lint.rs

tests/determinism_lint.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo

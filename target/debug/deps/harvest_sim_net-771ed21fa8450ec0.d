/root/repo/target/debug/deps/harvest_sim_net-771ed21fa8450ec0.d: crates/sim-net/src/lib.rs crates/sim-net/src/event.rs crates/sim-net/src/fault.rs crates/sim-net/src/rng.rs crates/sim-net/src/stats.rs crates/sim-net/src/time.rs crates/sim-net/src/trace.rs crates/sim-net/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libharvest_sim_net-771ed21fa8450ec0.rmeta: crates/sim-net/src/lib.rs crates/sim-net/src/event.rs crates/sim-net/src/fault.rs crates/sim-net/src/rng.rs crates/sim-net/src/stats.rs crates/sim-net/src/time.rs crates/sim-net/src/trace.rs crates/sim-net/src/workload.rs Cargo.toml

crates/sim-net/src/lib.rs:
crates/sim-net/src/event.rs:
crates/sim-net/src/fault.rs:
crates/sim-net/src/rng.rs:
crates/sim-net/src/stats.rs:
crates/sim-net/src/time.rs:
crates/sim-net/src/trace.rs:
crates/sim-net/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

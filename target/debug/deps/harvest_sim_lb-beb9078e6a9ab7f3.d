/root/repo/target/debug/deps/harvest_sim_lb-beb9078e6a9ab7f3.d: crates/sim-loadbalance/src/lib.rs crates/sim-loadbalance/src/config.rs crates/sim-loadbalance/src/context.rs crates/sim-loadbalance/src/hierarchy.rs crates/sim-loadbalance/src/policy.rs crates/sim-loadbalance/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libharvest_sim_lb-beb9078e6a9ab7f3.rmeta: crates/sim-loadbalance/src/lib.rs crates/sim-loadbalance/src/config.rs crates/sim-loadbalance/src/context.rs crates/sim-loadbalance/src/hierarchy.rs crates/sim-loadbalance/src/policy.rs crates/sim-loadbalance/src/sim.rs Cargo.toml

crates/sim-loadbalance/src/lib.rs:
crates/sim-loadbalance/src/config.rs:
crates/sim-loadbalance/src/context.rs:
crates/sim-loadbalance/src/hierarchy.rs:
crates/sim-loadbalance/src/policy.rs:
crates/sim-loadbalance/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/harvest_obs-ae41d121680ec303.d: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/prom.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libharvest_obs-ae41d121680ec303.rmeta: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/prom.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/hist.rs:
crates/obs/src/prom.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/chaos_recovery-7479bccc638bcc3e.d: tests/chaos_recovery.rs

/root/repo/target/debug/deps/chaos_recovery-7479bccc638bcc3e: tests/chaos_recovery.rs

tests/chaos_recovery.rs:

/root/repo/target/debug/deps/proptests-b31220f3dcb693f4.d: crates/sim-cache/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b31220f3dcb693f4: crates/sim-cache/tests/proptests.rs

crates/sim-cache/tests/proptests.rs:

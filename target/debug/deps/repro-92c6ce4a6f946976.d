/root/repo/target/debug/deps/repro-92c6ce4a6f946976.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-92c6ce4a6f946976: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

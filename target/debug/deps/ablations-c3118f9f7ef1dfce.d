/root/repo/target/debug/deps/ablations-c3118f9f7ef1dfce.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-c3118f9f7ef1dfce.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/serve_loop-9a5e4c84ff12026d.d: tests/serve_loop.rs

/root/repo/target/debug/deps/serve_loop-9a5e4c84ff12026d: tests/serve_loop.rs

tests/serve_loop.rs:

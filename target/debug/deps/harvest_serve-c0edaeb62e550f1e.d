/root/repo/target/debug/deps/harvest_serve-c0edaeb62e550f1e.d: crates/serve/src/lib.rs crates/serve/src/breaker.rs crates/serve/src/chaos.rs crates/serve/src/engine.rs crates/serve/src/error.rs crates/serve/src/joiner.rs crates/serve/src/logger.rs crates/serve/src/metrics.rs crates/serve/src/registry.rs crates/serve/src/service.rs crates/serve/src/supervisor.rs crates/serve/src/trainer.rs

/root/repo/target/debug/deps/harvest_serve-c0edaeb62e550f1e: crates/serve/src/lib.rs crates/serve/src/breaker.rs crates/serve/src/chaos.rs crates/serve/src/engine.rs crates/serve/src/error.rs crates/serve/src/joiner.rs crates/serve/src/logger.rs crates/serve/src/metrics.rs crates/serve/src/registry.rs crates/serve/src/service.rs crates/serve/src/supervisor.rs crates/serve/src/trainer.rs

crates/serve/src/lib.rs:
crates/serve/src/breaker.rs:
crates/serve/src/chaos.rs:
crates/serve/src/engine.rs:
crates/serve/src/error.rs:
crates/serve/src/joiner.rs:
crates/serve/src/logger.rs:
crates/serve/src/metrics.rs:
crates/serve/src/registry.rs:
crates/serve/src/service.rs:
crates/serve/src/supervisor.rs:
crates/serve/src/trainer.rs:

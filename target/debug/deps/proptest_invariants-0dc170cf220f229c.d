/root/repo/target/debug/deps/proptest_invariants-0dc170cf220f229c.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-0dc170cf220f229c: tests/proptest_invariants.rs

tests/proptest_invariants.rs:

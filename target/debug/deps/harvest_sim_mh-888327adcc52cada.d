/root/repo/target/debug/deps/harvest_sim_mh-888327adcc52cada.d: crates/sim-machine-health/src/lib.rs crates/sim-machine-health/src/dataset.rs crates/sim-machine-health/src/failure.rs crates/sim-machine-health/src/machine.rs Cargo.toml

/root/repo/target/debug/deps/libharvest_sim_mh-888327adcc52cada.rmeta: crates/sim-machine-health/src/lib.rs crates/sim-machine-health/src/dataset.rs crates/sim-machine-health/src/failure.rs crates/sim-machine-health/src/machine.rs Cargo.toml

crates/sim-machine-health/src/lib.rs:
crates/sim-machine-health/src/dataset.rs:
crates/sim-machine-health/src/failure.rs:
crates/sim-machine-health/src/machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/table3_cache-eeaf4f8ca6307a10.d: crates/bench/benches/table3_cache.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_cache-eeaf4f8ca6307a10.rmeta: crates/bench/benches/table3_cache.rs Cargo.toml

crates/bench/benches/table3_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/harvest-8c3ed8ef83e00a7b.d: src/lib.rs

/root/repo/target/debug/deps/libharvest-8c3ed8ef83e00a7b.rlib: src/lib.rs

/root/repo/target/debug/deps/libharvest-8c3ed8ef83e00a7b.rmeta: src/lib.rs

src/lib.rs:

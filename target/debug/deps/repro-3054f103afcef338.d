/root/repo/target/debug/deps/repro-3054f103afcef338.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-3054f103afcef338.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/harvest_obs-bc159d5c59733f01.d: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/prom.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libharvest_obs-bc159d5c59733f01.rmeta: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/prom.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/hist.rs:
crates/obs/src/prom.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

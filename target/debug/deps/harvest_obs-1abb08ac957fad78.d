/root/repo/target/debug/deps/harvest_obs-1abb08ac957fad78.d: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/prom.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libharvest_obs-1abb08ac957fad78.rlib: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/prom.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libharvest_obs-1abb08ac957fad78.rmeta: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/prom.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/hist.rs:
crates/obs/src/prom.rs:
crates/obs/src/trace.rs:

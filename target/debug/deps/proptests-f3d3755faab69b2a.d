/root/repo/target/debug/deps/proptests-f3d3755faab69b2a.d: crates/sim-loadbalance/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-f3d3755faab69b2a.rmeta: crates/sim-loadbalance/tests/proptests.rs Cargo.toml

crates/sim-loadbalance/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/determinism-988eaa8f7519b51c.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-988eaa8f7519b51c.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/proptest-02c3e473fa6a748a.d: third_party/proptest/src/lib.rs third_party/proptest/src/collection.rs third_party/proptest/src/option.rs third_party/proptest/src/strategy.rs third_party/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-02c3e473fa6a748a.rlib: third_party/proptest/src/lib.rs third_party/proptest/src/collection.rs third_party/proptest/src/option.rs third_party/proptest/src/strategy.rs third_party/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-02c3e473fa6a748a.rmeta: third_party/proptest/src/lib.rs third_party/proptest/src/collection.rs third_party/proptest/src/option.rs third_party/proptest/src/strategy.rs third_party/proptest/src/test_runner.rs

third_party/proptest/src/lib.rs:
third_party/proptest/src/collection.rs:
third_party/proptest/src/option.rs:
third_party/proptest/src/strategy.rs:
third_party/proptest/src/test_runner.rs:

/root/repo/target/debug/deps/harvest_sim_cache-61900d0ce8ca5eda.d: crates/sim-cache/src/lib.rs crates/sim-cache/src/policy.rs crates/sim-cache/src/runner.rs crates/sim-cache/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libharvest_sim_cache-61900d0ce8ca5eda.rmeta: crates/sim-cache/src/lib.rs crates/sim-cache/src/policy.rs crates/sim-cache/src/runner.rs crates/sim-cache/src/store.rs Cargo.toml

crates/sim-cache/src/lib.rs:
crates/sim-cache/src/policy.rs:
crates/sim-cache/src/runner.rs:
crates/sim-cache/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/harvest-d583be18c62e6ff1.d: src/lib.rs

/root/repo/target/debug/deps/harvest-d583be18c62e6ff1: src/lib.rs

src/lib.rs:

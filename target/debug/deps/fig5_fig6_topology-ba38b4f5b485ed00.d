/root/repo/target/debug/deps/fig5_fig6_topology-ba38b4f5b485ed00.d: crates/bench/benches/fig5_fig6_topology.rs

/root/repo/target/debug/deps/fig5_fig6_topology-ba38b4f5b485ed00: crates/bench/benches/fig5_fig6_topology.rs

crates/bench/benches/fig5_fig6_topology.rs:

/root/repo/target/debug/deps/end_to_end_pipeline-879956e06b167ef0.d: tests/end_to_end_pipeline.rs

/root/repo/target/debug/deps/end_to_end_pipeline-879956e06b167ef0: tests/end_to_end_pipeline.rs

tests/end_to_end_pipeline.rs:

/root/repo/target/debug/deps/proptests-edaf0511da86c63d.d: crates/sim-net/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-edaf0511da86c63d.rmeta: crates/sim-net/tests/proptests.rs Cargo.toml

crates/sim-net/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/rand-5117bd95a7bb7040.d: third_party/rand/src/lib.rs

/root/repo/target/debug/deps/librand-5117bd95a7bb7040.rlib: third_party/rand/src/lib.rs

/root/repo/target/debug/deps/librand-5117bd95a7bb7040.rmeta: third_party/rand/src/lib.rs

third_party/rand/src/lib.rs:

/root/repo/target/debug/deps/harvest-c603c7ec82168069.d: src/lib.rs

/root/repo/target/debug/deps/libharvest-c603c7ec82168069.rlib: src/lib.rs

/root/repo/target/debug/deps/libharvest-c603c7ec82168069.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/harvest_sim_cache-7e2ebf0f9a6e16a6.d: crates/sim-cache/src/lib.rs crates/sim-cache/src/policy.rs crates/sim-cache/src/runner.rs crates/sim-cache/src/store.rs

/root/repo/target/debug/deps/libharvest_sim_cache-7e2ebf0f9a6e16a6.rlib: crates/sim-cache/src/lib.rs crates/sim-cache/src/policy.rs crates/sim-cache/src/runner.rs crates/sim-cache/src/store.rs

/root/repo/target/debug/deps/libharvest_sim_cache-7e2ebf0f9a6e16a6.rmeta: crates/sim-cache/src/lib.rs crates/sim-cache/src/policy.rs crates/sim-cache/src/runner.rs crates/sim-cache/src/store.rs

crates/sim-cache/src/lib.rs:
crates/sim-cache/src/policy.rs:
crates/sim-cache/src/runner.rs:
crates/sim-cache/src/store.rs:

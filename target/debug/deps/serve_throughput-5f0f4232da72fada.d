/root/repo/target/debug/deps/serve_throughput-5f0f4232da72fada.d: crates/bench/benches/serve_throughput.rs

/root/repo/target/debug/deps/serve_throughput-5f0f4232da72fada: crates/bench/benches/serve_throughput.rs

crates/bench/benches/serve_throughput.rs:

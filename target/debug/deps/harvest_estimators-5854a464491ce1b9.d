/root/repo/target/debug/deps/harvest_estimators-5854a464491ce1b9.d: crates/estimators/src/lib.rs crates/estimators/src/ab.rs crates/estimators/src/bounds.rs crates/estimators/src/diagnostics.rs crates/estimators/src/direct.rs crates/estimators/src/dr.rs crates/estimators/src/drift.rs crates/estimators/src/evaluator.rs crates/estimators/src/ips.rs crates/estimators/src/search.rs crates/estimators/src/snips.rs crates/estimators/src/trajectory.rs crates/estimators/src/estimate.rs

/root/repo/target/debug/deps/harvest_estimators-5854a464491ce1b9: crates/estimators/src/lib.rs crates/estimators/src/ab.rs crates/estimators/src/bounds.rs crates/estimators/src/diagnostics.rs crates/estimators/src/direct.rs crates/estimators/src/dr.rs crates/estimators/src/drift.rs crates/estimators/src/evaluator.rs crates/estimators/src/ips.rs crates/estimators/src/search.rs crates/estimators/src/snips.rs crates/estimators/src/trajectory.rs crates/estimators/src/estimate.rs

crates/estimators/src/lib.rs:
crates/estimators/src/ab.rs:
crates/estimators/src/bounds.rs:
crates/estimators/src/diagnostics.rs:
crates/estimators/src/direct.rs:
crates/estimators/src/dr.rs:
crates/estimators/src/drift.rs:
crates/estimators/src/evaluator.rs:
crates/estimators/src/ips.rs:
crates/estimators/src/search.rs:
crates/estimators/src/snips.rs:
crates/estimators/src/trajectory.rs:
crates/estimators/src/estimate.rs:

/root/repo/target/debug/deps/fig2_accuracy-8ddda05227df86a4.d: crates/bench/benches/fig2_accuracy.rs

/root/repo/target/debug/deps/fig2_accuracy-8ddda05227df86a4: crates/bench/benches/fig2_accuracy.rs

crates/bench/benches/fig2_accuracy.rs:

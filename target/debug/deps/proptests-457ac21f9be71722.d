/root/repo/target/debug/deps/proptests-457ac21f9be71722.d: crates/estimators/tests/proptests.rs

/root/repo/target/debug/deps/proptests-457ac21f9be71722: crates/estimators/tests/proptests.rs

crates/estimators/tests/proptests.rs:

/root/repo/target/debug/deps/proptests-81848c9afc0d5a23.d: crates/sim-machine-health/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-81848c9afc0d5a23.rmeta: crates/sim-machine-health/tests/proptests.rs Cargo.toml

crates/sim-machine-health/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

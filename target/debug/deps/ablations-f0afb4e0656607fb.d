/root/repo/target/debug/deps/ablations-f0afb4e0656607fb.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-f0afb4e0656607fb: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:

/root/repo/target/debug/deps/end_to_end_pipeline-94ea5e119be03ae4.d: tests/end_to_end_pipeline.rs

/root/repo/target/debug/deps/end_to_end_pipeline-94ea5e119be03ae4: tests/end_to_end_pipeline.rs

tests/end_to_end_pipeline.rs:

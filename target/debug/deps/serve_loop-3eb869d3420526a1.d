/root/repo/target/debug/deps/serve_loop-3eb869d3420526a1.d: tests/serve_loop.rs

/root/repo/target/debug/deps/serve_loop-3eb869d3420526a1: tests/serve_loop.rs

tests/serve_loop.rs:

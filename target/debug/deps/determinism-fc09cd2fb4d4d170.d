/root/repo/target/debug/deps/determinism-fc09cd2fb4d4d170.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-fc09cd2fb4d4d170: tests/determinism.rs

tests/determinism.rs:

/root/repo/target/debug/deps/chaos_recovery-14952a012dcde2fe.d: tests/chaos_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_recovery-14952a012dcde2fe.rmeta: tests/chaos_recovery.rs Cargo.toml

tests/chaos_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/repro-65f90998d4c1263d.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-65f90998d4c1263d.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/proptest_invariants-3e94fe9fab25e89c.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-3e94fe9fab25e89c: tests/proptest_invariants.rs

tests/proptest_invariants.rs:

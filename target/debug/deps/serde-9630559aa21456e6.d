/root/repo/target/debug/deps/serde-9630559aa21456e6.d: third_party/serde/src/lib.rs third_party/serde/src/value.rs

/root/repo/target/debug/deps/libserde-9630559aa21456e6.rmeta: third_party/serde/src/lib.rs third_party/serde/src/value.rs

third_party/serde/src/lib.rs:
third_party/serde/src/value.rs:

/root/repo/target/debug/deps/ablations-ec69dd412eab0c54.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-ec69dd412eab0c54: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:

/root/repo/target/debug/deps/determinism-922bf5bda7c7a953.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-922bf5bda7c7a953.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

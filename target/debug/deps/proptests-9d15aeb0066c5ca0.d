/root/repo/target/debug/deps/proptests-9d15aeb0066c5ca0.d: crates/estimators/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-9d15aeb0066c5ca0.rmeta: crates/estimators/tests/proptests.rs Cargo.toml

crates/estimators/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

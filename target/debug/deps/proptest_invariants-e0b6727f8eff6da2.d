/root/repo/target/debug/deps/proptest_invariants-e0b6727f8eff6da2.d: tests/proptest_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_invariants-e0b6727f8eff6da2.rmeta: tests/proptest_invariants.rs Cargo.toml

tests/proptest_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

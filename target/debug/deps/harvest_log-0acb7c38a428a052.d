/root/repo/target/debug/deps/harvest_log-0acb7c38a428a052.d: crates/log/src/lib.rs crates/log/src/nginx.rs crates/log/src/pipeline.rs crates/log/src/propensity.rs crates/log/src/record.rs crates/log/src/reward.rs crates/log/src/scavenge.rs crates/log/src/segment.rs

/root/repo/target/debug/deps/libharvest_log-0acb7c38a428a052.rlib: crates/log/src/lib.rs crates/log/src/nginx.rs crates/log/src/pipeline.rs crates/log/src/propensity.rs crates/log/src/record.rs crates/log/src/reward.rs crates/log/src/scavenge.rs crates/log/src/segment.rs

/root/repo/target/debug/deps/libharvest_log-0acb7c38a428a052.rmeta: crates/log/src/lib.rs crates/log/src/nginx.rs crates/log/src/pipeline.rs crates/log/src/propensity.rs crates/log/src/record.rs crates/log/src/reward.rs crates/log/src/scavenge.rs crates/log/src/segment.rs

crates/log/src/lib.rs:
crates/log/src/nginx.rs:
crates/log/src/pipeline.rs:
crates/log/src/propensity.rs:
crates/log/src/record.rs:
crates/log/src/reward.rs:
crates/log/src/scavenge.rs:
crates/log/src/segment.rs:

/root/repo/target/debug/deps/fig4_convergence-1f4913de0fa8564b.d: crates/bench/benches/fig4_convergence.rs

/root/repo/target/debug/deps/fig4_convergence-1f4913de0fa8564b: crates/bench/benches/fig4_convergence.rs

crates/bench/benches/fig4_convergence.rs:

/root/repo/target/debug/deps/repro-44d5769361b27203.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-44d5769361b27203.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/serve_loop-f150ed8d0489b01e.d: tests/serve_loop.rs Cargo.toml

/root/repo/target/debug/deps/libserve_loop-f150ed8d0489b01e.rmeta: tests/serve_loop.rs Cargo.toml

tests/serve_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/determinism_lint-0cb7a4d2e4cc995b.d: tests/determinism_lint.rs

/root/repo/target/debug/deps/determinism_lint-0cb7a4d2e4cc995b: tests/determinism_lint.rs

tests/determinism_lint.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo

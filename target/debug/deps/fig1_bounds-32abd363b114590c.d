/root/repo/target/debug/deps/fig1_bounds-32abd363b114590c.d: crates/bench/benches/fig1_bounds.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_bounds-32abd363b114590c.rmeta: crates/bench/benches/fig1_bounds.rs Cargo.toml

crates/bench/benches/fig1_bounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/determinism-2d070ad3ee29ed0f.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-2d070ad3ee29ed0f: tests/determinism.rs

tests/determinism.rs:

/root/repo/target/debug/deps/harvest_estimators-7a2ca45aa86d6f02.d: crates/estimators/src/lib.rs crates/estimators/src/ab.rs crates/estimators/src/bounds.rs crates/estimators/src/diagnostics.rs crates/estimators/src/direct.rs crates/estimators/src/dr.rs crates/estimators/src/drift.rs crates/estimators/src/evaluator.rs crates/estimators/src/ips.rs crates/estimators/src/search.rs crates/estimators/src/snips.rs crates/estimators/src/trajectory.rs crates/estimators/src/estimate.rs Cargo.toml

/root/repo/target/debug/deps/libharvest_estimators-7a2ca45aa86d6f02.rmeta: crates/estimators/src/lib.rs crates/estimators/src/ab.rs crates/estimators/src/bounds.rs crates/estimators/src/diagnostics.rs crates/estimators/src/direct.rs crates/estimators/src/dr.rs crates/estimators/src/drift.rs crates/estimators/src/evaluator.rs crates/estimators/src/ips.rs crates/estimators/src/search.rs crates/estimators/src/snips.rs crates/estimators/src/trajectory.rs crates/estimators/src/estimate.rs Cargo.toml

crates/estimators/src/lib.rs:
crates/estimators/src/ab.rs:
crates/estimators/src/bounds.rs:
crates/estimators/src/diagnostics.rs:
crates/estimators/src/direct.rs:
crates/estimators/src/dr.rs:
crates/estimators/src/drift.rs:
crates/estimators/src/evaluator.rs:
crates/estimators/src/ips.rs:
crates/estimators/src/search.rs:
crates/estimators/src/snips.rs:
crates/estimators/src/trajectory.rs:
crates/estimators/src/estimate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/repro-be82855ac2328363.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-be82855ac2328363.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

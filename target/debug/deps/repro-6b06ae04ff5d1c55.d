/root/repo/target/debug/deps/repro-6b06ae04ff5d1c55.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-6b06ae04ff5d1c55: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

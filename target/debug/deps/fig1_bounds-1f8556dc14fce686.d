/root/repo/target/debug/deps/fig1_bounds-1f8556dc14fce686.d: crates/bench/benches/fig1_bounds.rs

/root/repo/target/debug/deps/fig1_bounds-1f8556dc14fce686: crates/bench/benches/fig1_bounds.rs

crates/bench/benches/fig1_bounds.rs:

/root/repo/target/debug/deps/proptests-3e0077aad876f3fa.d: crates/serve/tests/proptests.rs

/root/repo/target/debug/deps/proptests-3e0077aad876f3fa: crates/serve/tests/proptests.rs

crates/serve/tests/proptests.rs:

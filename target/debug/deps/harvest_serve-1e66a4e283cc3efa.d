/root/repo/target/debug/deps/harvest_serve-1e66a4e283cc3efa.d: crates/serve/src/lib.rs crates/serve/src/breaker.rs crates/serve/src/chaos.rs crates/serve/src/engine.rs crates/serve/src/error.rs crates/serve/src/export.rs crates/serve/src/joiner.rs crates/serve/src/logger.rs crates/serve/src/metrics.rs crates/serve/src/obs.rs crates/serve/src/registry.rs crates/serve/src/service.rs crates/serve/src/supervisor.rs crates/serve/src/trainer.rs Cargo.toml

/root/repo/target/debug/deps/libharvest_serve-1e66a4e283cc3efa.rmeta: crates/serve/src/lib.rs crates/serve/src/breaker.rs crates/serve/src/chaos.rs crates/serve/src/engine.rs crates/serve/src/error.rs crates/serve/src/export.rs crates/serve/src/joiner.rs crates/serve/src/logger.rs crates/serve/src/metrics.rs crates/serve/src/obs.rs crates/serve/src/registry.rs crates/serve/src/service.rs crates/serve/src/supervisor.rs crates/serve/src/trainer.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/breaker.rs:
crates/serve/src/chaos.rs:
crates/serve/src/engine.rs:
crates/serve/src/error.rs:
crates/serve/src/export.rs:
crates/serve/src/joiner.rs:
crates/serve/src/logger.rs:
crates/serve/src/metrics.rs:
crates/serve/src/obs.rs:
crates/serve/src/registry.rs:
crates/serve/src/service.rs:
crates/serve/src/supervisor.rs:
crates/serve/src/trainer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/harvest_log-90bd52ca6f80d2dc.d: crates/log/src/lib.rs crates/log/src/nginx.rs crates/log/src/pipeline.rs crates/log/src/propensity.rs crates/log/src/record.rs crates/log/src/reward.rs crates/log/src/scavenge.rs crates/log/src/segment.rs

/root/repo/target/debug/deps/harvest_log-90bd52ca6f80d2dc: crates/log/src/lib.rs crates/log/src/nginx.rs crates/log/src/pipeline.rs crates/log/src/propensity.rs crates/log/src/record.rs crates/log/src/reward.rs crates/log/src/scavenge.rs crates/log/src/segment.rs

crates/log/src/lib.rs:
crates/log/src/nginx.rs:
crates/log/src/pipeline.rs:
crates/log/src/propensity.rs:
crates/log/src/record.rs:
crates/log/src/reward.rs:
crates/log/src/scavenge.rs:
crates/log/src/segment.rs:

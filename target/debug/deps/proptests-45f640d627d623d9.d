/root/repo/target/debug/deps/proptests-45f640d627d623d9.d: crates/serve/tests/proptests.rs

/root/repo/target/debug/deps/proptests-45f640d627d623d9: crates/serve/tests/proptests.rs

crates/serve/tests/proptests.rs:

/root/repo/target/debug/deps/proptests-7031ff7577d017eb.d: crates/serve/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-7031ff7577d017eb.rmeta: crates/serve/tests/proptests.rs Cargo.toml

crates/serve/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

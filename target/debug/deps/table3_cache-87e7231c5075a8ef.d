/root/repo/target/debug/deps/table3_cache-87e7231c5075a8ef.d: crates/bench/benches/table3_cache.rs

/root/repo/target/debug/deps/table3_cache-87e7231c5075a8ef: crates/bench/benches/table3_cache.rs

crates/bench/benches/table3_cache.rs:

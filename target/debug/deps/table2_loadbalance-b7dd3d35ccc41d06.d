/root/repo/target/debug/deps/table2_loadbalance-b7dd3d35ccc41d06.d: crates/bench/benches/table2_loadbalance.rs

/root/repo/target/debug/deps/table2_loadbalance-b7dd3d35ccc41d06: crates/bench/benches/table2_loadbalance.rs

crates/bench/benches/table2_loadbalance.rs:

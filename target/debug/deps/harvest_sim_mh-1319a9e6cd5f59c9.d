/root/repo/target/debug/deps/harvest_sim_mh-1319a9e6cd5f59c9.d: crates/sim-machine-health/src/lib.rs crates/sim-machine-health/src/dataset.rs crates/sim-machine-health/src/failure.rs crates/sim-machine-health/src/machine.rs

/root/repo/target/debug/deps/harvest_sim_mh-1319a9e6cd5f59c9: crates/sim-machine-health/src/lib.rs crates/sim-machine-health/src/dataset.rs crates/sim-machine-health/src/failure.rs crates/sim-machine-health/src/machine.rs

crates/sim-machine-health/src/lib.rs:
crates/sim-machine-health/src/dataset.rs:
crates/sim-machine-health/src/failure.rs:
crates/sim-machine-health/src/machine.rs:

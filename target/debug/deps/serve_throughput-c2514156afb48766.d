/root/repo/target/debug/deps/serve_throughput-c2514156afb48766.d: crates/bench/benches/serve_throughput.rs

/root/repo/target/debug/deps/serve_throughput-c2514156afb48766: crates/bench/benches/serve_throughput.rs

crates/bench/benches/serve_throughput.rs:

/root/repo/target/debug/deps/fig5_fig6_topology-ff6a5aa5c558fc6f.d: crates/bench/benches/fig5_fig6_topology.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_fig6_topology-ff6a5aa5c558fc6f.rmeta: crates/bench/benches/fig5_fig6_topology.rs Cargo.toml

crates/bench/benches/fig5_fig6_topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

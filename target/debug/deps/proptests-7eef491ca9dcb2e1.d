/root/repo/target/debug/deps/proptests-7eef491ca9dcb2e1.d: crates/obs/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-7eef491ca9dcb2e1.rmeta: crates/obs/tests/proptests.rs Cargo.toml

crates/obs/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/end_to_end_pipeline-4fd393b4e226c0f1.d: tests/end_to_end_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_pipeline-4fd393b4e226c0f1.rmeta: tests/end_to_end_pipeline.rs Cargo.toml

tests/end_to_end_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/harvest_core-e57d36a21ea2f310.d: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/error.rs crates/core/src/learner/mod.rs crates/core/src/learner/batch.rs crates/core/src/learner/ips_policy.rs crates/core/src/learner/online.rs crates/core/src/learner/supervised.rs crates/core/src/linalg.rs crates/core/src/policy/mod.rs crates/core/src/policy/basic.rs crates/core/src/policy/stochastic.rs crates/core/src/policy/tree.rs crates/core/src/regression.rs crates/core/src/sample.rs crates/core/src/scorer.rs crates/core/src/simulate.rs

/root/repo/target/debug/deps/libharvest_core-e57d36a21ea2f310.rlib: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/error.rs crates/core/src/learner/mod.rs crates/core/src/learner/batch.rs crates/core/src/learner/ips_policy.rs crates/core/src/learner/online.rs crates/core/src/learner/supervised.rs crates/core/src/linalg.rs crates/core/src/policy/mod.rs crates/core/src/policy/basic.rs crates/core/src/policy/stochastic.rs crates/core/src/policy/tree.rs crates/core/src/regression.rs crates/core/src/sample.rs crates/core/src/scorer.rs crates/core/src/simulate.rs

/root/repo/target/debug/deps/libharvest_core-e57d36a21ea2f310.rmeta: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/error.rs crates/core/src/learner/mod.rs crates/core/src/learner/batch.rs crates/core/src/learner/ips_policy.rs crates/core/src/learner/online.rs crates/core/src/learner/supervised.rs crates/core/src/linalg.rs crates/core/src/policy/mod.rs crates/core/src/policy/basic.rs crates/core/src/policy/stochastic.rs crates/core/src/policy/tree.rs crates/core/src/regression.rs crates/core/src/sample.rs crates/core/src/scorer.rs crates/core/src/simulate.rs

crates/core/src/lib.rs:
crates/core/src/context.rs:
crates/core/src/error.rs:
crates/core/src/learner/mod.rs:
crates/core/src/learner/batch.rs:
crates/core/src/learner/ips_policy.rs:
crates/core/src/learner/online.rs:
crates/core/src/learner/supervised.rs:
crates/core/src/linalg.rs:
crates/core/src/policy/mod.rs:
crates/core/src/policy/basic.rs:
crates/core/src/policy/stochastic.rs:
crates/core/src/policy/tree.rs:
crates/core/src/regression.rs:
crates/core/src/sample.rs:
crates/core/src/scorer.rs:
crates/core/src/simulate.rs:

/root/repo/target/debug/deps/harvest-7fa9560df2fcb79c.d: src/lib.rs

/root/repo/target/debug/deps/harvest-7fa9560df2fcb79c: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/table3_cache-4d53e67527bf416b.d: crates/bench/benches/table3_cache.rs

/root/repo/target/debug/deps/table3_cache-4d53e67527bf416b: crates/bench/benches/table3_cache.rs

crates/bench/benches/table3_cache.rs:

/root/repo/target/debug/deps/proptests-e5aab9c3aca6b06e.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e5aab9c3aca6b06e: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:

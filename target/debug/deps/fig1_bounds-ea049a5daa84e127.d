/root/repo/target/debug/deps/fig1_bounds-ea049a5daa84e127.d: crates/bench/benches/fig1_bounds.rs

/root/repo/target/debug/deps/fig1_bounds-ea049a5daa84e127: crates/bench/benches/fig1_bounds.rs

crates/bench/benches/fig1_bounds.rs:

/root/repo/target/debug/deps/harvest_log-d55c94ee76a061f7.d: crates/log/src/lib.rs crates/log/src/nginx.rs crates/log/src/pipeline.rs crates/log/src/propensity.rs crates/log/src/record.rs crates/log/src/reward.rs crates/log/src/scavenge.rs crates/log/src/segment.rs Cargo.toml

/root/repo/target/debug/deps/libharvest_log-d55c94ee76a061f7.rmeta: crates/log/src/lib.rs crates/log/src/nginx.rs crates/log/src/pipeline.rs crates/log/src/propensity.rs crates/log/src/record.rs crates/log/src/reward.rs crates/log/src/scavenge.rs crates/log/src/segment.rs Cargo.toml

crates/log/src/lib.rs:
crates/log/src/nginx.rs:
crates/log/src/pipeline.rs:
crates/log/src/propensity.rs:
crates/log/src/record.rs:
crates/log/src/reward.rs:
crates/log/src/scavenge.rs:
crates/log/src/segment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/harvest_sim_cache-ac633870f9296b36.d: crates/sim-cache/src/lib.rs crates/sim-cache/src/policy.rs crates/sim-cache/src/runner.rs crates/sim-cache/src/store.rs

/root/repo/target/debug/deps/harvest_sim_cache-ac633870f9296b36: crates/sim-cache/src/lib.rs crates/sim-cache/src/policy.rs crates/sim-cache/src/runner.rs crates/sim-cache/src/store.rs

crates/sim-cache/src/lib.rs:
crates/sim-cache/src/policy.rs:
crates/sim-cache/src/runner.rs:
crates/sim-cache/src/store.rs:

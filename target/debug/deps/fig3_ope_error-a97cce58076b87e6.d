/root/repo/target/debug/deps/fig3_ope_error-a97cce58076b87e6.d: crates/bench/benches/fig3_ope_error.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_ope_error-a97cce58076b87e6.rmeta: crates/bench/benches/fig3_ope_error.rs Cargo.toml

crates/bench/benches/fig3_ope_error.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/table2_loadbalance-d5a1cd20e2bf2157.d: crates/bench/benches/table2_loadbalance.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_loadbalance-d5a1cd20e2bf2157.rmeta: crates/bench/benches/table2_loadbalance.rs Cargo.toml

crates/bench/benches/table2_loadbalance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

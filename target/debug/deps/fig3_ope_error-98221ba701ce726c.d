/root/repo/target/debug/deps/fig3_ope_error-98221ba701ce726c.d: crates/bench/benches/fig3_ope_error.rs

/root/repo/target/debug/deps/fig3_ope_error-98221ba701ce726c: crates/bench/benches/fig3_ope_error.rs

crates/bench/benches/fig3_ope_error.rs:

/root/repo/target/debug/deps/harvest_obs-3efa535cdbb4a9a1.d: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/prom.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/harvest_obs-3efa535cdbb4a9a1: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/prom.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/hist.rs:
crates/obs/src/prom.rs:
crates/obs/src/trace.rs:

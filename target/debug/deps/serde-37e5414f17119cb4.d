/root/repo/target/debug/deps/serde-37e5414f17119cb4.d: third_party/serde/src/lib.rs third_party/serde/src/value.rs

/root/repo/target/debug/deps/libserde-37e5414f17119cb4.rlib: third_party/serde/src/lib.rs third_party/serde/src/value.rs

/root/repo/target/debug/deps/libserde-37e5414f17119cb4.rmeta: third_party/serde/src/lib.rs third_party/serde/src/value.rs

third_party/serde/src/lib.rs:
third_party/serde/src/value.rs:

/root/repo/target/debug/deps/serde_json-f745d9c834463f15.d: third_party/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-f745d9c834463f15.rlib: third_party/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-f745d9c834463f15.rmeta: third_party/serde_json/src/lib.rs

third_party/serde_json/src/lib.rs:

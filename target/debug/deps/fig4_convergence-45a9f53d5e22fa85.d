/root/repo/target/debug/deps/fig4_convergence-45a9f53d5e22fa85.d: crates/bench/benches/fig4_convergence.rs

/root/repo/target/debug/deps/fig4_convergence-45a9f53d5e22fa85: crates/bench/benches/fig4_convergence.rs

crates/bench/benches/fig4_convergence.rs:

/root/repo/target/debug/examples/machine_health-da4a3ada41ad2bbc.d: examples/machine_health.rs Cargo.toml

/root/repo/target/debug/examples/libmachine_health-da4a3ada41ad2bbc.rmeta: examples/machine_health.rs Cargo.toml

examples/machine_health.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/harvest_serve-ea0e7744c36e9490.d: examples/harvest_serve.rs Cargo.toml

/root/repo/target/debug/examples/libharvest_serve-ea0e7744c36e9490.rmeta: examples/harvest_serve.rs Cargo.toml

examples/harvest_serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

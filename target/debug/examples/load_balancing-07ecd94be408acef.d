/root/repo/target/debug/examples/load_balancing-07ecd94be408acef.d: examples/load_balancing.rs Cargo.toml

/root/repo/target/debug/examples/libload_balancing-07ecd94be408acef.rmeta: examples/load_balancing.rs Cargo.toml

examples/load_balancing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

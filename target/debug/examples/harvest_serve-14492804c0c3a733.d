/root/repo/target/debug/examples/harvest_serve-14492804c0c3a733.d: examples/harvest_serve.rs

/root/repo/target/debug/examples/harvest_serve-14492804c0c3a733: examples/harvest_serve.rs

examples/harvest_serve.rs:

/root/repo/target/debug/examples/machine_health-4f536e2f37132f61.d: examples/machine_health.rs

/root/repo/target/debug/examples/machine_health-4f536e2f37132f61: examples/machine_health.rs

examples/machine_health.rs:

/root/repo/target/debug/examples/load_balancing-7523c88415ec4283.d: examples/load_balancing.rs

/root/repo/target/debug/examples/load_balancing-7523c88415ec4283: examples/load_balancing.rs

examples/load_balancing.rs:

/root/repo/target/debug/examples/harvest_top-3ad4e28e46af66c2.d: examples/harvest_top.rs Cargo.toml

/root/repo/target/debug/examples/libharvest_top-3ad4e28e46af66c2.rmeta: examples/harvest_top.rs Cargo.toml

examples/harvest_top.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

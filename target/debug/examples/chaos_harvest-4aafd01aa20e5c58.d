/root/repo/target/debug/examples/chaos_harvest-4aafd01aa20e5c58.d: examples/chaos_harvest.rs

/root/repo/target/debug/examples/chaos_harvest-4aafd01aa20e5c58: examples/chaos_harvest.rs

examples/chaos_harvest.rs:

/root/repo/target/debug/examples/load_balancing-a89f149e88cdc145.d: examples/load_balancing.rs

/root/repo/target/debug/examples/load_balancing-a89f149e88cdc145: examples/load_balancing.rs

examples/load_balancing.rs:

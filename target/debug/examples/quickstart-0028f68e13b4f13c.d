/root/repo/target/debug/examples/quickstart-0028f68e13b4f13c.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-0028f68e13b4f13c.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

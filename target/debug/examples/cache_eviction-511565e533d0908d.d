/root/repo/target/debug/examples/cache_eviction-511565e533d0908d.d: examples/cache_eviction.rs Cargo.toml

/root/repo/target/debug/examples/libcache_eviction-511565e533d0908d.rmeta: examples/cache_eviction.rs Cargo.toml

examples/cache_eviction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

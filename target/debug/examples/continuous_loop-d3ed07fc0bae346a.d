/root/repo/target/debug/examples/continuous_loop-d3ed07fc0bae346a.d: examples/continuous_loop.rs Cargo.toml

/root/repo/target/debug/examples/libcontinuous_loop-d3ed07fc0bae346a.rmeta: examples/continuous_loop.rs Cargo.toml

examples/continuous_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/chaos_harvest-260f7c3ec2007979.d: examples/chaos_harvest.rs Cargo.toml

/root/repo/target/debug/examples/libchaos_harvest-260f7c3ec2007979.rmeta: examples/chaos_harvest.rs Cargo.toml

examples/chaos_harvest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

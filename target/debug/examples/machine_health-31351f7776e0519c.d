/root/repo/target/debug/examples/machine_health-31351f7776e0519c.d: examples/machine_health.rs

/root/repo/target/debug/examples/machine_health-31351f7776e0519c: examples/machine_health.rs

examples/machine_health.rs:

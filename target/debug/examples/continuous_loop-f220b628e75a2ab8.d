/root/repo/target/debug/examples/continuous_loop-f220b628e75a2ab8.d: examples/continuous_loop.rs

/root/repo/target/debug/examples/continuous_loop-f220b628e75a2ab8: examples/continuous_loop.rs

examples/continuous_loop.rs:

/root/repo/target/debug/examples/cache_eviction-e1eee6cabaef6e4e.d: examples/cache_eviction.rs

/root/repo/target/debug/examples/cache_eviction-e1eee6cabaef6e4e: examples/cache_eviction.rs

examples/cache_eviction.rs:

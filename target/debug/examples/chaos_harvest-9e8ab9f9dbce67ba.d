/root/repo/target/debug/examples/chaos_harvest-9e8ab9f9dbce67ba.d: examples/chaos_harvest.rs

/root/repo/target/debug/examples/chaos_harvest-9e8ab9f9dbce67ba: examples/chaos_harvest.rs

examples/chaos_harvest.rs:

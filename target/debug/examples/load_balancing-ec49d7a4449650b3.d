/root/repo/target/debug/examples/load_balancing-ec49d7a4449650b3.d: examples/load_balancing.rs

/root/repo/target/debug/examples/load_balancing-ec49d7a4449650b3: examples/load_balancing.rs

examples/load_balancing.rs:

/root/repo/target/debug/examples/harvest_top-168b8ee3730ce7b4.d: examples/harvest_top.rs

/root/repo/target/debug/examples/harvest_top-168b8ee3730ce7b4: examples/harvest_top.rs

examples/harvest_top.rs:

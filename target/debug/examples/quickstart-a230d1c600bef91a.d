/root/repo/target/debug/examples/quickstart-a230d1c600bef91a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a230d1c600bef91a: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/machine_health-50bf384236cb631e.d: examples/machine_health.rs

/root/repo/target/debug/examples/machine_health-50bf384236cb631e: examples/machine_health.rs

examples/machine_health.rs:

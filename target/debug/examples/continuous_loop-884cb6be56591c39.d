/root/repo/target/debug/examples/continuous_loop-884cb6be56591c39.d: examples/continuous_loop.rs

/root/repo/target/debug/examples/continuous_loop-884cb6be56591c39: examples/continuous_loop.rs

examples/continuous_loop.rs:

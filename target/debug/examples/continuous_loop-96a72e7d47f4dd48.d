/root/repo/target/debug/examples/continuous_loop-96a72e7d47f4dd48.d: examples/continuous_loop.rs Cargo.toml

/root/repo/target/debug/examples/libcontinuous_loop-96a72e7d47f4dd48.rmeta: examples/continuous_loop.rs Cargo.toml

examples/continuous_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/continuous_loop-53ecc18924a47903.d: examples/continuous_loop.rs

/root/repo/target/debug/examples/continuous_loop-53ecc18924a47903: examples/continuous_loop.rs

examples/continuous_loop.rs:

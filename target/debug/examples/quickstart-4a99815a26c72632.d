/root/repo/target/debug/examples/quickstart-4a99815a26c72632.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-4a99815a26c72632.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

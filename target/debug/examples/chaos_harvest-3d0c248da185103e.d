/root/repo/target/debug/examples/chaos_harvest-3d0c248da185103e.d: examples/chaos_harvest.rs

/root/repo/target/debug/examples/chaos_harvest-3d0c248da185103e: examples/chaos_harvest.rs

examples/chaos_harvest.rs:

/root/repo/target/debug/examples/chaos_exploration-b1393396e22cbf3c.d: examples/chaos_exploration.rs

/root/repo/target/debug/examples/chaos_exploration-b1393396e22cbf3c: examples/chaos_exploration.rs

examples/chaos_exploration.rs:

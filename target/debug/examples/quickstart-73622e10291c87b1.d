/root/repo/target/debug/examples/quickstart-73622e10291c87b1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-73622e10291c87b1: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/load_balancing-443ab141bc987e2c.d: examples/load_balancing.rs

/root/repo/target/debug/examples/load_balancing-443ab141bc987e2c: examples/load_balancing.rs

examples/load_balancing.rs:

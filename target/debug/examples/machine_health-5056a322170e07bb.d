/root/repo/target/debug/examples/machine_health-5056a322170e07bb.d: examples/machine_health.rs

/root/repo/target/debug/examples/machine_health-5056a322170e07bb: examples/machine_health.rs

examples/machine_health.rs:

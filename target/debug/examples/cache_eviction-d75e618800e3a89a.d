/root/repo/target/debug/examples/cache_eviction-d75e618800e3a89a.d: examples/cache_eviction.rs

/root/repo/target/debug/examples/cache_eviction-d75e618800e3a89a: examples/cache_eviction.rs

examples/cache_eviction.rs:

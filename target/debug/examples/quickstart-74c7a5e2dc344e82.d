/root/repo/target/debug/examples/quickstart-74c7a5e2dc344e82.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-74c7a5e2dc344e82: examples/quickstart.rs

examples/quickstart.rs:

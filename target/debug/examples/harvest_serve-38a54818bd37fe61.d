/root/repo/target/debug/examples/harvest_serve-38a54818bd37fe61.d: examples/harvest_serve.rs

/root/repo/target/debug/examples/harvest_serve-38a54818bd37fe61: examples/harvest_serve.rs

examples/harvest_serve.rs:

/root/repo/target/debug/examples/chaos_exploration-5f8213efaa7e82ae.d: examples/chaos_exploration.rs

/root/repo/target/debug/examples/chaos_exploration-5f8213efaa7e82ae: examples/chaos_exploration.rs

examples/chaos_exploration.rs:

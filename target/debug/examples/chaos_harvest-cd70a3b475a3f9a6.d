/root/repo/target/debug/examples/chaos_harvest-cd70a3b475a3f9a6.d: examples/chaos_harvest.rs

/root/repo/target/debug/examples/chaos_harvest-cd70a3b475a3f9a6: examples/chaos_harvest.rs

examples/chaos_harvest.rs:

/root/repo/target/debug/examples/cache_eviction-c0066bebdaf9530d.d: examples/cache_eviction.rs

/root/repo/target/debug/examples/cache_eviction-c0066bebdaf9530d: examples/cache_eviction.rs

examples/cache_eviction.rs:

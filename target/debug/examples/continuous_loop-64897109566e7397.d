/root/repo/target/debug/examples/continuous_loop-64897109566e7397.d: examples/continuous_loop.rs

/root/repo/target/debug/examples/continuous_loop-64897109566e7397: examples/continuous_loop.rs

examples/continuous_loop.rs:

/root/repo/target/debug/examples/cache_eviction-af69a1a3d0d95050.d: examples/cache_eviction.rs

/root/repo/target/debug/examples/cache_eviction-af69a1a3d0d95050: examples/cache_eviction.rs

examples/cache_eviction.rs:

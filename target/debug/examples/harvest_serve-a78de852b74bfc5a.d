/root/repo/target/debug/examples/harvest_serve-a78de852b74bfc5a.d: examples/harvest_serve.rs Cargo.toml

/root/repo/target/debug/examples/libharvest_serve-a78de852b74bfc5a.rmeta: examples/harvest_serve.rs Cargo.toml

examples/harvest_serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/harvest_serve-b7eff94f7b5651c5.d: examples/harvest_serve.rs

/root/repo/target/debug/examples/harvest_serve-b7eff94f7b5651c5: examples/harvest_serve.rs

examples/harvest_serve.rs:

/root/repo/target/debug/examples/machine_health-bbbcde2aa843e7a4.d: examples/machine_health.rs Cargo.toml

/root/repo/target/debug/examples/libmachine_health-bbbcde2aa843e7a4.rmeta: examples/machine_health.rs Cargo.toml

examples/machine_health.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

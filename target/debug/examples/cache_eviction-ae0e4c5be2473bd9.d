/root/repo/target/debug/examples/cache_eviction-ae0e4c5be2473bd9.d: examples/cache_eviction.rs

/root/repo/target/debug/examples/cache_eviction-ae0e4c5be2473bd9: examples/cache_eviction.rs

examples/cache_eviction.rs:

/root/repo/target/debug/examples/continuous_loop-dfdfa2ed864e9b85.d: examples/continuous_loop.rs

/root/repo/target/debug/examples/continuous_loop-dfdfa2ed864e9b85: examples/continuous_loop.rs

examples/continuous_loop.rs:

/root/repo/target/debug/examples/chaos_exploration-c6ed130b2289e9f8.d: examples/chaos_exploration.rs

/root/repo/target/debug/examples/chaos_exploration-c6ed130b2289e9f8: examples/chaos_exploration.rs

examples/chaos_exploration.rs:

/root/repo/target/debug/examples/cache_eviction-3aa2422ea3adcb78.d: examples/cache_eviction.rs Cargo.toml

/root/repo/target/debug/examples/libcache_eviction-3aa2422ea3adcb78.rmeta: examples/cache_eviction.rs Cargo.toml

examples/cache_eviction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/chaos_exploration-13abd5e4566666ec.d: examples/chaos_exploration.rs

/root/repo/target/debug/examples/chaos_exploration-13abd5e4566666ec: examples/chaos_exploration.rs

examples/chaos_exploration.rs:

/root/repo/target/debug/examples/chaos_exploration-531ff6b734bedce1.d: examples/chaos_exploration.rs Cargo.toml

/root/repo/target/debug/examples/libchaos_exploration-531ff6b734bedce1.rmeta: examples/chaos_exploration.rs Cargo.toml

examples/chaos_exploration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/harvest_serve-602aa32757363627.d: examples/harvest_serve.rs

/root/repo/target/debug/examples/harvest_serve-602aa32757363627: examples/harvest_serve.rs

examples/harvest_serve.rs:

/root/repo/target/debug/examples/load_balancing-a2ece6d120e18021.d: examples/load_balancing.rs

/root/repo/target/debug/examples/load_balancing-a2ece6d120e18021: examples/load_balancing.rs

examples/load_balancing.rs:

/root/repo/target/debug/examples/chaos_exploration-d7bbc20db84257e5.d: examples/chaos_exploration.rs

/root/repo/target/debug/examples/chaos_exploration-d7bbc20db84257e5: examples/chaos_exploration.rs

examples/chaos_exploration.rs:

/root/repo/target/debug/examples/chaos_exploration-26c433efbee369e9.d: examples/chaos_exploration.rs Cargo.toml

/root/repo/target/debug/examples/libchaos_exploration-26c433efbee369e9.rmeta: examples/chaos_exploration.rs Cargo.toml

examples/chaos_exploration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/machine_health-9f0f79d67e6221c8.d: examples/machine_health.rs

/root/repo/target/debug/examples/machine_health-9f0f79d67e6221c8: examples/machine_health.rs

examples/machine_health.rs:

/root/repo/target/debug/examples/load_balancing-7f3112be3be51a66.d: examples/load_balancing.rs Cargo.toml

/root/repo/target/debug/examples/libload_balancing-7f3112be3be51a66.rmeta: examples/load_balancing.rs Cargo.toml

examples/load_balancing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/quickstart-614a08f08fa331b7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-614a08f08fa331b7: examples/quickstart.rs

examples/quickstart.rs:

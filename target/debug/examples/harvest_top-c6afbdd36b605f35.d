/root/repo/target/debug/examples/harvest_top-c6afbdd36b605f35.d: examples/harvest_top.rs

/root/repo/target/debug/examples/harvest_top-c6afbdd36b605f35: examples/harvest_top.rs

examples/harvest_top.rs:

/root/repo/target/debug/examples/quickstart-6ece3a6f4a4418cb.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6ece3a6f4a4418cb: examples/quickstart.rs

examples/quickstart.rs:

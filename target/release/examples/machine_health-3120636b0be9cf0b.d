/root/repo/target/release/examples/machine_health-3120636b0be9cf0b.d: examples/machine_health.rs

/root/repo/target/release/examples/machine_health-3120636b0be9cf0b: examples/machine_health.rs

examples/machine_health.rs:

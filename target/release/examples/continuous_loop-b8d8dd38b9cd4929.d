/root/repo/target/release/examples/continuous_loop-b8d8dd38b9cd4929.d: examples/continuous_loop.rs

/root/repo/target/release/examples/continuous_loop-b8d8dd38b9cd4929: examples/continuous_loop.rs

examples/continuous_loop.rs:

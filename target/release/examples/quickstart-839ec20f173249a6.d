/root/repo/target/release/examples/quickstart-839ec20f173249a6.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-839ec20f173249a6: examples/quickstart.rs

examples/quickstart.rs:

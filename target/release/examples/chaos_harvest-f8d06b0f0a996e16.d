/root/repo/target/release/examples/chaos_harvest-f8d06b0f0a996e16.d: examples/chaos_harvest.rs

/root/repo/target/release/examples/chaos_harvest-f8d06b0f0a996e16: examples/chaos_harvest.rs

examples/chaos_harvest.rs:

/root/repo/target/release/examples/load_balancing-1f0f2b52ab679a57.d: examples/load_balancing.rs

/root/repo/target/release/examples/load_balancing-1f0f2b52ab679a57: examples/load_balancing.rs

examples/load_balancing.rs:

/root/repo/target/release/examples/cache_eviction-26ec3d5888ac55ae.d: examples/cache_eviction.rs

/root/repo/target/release/examples/cache_eviction-26ec3d5888ac55ae: examples/cache_eviction.rs

examples/cache_eviction.rs:

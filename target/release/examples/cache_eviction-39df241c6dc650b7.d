/root/repo/target/release/examples/cache_eviction-39df241c6dc650b7.d: examples/cache_eviction.rs

/root/repo/target/release/examples/cache_eviction-39df241c6dc650b7: examples/cache_eviction.rs

examples/cache_eviction.rs:

/root/repo/target/release/examples/harvest_serve-47ee2e59df1a2b2b.d: examples/harvest_serve.rs

/root/repo/target/release/examples/harvest_serve-47ee2e59df1a2b2b: examples/harvest_serve.rs

examples/harvest_serve.rs:

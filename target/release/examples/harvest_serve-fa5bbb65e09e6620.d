/root/repo/target/release/examples/harvest_serve-fa5bbb65e09e6620.d: examples/harvest_serve.rs

/root/repo/target/release/examples/harvest_serve-fa5bbb65e09e6620: examples/harvest_serve.rs

examples/harvest_serve.rs:

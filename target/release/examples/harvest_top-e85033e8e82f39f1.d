/root/repo/target/release/examples/harvest_top-e85033e8e82f39f1.d: examples/harvest_top.rs

/root/repo/target/release/examples/harvest_top-e85033e8e82f39f1: examples/harvest_top.rs

examples/harvest_top.rs:

/root/repo/target/release/examples/machine_health-2cb58b0ea5f77e80.d: examples/machine_health.rs

/root/repo/target/release/examples/machine_health-2cb58b0ea5f77e80: examples/machine_health.rs

examples/machine_health.rs:

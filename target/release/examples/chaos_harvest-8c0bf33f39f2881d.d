/root/repo/target/release/examples/chaos_harvest-8c0bf33f39f2881d.d: examples/chaos_harvest.rs

/root/repo/target/release/examples/chaos_harvest-8c0bf33f39f2881d: examples/chaos_harvest.rs

examples/chaos_harvest.rs:

/root/repo/target/release/examples/quickstart-4f8ece933bf862f3.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-4f8ece933bf862f3: examples/quickstart.rs

examples/quickstart.rs:

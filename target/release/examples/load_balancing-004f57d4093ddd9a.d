/root/repo/target/release/examples/load_balancing-004f57d4093ddd9a.d: examples/load_balancing.rs

/root/repo/target/release/examples/load_balancing-004f57d4093ddd9a: examples/load_balancing.rs

examples/load_balancing.rs:

/root/repo/target/release/examples/chaos_exploration-49b37bc894203eb7.d: examples/chaos_exploration.rs

/root/repo/target/release/examples/chaos_exploration-49b37bc894203eb7: examples/chaos_exploration.rs

examples/chaos_exploration.rs:

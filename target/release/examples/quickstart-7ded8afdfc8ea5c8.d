/root/repo/target/release/examples/quickstart-7ded8afdfc8ea5c8.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-7ded8afdfc8ea5c8: examples/quickstart.rs

examples/quickstart.rs:

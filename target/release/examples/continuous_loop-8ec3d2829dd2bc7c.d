/root/repo/target/release/examples/continuous_loop-8ec3d2829dd2bc7c.d: examples/continuous_loop.rs

/root/repo/target/release/examples/continuous_loop-8ec3d2829dd2bc7c: examples/continuous_loop.rs

examples/continuous_loop.rs:

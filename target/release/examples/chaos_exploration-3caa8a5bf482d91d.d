/root/repo/target/release/examples/chaos_exploration-3caa8a5bf482d91d.d: examples/chaos_exploration.rs

/root/repo/target/release/examples/chaos_exploration-3caa8a5bf482d91d: examples/chaos_exploration.rs

examples/chaos_exploration.rs:

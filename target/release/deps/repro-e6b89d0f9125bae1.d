/root/repo/target/release/deps/repro-e6b89d0f9125bae1.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-e6b89d0f9125bae1: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

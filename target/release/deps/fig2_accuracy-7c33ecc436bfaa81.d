/root/repo/target/release/deps/fig2_accuracy-7c33ecc436bfaa81.d: crates/bench/benches/fig2_accuracy.rs

/root/repo/target/release/deps/fig2_accuracy-7c33ecc436bfaa81: crates/bench/benches/fig2_accuracy.rs

crates/bench/benches/fig2_accuracy.rs:

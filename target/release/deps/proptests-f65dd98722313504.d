/root/repo/target/release/deps/proptests-f65dd98722313504.d: crates/core/tests/proptests.rs

/root/repo/target/release/deps/proptests-f65dd98722313504: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:

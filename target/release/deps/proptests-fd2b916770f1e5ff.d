/root/repo/target/release/deps/proptests-fd2b916770f1e5ff.d: crates/sim-machine-health/tests/proptests.rs

/root/repo/target/release/deps/proptests-fd2b916770f1e5ff: crates/sim-machine-health/tests/proptests.rs

crates/sim-machine-health/tests/proptests.rs:

/root/repo/target/release/deps/fig3_ope_error-ee0b191b0b5b2044.d: crates/bench/benches/fig3_ope_error.rs

/root/repo/target/release/deps/fig3_ope_error-ee0b191b0b5b2044: crates/bench/benches/fig3_ope_error.rs

crates/bench/benches/fig3_ope_error.rs:

/root/repo/target/release/deps/fig1_bounds-24de51606f791cb1.d: crates/bench/benches/fig1_bounds.rs

/root/repo/target/release/deps/fig1_bounds-24de51606f791cb1: crates/bench/benches/fig1_bounds.rs

crates/bench/benches/fig1_bounds.rs:

/root/repo/target/release/deps/proptests-b3700b67adb85f47.d: crates/estimators/tests/proptests.rs

/root/repo/target/release/deps/proptests-b3700b67adb85f47: crates/estimators/tests/proptests.rs

crates/estimators/tests/proptests.rs:

/root/repo/target/release/deps/proptests-3737b41bf4cda916.d: crates/sim-loadbalance/tests/proptests.rs

/root/repo/target/release/deps/proptests-3737b41bf4cda916: crates/sim-loadbalance/tests/proptests.rs

crates/sim-loadbalance/tests/proptests.rs:

/root/repo/target/release/deps/determinism_lint-534d84ccc56254b6.d: tests/determinism_lint.rs

/root/repo/target/release/deps/determinism_lint-534d84ccc56254b6: tests/determinism_lint.rs

tests/determinism_lint.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo

/root/repo/target/release/deps/proptests-6f4dd168ea681154.d: crates/log/tests/proptests.rs

/root/repo/target/release/deps/proptests-6f4dd168ea681154: crates/log/tests/proptests.rs

crates/log/tests/proptests.rs:

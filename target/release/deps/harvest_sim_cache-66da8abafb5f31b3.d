/root/repo/target/release/deps/harvest_sim_cache-66da8abafb5f31b3.d: crates/sim-cache/src/lib.rs crates/sim-cache/src/policy.rs crates/sim-cache/src/runner.rs crates/sim-cache/src/store.rs

/root/repo/target/release/deps/libharvest_sim_cache-66da8abafb5f31b3.rlib: crates/sim-cache/src/lib.rs crates/sim-cache/src/policy.rs crates/sim-cache/src/runner.rs crates/sim-cache/src/store.rs

/root/repo/target/release/deps/libharvest_sim_cache-66da8abafb5f31b3.rmeta: crates/sim-cache/src/lib.rs crates/sim-cache/src/policy.rs crates/sim-cache/src/runner.rs crates/sim-cache/src/store.rs

crates/sim-cache/src/lib.rs:
crates/sim-cache/src/policy.rs:
crates/sim-cache/src/runner.rs:
crates/sim-cache/src/store.rs:

/root/repo/target/release/deps/proptest-72bba610fd5a7f31.d: third_party/proptest/src/lib.rs third_party/proptest/src/collection.rs third_party/proptest/src/option.rs third_party/proptest/src/strategy.rs third_party/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-72bba610fd5a7f31.rlib: third_party/proptest/src/lib.rs third_party/proptest/src/collection.rs third_party/proptest/src/option.rs third_party/proptest/src/strategy.rs third_party/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-72bba610fd5a7f31.rmeta: third_party/proptest/src/lib.rs third_party/proptest/src/collection.rs third_party/proptest/src/option.rs third_party/proptest/src/strategy.rs third_party/proptest/src/test_runner.rs

third_party/proptest/src/lib.rs:
third_party/proptest/src/collection.rs:
third_party/proptest/src/option.rs:
third_party/proptest/src/strategy.rs:
third_party/proptest/src/test_runner.rs:

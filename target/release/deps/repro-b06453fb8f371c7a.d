/root/repo/target/release/deps/repro-b06453fb8f371c7a.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-b06453fb8f371c7a: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

/root/repo/target/release/deps/harvest_sim_cache-9a17615cf69e659b.d: crates/sim-cache/src/lib.rs crates/sim-cache/src/policy.rs crates/sim-cache/src/runner.rs crates/sim-cache/src/store.rs

/root/repo/target/release/deps/harvest_sim_cache-9a17615cf69e659b: crates/sim-cache/src/lib.rs crates/sim-cache/src/policy.rs crates/sim-cache/src/runner.rs crates/sim-cache/src/store.rs

crates/sim-cache/src/lib.rs:
crates/sim-cache/src/policy.rs:
crates/sim-cache/src/runner.rs:
crates/sim-cache/src/store.rs:

/root/repo/target/release/deps/fig4_convergence-cb8eb9f8447285f3.d: crates/bench/benches/fig4_convergence.rs

/root/repo/target/release/deps/fig4_convergence-cb8eb9f8447285f3: crates/bench/benches/fig4_convergence.rs

crates/bench/benches/fig4_convergence.rs:

/root/repo/target/release/deps/serde_json-e9c54cb86427c98f.d: third_party/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-e9c54cb86427c98f.rlib: third_party/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-e9c54cb86427c98f.rmeta: third_party/serde_json/src/lib.rs

third_party/serde_json/src/lib.rs:

/root/repo/target/release/deps/serde-4475f052c9fbdff6.d: third_party/serde/src/lib.rs third_party/serde/src/value.rs

/root/repo/target/release/deps/libserde-4475f052c9fbdff6.rlib: third_party/serde/src/lib.rs third_party/serde/src/value.rs

/root/repo/target/release/deps/libserde-4475f052c9fbdff6.rmeta: third_party/serde/src/lib.rs third_party/serde/src/value.rs

third_party/serde/src/lib.rs:
third_party/serde/src/value.rs:

/root/repo/target/release/deps/harvest_obs-19c93685aecc0c94.d: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/prom.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libharvest_obs-19c93685aecc0c94.rlib: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/prom.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libharvest_obs-19c93685aecc0c94.rmeta: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/prom.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/hist.rs:
crates/obs/src/prom.rs:
crates/obs/src/trace.rs:

/root/repo/target/release/deps/proptest_invariants-c2f9ecb0438c6541.d: tests/proptest_invariants.rs

/root/repo/target/release/deps/proptest_invariants-c2f9ecb0438c6541: tests/proptest_invariants.rs

tests/proptest_invariants.rs:

/root/repo/target/release/deps/harvest_sim_lb-87db8b2b3ba3974c.d: crates/sim-loadbalance/src/lib.rs crates/sim-loadbalance/src/config.rs crates/sim-loadbalance/src/context.rs crates/sim-loadbalance/src/hierarchy.rs crates/sim-loadbalance/src/policy.rs crates/sim-loadbalance/src/sim.rs

/root/repo/target/release/deps/harvest_sim_lb-87db8b2b3ba3974c: crates/sim-loadbalance/src/lib.rs crates/sim-loadbalance/src/config.rs crates/sim-loadbalance/src/context.rs crates/sim-loadbalance/src/hierarchy.rs crates/sim-loadbalance/src/policy.rs crates/sim-loadbalance/src/sim.rs

crates/sim-loadbalance/src/lib.rs:
crates/sim-loadbalance/src/config.rs:
crates/sim-loadbalance/src/context.rs:
crates/sim-loadbalance/src/hierarchy.rs:
crates/sim-loadbalance/src/policy.rs:
crates/sim-loadbalance/src/sim.rs:

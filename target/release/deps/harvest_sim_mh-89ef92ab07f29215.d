/root/repo/target/release/deps/harvest_sim_mh-89ef92ab07f29215.d: crates/sim-machine-health/src/lib.rs crates/sim-machine-health/src/dataset.rs crates/sim-machine-health/src/failure.rs crates/sim-machine-health/src/machine.rs

/root/repo/target/release/deps/libharvest_sim_mh-89ef92ab07f29215.rlib: crates/sim-machine-health/src/lib.rs crates/sim-machine-health/src/dataset.rs crates/sim-machine-health/src/failure.rs crates/sim-machine-health/src/machine.rs

/root/repo/target/release/deps/libharvest_sim_mh-89ef92ab07f29215.rmeta: crates/sim-machine-health/src/lib.rs crates/sim-machine-health/src/dataset.rs crates/sim-machine-health/src/failure.rs crates/sim-machine-health/src/machine.rs

crates/sim-machine-health/src/lib.rs:
crates/sim-machine-health/src/dataset.rs:
crates/sim-machine-health/src/failure.rs:
crates/sim-machine-health/src/machine.rs:

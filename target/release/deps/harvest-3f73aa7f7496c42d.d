/root/repo/target/release/deps/harvest-3f73aa7f7496c42d.d: src/lib.rs

/root/repo/target/release/deps/harvest-3f73aa7f7496c42d: src/lib.rs

src/lib.rs:

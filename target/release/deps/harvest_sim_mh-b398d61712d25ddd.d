/root/repo/target/release/deps/harvest_sim_mh-b398d61712d25ddd.d: crates/sim-machine-health/src/lib.rs crates/sim-machine-health/src/dataset.rs crates/sim-machine-health/src/failure.rs crates/sim-machine-health/src/machine.rs

/root/repo/target/release/deps/harvest_sim_mh-b398d61712d25ddd: crates/sim-machine-health/src/lib.rs crates/sim-machine-health/src/dataset.rs crates/sim-machine-health/src/failure.rs crates/sim-machine-health/src/machine.rs

crates/sim-machine-health/src/lib.rs:
crates/sim-machine-health/src/dataset.rs:
crates/sim-machine-health/src/failure.rs:
crates/sim-machine-health/src/machine.rs:

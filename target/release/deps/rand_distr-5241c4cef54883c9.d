/root/repo/target/release/deps/rand_distr-5241c4cef54883c9.d: third_party/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-5241c4cef54883c9.rlib: third_party/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-5241c4cef54883c9.rmeta: third_party/rand_distr/src/lib.rs

third_party/rand_distr/src/lib.rs:

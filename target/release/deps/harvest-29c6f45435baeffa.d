/root/repo/target/release/deps/harvest-29c6f45435baeffa.d: src/lib.rs

/root/repo/target/release/deps/libharvest-29c6f45435baeffa.rlib: src/lib.rs

/root/repo/target/release/deps/libharvest-29c6f45435baeffa.rmeta: src/lib.rs

src/lib.rs:

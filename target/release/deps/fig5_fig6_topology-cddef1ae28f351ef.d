/root/repo/target/release/deps/fig5_fig6_topology-cddef1ae28f351ef.d: crates/bench/benches/fig5_fig6_topology.rs

/root/repo/target/release/deps/fig5_fig6_topology-cddef1ae28f351ef: crates/bench/benches/fig5_fig6_topology.rs

crates/bench/benches/fig5_fig6_topology.rs:

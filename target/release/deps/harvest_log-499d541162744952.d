/root/repo/target/release/deps/harvest_log-499d541162744952.d: crates/log/src/lib.rs crates/log/src/nginx.rs crates/log/src/pipeline.rs crates/log/src/propensity.rs crates/log/src/record.rs crates/log/src/reward.rs crates/log/src/scavenge.rs

/root/repo/target/release/deps/harvest_log-499d541162744952: crates/log/src/lib.rs crates/log/src/nginx.rs crates/log/src/pipeline.rs crates/log/src/propensity.rs crates/log/src/record.rs crates/log/src/reward.rs crates/log/src/scavenge.rs

crates/log/src/lib.rs:
crates/log/src/nginx.rs:
crates/log/src/pipeline.rs:
crates/log/src/propensity.rs:
crates/log/src/record.rs:
crates/log/src/reward.rs:
crates/log/src/scavenge.rs:

/root/repo/target/release/deps/ablations-bb75719cf9c538b7.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-bb75719cf9c538b7: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:

/root/repo/target/release/deps/table2_loadbalance-5c4ce65629ff9b9b.d: crates/bench/benches/table2_loadbalance.rs

/root/repo/target/release/deps/table2_loadbalance-5c4ce65629ff9b9b: crates/bench/benches/table2_loadbalance.rs

crates/bench/benches/table2_loadbalance.rs:

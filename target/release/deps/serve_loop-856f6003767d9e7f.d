/root/repo/target/release/deps/serve_loop-856f6003767d9e7f.d: tests/serve_loop.rs

/root/repo/target/release/deps/serve_loop-856f6003767d9e7f: tests/serve_loop.rs

tests/serve_loop.rs:

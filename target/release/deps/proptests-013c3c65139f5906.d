/root/repo/target/release/deps/proptests-013c3c65139f5906.d: crates/sim-net/tests/proptests.rs

/root/repo/target/release/deps/proptests-013c3c65139f5906: crates/sim-net/tests/proptests.rs

crates/sim-net/tests/proptests.rs:

/root/repo/target/release/deps/harvest_serve-c86695382bc3d724.d: crates/serve/src/lib.rs

/root/repo/target/release/deps/harvest_serve-c86695382bc3d724: crates/serve/src/lib.rs

crates/serve/src/lib.rs:

/root/repo/target/release/deps/repro-9e789c8ecfab761c.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-9e789c8ecfab761c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

/root/repo/target/release/deps/determinism-e6b2f1d7c22d2b4d.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-e6b2f1d7c22d2b4d: tests/determinism.rs

tests/determinism.rs:

/root/repo/target/release/deps/harvest-adfe5a3f891326fa.d: src/lib.rs

/root/repo/target/release/deps/libharvest-adfe5a3f891326fa.rlib: src/lib.rs

/root/repo/target/release/deps/libharvest-adfe5a3f891326fa.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/serve_throughput-e82acac88e8042ad.d: crates/bench/benches/serve_throughput.rs

/root/repo/target/release/deps/serve_throughput-e82acac88e8042ad: crates/bench/benches/serve_throughput.rs

crates/bench/benches/serve_throughput.rs:

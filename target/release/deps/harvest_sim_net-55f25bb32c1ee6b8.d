/root/repo/target/release/deps/harvest_sim_net-55f25bb32c1ee6b8.d: crates/sim-net/src/lib.rs crates/sim-net/src/event.rs crates/sim-net/src/fault.rs crates/sim-net/src/rng.rs crates/sim-net/src/stats.rs crates/sim-net/src/time.rs crates/sim-net/src/trace.rs crates/sim-net/src/workload.rs

/root/repo/target/release/deps/harvest_sim_net-55f25bb32c1ee6b8: crates/sim-net/src/lib.rs crates/sim-net/src/event.rs crates/sim-net/src/fault.rs crates/sim-net/src/rng.rs crates/sim-net/src/stats.rs crates/sim-net/src/time.rs crates/sim-net/src/trace.rs crates/sim-net/src/workload.rs

crates/sim-net/src/lib.rs:
crates/sim-net/src/event.rs:
crates/sim-net/src/fault.rs:
crates/sim-net/src/rng.rs:
crates/sim-net/src/stats.rs:
crates/sim-net/src/time.rs:
crates/sim-net/src/trace.rs:
crates/sim-net/src/workload.rs:

/root/repo/target/release/deps/rand-4e832caead7307b6.d: third_party/rand/src/lib.rs

/root/repo/target/release/deps/librand-4e832caead7307b6.rlib: third_party/rand/src/lib.rs

/root/repo/target/release/deps/librand-4e832caead7307b6.rmeta: third_party/rand/src/lib.rs

third_party/rand/src/lib.rs:

/root/repo/target/release/deps/serve_throughput-54b9941d314a5204.d: crates/bench/benches/serve_throughput.rs

/root/repo/target/release/deps/serve_throughput-54b9941d314a5204: crates/bench/benches/serve_throughput.rs

crates/bench/benches/serve_throughput.rs:

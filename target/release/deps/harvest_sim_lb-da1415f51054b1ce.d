/root/repo/target/release/deps/harvest_sim_lb-da1415f51054b1ce.d: crates/sim-loadbalance/src/lib.rs crates/sim-loadbalance/src/config.rs crates/sim-loadbalance/src/context.rs crates/sim-loadbalance/src/hierarchy.rs crates/sim-loadbalance/src/policy.rs crates/sim-loadbalance/src/sim.rs

/root/repo/target/release/deps/libharvest_sim_lb-da1415f51054b1ce.rlib: crates/sim-loadbalance/src/lib.rs crates/sim-loadbalance/src/config.rs crates/sim-loadbalance/src/context.rs crates/sim-loadbalance/src/hierarchy.rs crates/sim-loadbalance/src/policy.rs crates/sim-loadbalance/src/sim.rs

/root/repo/target/release/deps/libharvest_sim_lb-da1415f51054b1ce.rmeta: crates/sim-loadbalance/src/lib.rs crates/sim-loadbalance/src/config.rs crates/sim-loadbalance/src/context.rs crates/sim-loadbalance/src/hierarchy.rs crates/sim-loadbalance/src/policy.rs crates/sim-loadbalance/src/sim.rs

crates/sim-loadbalance/src/lib.rs:
crates/sim-loadbalance/src/config.rs:
crates/sim-loadbalance/src/context.rs:
crates/sim-loadbalance/src/hierarchy.rs:
crates/sim-loadbalance/src/policy.rs:
crates/sim-loadbalance/src/sim.rs:

/root/repo/target/release/deps/repro-0d42a4df8ff76684.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-0d42a4df8ff76684: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

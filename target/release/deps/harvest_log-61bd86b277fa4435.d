/root/repo/target/release/deps/harvest_log-61bd86b277fa4435.d: crates/log/src/lib.rs crates/log/src/nginx.rs crates/log/src/pipeline.rs crates/log/src/propensity.rs crates/log/src/record.rs crates/log/src/reward.rs crates/log/src/scavenge.rs crates/log/src/segment.rs

/root/repo/target/release/deps/libharvest_log-61bd86b277fa4435.rlib: crates/log/src/lib.rs crates/log/src/nginx.rs crates/log/src/pipeline.rs crates/log/src/propensity.rs crates/log/src/record.rs crates/log/src/reward.rs crates/log/src/scavenge.rs crates/log/src/segment.rs

/root/repo/target/release/deps/libharvest_log-61bd86b277fa4435.rmeta: crates/log/src/lib.rs crates/log/src/nginx.rs crates/log/src/pipeline.rs crates/log/src/propensity.rs crates/log/src/record.rs crates/log/src/reward.rs crates/log/src/scavenge.rs crates/log/src/segment.rs

crates/log/src/lib.rs:
crates/log/src/nginx.rs:
crates/log/src/pipeline.rs:
crates/log/src/propensity.rs:
crates/log/src/record.rs:
crates/log/src/reward.rs:
crates/log/src/scavenge.rs:
crates/log/src/segment.rs:

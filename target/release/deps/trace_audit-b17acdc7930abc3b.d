/root/repo/target/release/deps/trace_audit-b17acdc7930abc3b.d: tests/trace_audit.rs

/root/repo/target/release/deps/trace_audit-b17acdc7930abc3b: tests/trace_audit.rs

tests/trace_audit.rs:

/root/repo/target/release/deps/table3_cache-4b602f499b58bece.d: crates/bench/benches/table3_cache.rs

/root/repo/target/release/deps/table3_cache-4b602f499b58bece: crates/bench/benches/table3_cache.rs

crates/bench/benches/table3_cache.rs:

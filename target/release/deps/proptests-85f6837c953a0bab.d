/root/repo/target/release/deps/proptests-85f6837c953a0bab.d: crates/sim-cache/tests/proptests.rs

/root/repo/target/release/deps/proptests-85f6837c953a0bab: crates/sim-cache/tests/proptests.rs

crates/sim-cache/tests/proptests.rs:

/root/repo/target/release/deps/harvest-2150ad6036f79475.d: src/lib.rs

/root/repo/target/release/deps/libharvest-2150ad6036f79475.rlib: src/lib.rs

/root/repo/target/release/deps/libharvest-2150ad6036f79475.rmeta: src/lib.rs

src/lib.rs:

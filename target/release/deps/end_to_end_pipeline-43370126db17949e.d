/root/repo/target/release/deps/end_to_end_pipeline-43370126db17949e.d: tests/end_to_end_pipeline.rs

/root/repo/target/release/deps/end_to_end_pipeline-43370126db17949e: tests/end_to_end_pipeline.rs

tests/end_to_end_pipeline.rs:
